"""Tests for the reservation table, request queue, requests and frame structures."""

import pytest

from repro.mac.frames import FrameStructure
from repro.mac.request_queue import RequestQueue
from repro.mac.requests import Allocation, FrameOutcome, Request
from repro.mac.reservation import ReservationTable
from repro.traffic.packets import TrafficKind
from tests.utils import data_terminal_with_packets, voice_terminal_with_packet


class TestReservationTable:
    def test_grant_and_query(self):
        table = ReservationTable()
        table.grant(3, frame_index=10)
        assert table.has(3)
        assert 3 in table
        assert table.granted_at(3) == 10
        assert table.holders() == [3]

    def test_grant_idempotent(self):
        table = ReservationTable()
        table.grant(3, 10)
        table.grant(3, 20)
        assert table.granted_at(3) == 10

    def test_release(self):
        table = ReservationTable()
        table.grant(1, 0)
        table.release(1)
        assert not table.has(1)
        table.release(1)  # no-op

    def test_release_ended_talkspurts(self):
        table = ReservationTable()
        active = voice_terminal_with_packet(0, in_talkspurt=True)
        silent = voice_terminal_with_packet(1, in_talkspurt=False)
        silent._buffer.clear()
        table.grant(0, 0)
        table.grant(1, 0)
        released = table.release_ended_talkspurts([active, silent])
        assert released == 1
        assert table.has(0) and not table.has(1)

    def test_reserved_terminals_requires_pending_packets(self):
        table = ReservationTable()
        terminal = voice_terminal_with_packet(0)
        table.grant(0, 0)
        assert table.reserved_terminals([terminal]) == [terminal]
        terminal._buffer.clear()
        assert table.reserved_terminals([terminal]) == []

    def test_validation_and_clear(self):
        table = ReservationTable()
        with pytest.raises(ValueError):
            table.grant(-1, 0)
        with pytest.raises(ValueError):
            table.grant(0, -1)
        table.grant(5, 1)
        table.clear()
        assert len(table) == 0


class TestRequestQueue:
    def _request(self, tid, frame=0, kind=TrafficKind.DATA, deadline=None):
        return Request(terminal_id=tid, kind=kind, arrival_frame=frame,
                       deadline_frame=deadline)

    def test_fifo_order(self):
        queue = RequestQueue(capacity=8)
        for tid in (3, 1, 2):
            queue.push(self._request(tid))
        assert [r.terminal_id for r in queue.pop_all()] == [3, 1, 2]
        assert len(queue) == 0

    def test_capacity_enforced(self):
        queue = RequestQueue(capacity=2)
        assert queue.push(self._request(0))
        assert queue.push(self._request(1))
        assert not queue.push(self._request(2))
        assert queue.is_full

    def test_extend_partial(self):
        queue = RequestQueue(capacity=2)
        accepted = queue.extend(self._request(i) for i in range(5))
        assert accepted == 2

    def test_contains_and_remove_terminal(self):
        queue = RequestQueue()
        queue.push(self._request(7))
        assert queue.contains_terminal(7)
        assert queue.remove_terminal(7) == 1
        assert not queue.contains_terminal(7)

    def test_drop_expired_voice(self):
        queue = RequestQueue()
        queue.push(self._request(0, kind=TrafficKind.VOICE, deadline=10))
        queue.push(self._request(1))
        assert queue.drop_expired(current_frame=12) == 1
        assert [r.terminal_id for r in queue.peek_all()] == [1]

    def test_validation(self):
        with pytest.raises(ValueError):
            RequestQueue(capacity=0)


class TestRequestRecords:
    def test_request_timing_helpers(self):
        request = Request(terminal_id=0, kind=TrafficKind.VOICE, arrival_frame=5,
                          deadline_frame=13)
        assert request.waiting_frames(9) == 4
        assert request.frames_to_deadline(9) == 4
        assert not request.is_expired(12)
        assert request.is_expired(13)

    def test_request_validation(self):
        with pytest.raises(ValueError):
            Request(terminal_id=-1, kind=TrafficKind.DATA, arrival_frame=0)
        with pytest.raises(ValueError):
            Request(terminal_id=0, kind=TrafficKind.DATA, arrival_frame=0,
                    desired_packets=0)

    def test_allocation_validation(self):
        with pytest.raises(ValueError):
            Allocation(terminal_id=0, n_slots=0, packet_capacity=1)
        with pytest.raises(ValueError):
            Allocation(terminal_id=0, n_slots=1, packet_capacity=0)
        with pytest.raises(ValueError):
            Allocation(terminal_id=0, n_slots=1, packet_capacity=1, throughput=0.0)

    def test_frame_outcome_aggregates(self):
        outcome = FrameOutcome(frame_index=0)
        outcome.allocations.append(Allocation(terminal_id=0, n_slots=2, packet_capacity=4))
        outcome.allocations.append(Allocation(terminal_id=1, n_slots=1, packet_capacity=1))
        assert outcome.n_allocated_slots == 3
        assert outcome.n_successful_requests == 0


class TestFrameStructure:
    def test_minislot_equivalent(self):
        frame = FrameStructure(name="x", request_minislots=6, info_slots=5,
                               pilot_minislots=3, minislots_per_info_slot=3)
        assert frame.total_minislot_equivalent == 6 + 3 + 15

    def test_conversions(self):
        frame = FrameStructure(name="x", request_minislots=6, info_slots=5)
        assert frame.info_slots_from_minislots(7) == 2
        assert frame.minislots_from_info_slots(2) == 6
        with pytest.raises(ValueError):
            frame.info_slots_from_minislots(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            FrameStructure(name="x", request_minislots=0, info_slots=0)
        with pytest.raises(ValueError):
            FrameStructure(name="x", request_minislots=1, info_slots=1,
                           minislots_per_info_slot=0)

    def test_describe(self):
        frame = FrameStructure(name="proto", request_minislots=2, info_slots=3)
        row = frame.describe()
        assert row["protocol"] == "proto"
        assert row["info_slots"] == 3
