"""Tests for slotted request contention."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mac.contention import ContentionResult, run_contention
from repro.traffic.permission import PermissionPolicy
from tests.utils import data_terminal_with_packets, voice_terminal_with_packet


def policy(pv=1.0, pd=1.0, seed=0):
    return PermissionPolicy(pv, pd, np.random.default_rng(seed))


class TestRunContention:
    def test_single_candidate_always_wins_with_unity_permission(self):
        terminal = voice_terminal_with_packet(0)
        result = run_contention([terminal], 4, policy(), np.random.default_rng(0))
        assert result.n_winners == 1
        assert result.winners[0] is terminal
        assert result.collisions == 0

    def test_two_candidates_with_unity_permission_always_collide(self):
        terminals = [voice_terminal_with_packet(i) for i in range(2)]
        result = run_contention(terminals, 5, policy(), np.random.default_rng(0))
        assert result.n_winners == 0
        assert result.collisions == 5

    def test_no_candidates_all_idle(self):
        result = run_contention([], 6, policy(), np.random.default_rng(0))
        assert result.n_winners == 0
        assert result.idle_slots == 6
        assert result.attempts == 0

    def test_winner_stops_contending(self):
        """A successful terminal must not win a second minislot in the frame."""
        terminal = voice_terminal_with_packet(0)
        result = run_contention([terminal], 8, policy(), np.random.default_rng(0))
        assert result.n_winners == 1

    def test_moderate_permission_resolves_two_contenders(self):
        terminals = [data_terminal_with_packets(i, 5) for i in range(2)]
        result = run_contention(
            terminals, 20, policy(pd=0.3, seed=1), np.random.default_rng(1)
        )
        assert result.n_winners >= 1

    def test_attempts_counted(self):
        terminals = [data_terminal_with_packets(i, 5) for i in range(3)]
        result = run_contention(terminals, 5, policy(), np.random.default_rng(2))
        # with p=1 every remaining candidate transmits in every slot
        assert result.attempts == 15
        assert result.collisions == 5

    def test_negative_minislots_rejected(self):
        with pytest.raises(ValueError):
            run_contention([], -1, policy(), np.random.default_rng(0))

    def test_zero_minislots(self):
        result = run_contention([voice_terminal_with_packet(0)], 0, policy(),
                                np.random.default_rng(0))
        assert result.n_winners == 0

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=12),
        st.floats(min_value=0.05, max_value=1.0),
    )
    def test_conservation_property(self, n_candidates, n_slots, p):
        """Winners + collisions + idle slots account for every minislot, and a
        terminal can win at most once."""
        terminals = [data_terminal_with_packets(i, 3, seed=i) for i in range(n_candidates)]
        result = run_contention(
            terminals, n_slots, policy(pd=p, pv=p, seed=3), np.random.default_rng(3)
        )
        assert result.n_winners + result.collisions + result.idle_slots == n_slots
        assert result.n_winners <= min(n_candidates, n_slots)
        assert len({t.terminal_id for t in result.winners}) == result.n_winners


class TestContentionResult:
    def test_default_empty(self):
        result = ContentionResult()
        assert result.n_winners == 0
        assert result.attempts == 0
