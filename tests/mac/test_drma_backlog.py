"""DRMA service-scan regression: deep data backlogs stay cheap and correct.

The object path's per-frame service scan popped a deque of ``Request``
objects through ``_next_serviceable``; the array-native kernel replaces it
with an index-array cursor over parallel id columns.  The guarantee worth a
regression test: with *hundreds* of backlogged data packets (every terminal
mid-burst, queue full), the cursor path

* stays decision-for-decision identical to the view path, and
* touches each pending entry at most once per frame (O(pending), not
  O(pending²) rescans).
"""

import numpy as np

from repro.config import SimulationParameters
from repro.mac.drma import DRMAProtocol
from repro.sim.engine import UplinkSimulationEngine
from repro.sim.scenario import Scenario

PARAMS = SimulationParameters()


def _deep_backlog_scenario(seed=13):
    # Data-dominated cell: bursts average 100 packets against 8 information
    # slots a frame, so buffers (and the base-station queue) stay deep.
    return Scenario(
        protocol="drma", n_voice=4, n_data=25, use_request_queue=True,
        duration_s=0.6, warmup_s=0.2, seed=seed,
    )


class TestDeepDataBacklog:
    def test_batch_kernel_identical_under_deep_backlog(self):
        scenario = _deep_backlog_scenario()
        batch = UplinkSimulationEngine(scenario, PARAMS, use_batch_mac=True)
        view = UplinkSimulationEngine(scenario, PARAMS, use_batch_mac=False)
        deepest = 0
        for _ in range(280):
            a = batch.step()
            b = view.step()
            assert a == b, a.frame_index
            deepest = max(deepest, int(batch.population.occupancy.max()))
        # The regression scenario must actually exercise depth: at least one
        # buffer held a whole burst's worth of packets.
        assert deepest > 50, deepest
        assert batch.collect_results().summary() == view.collect_results().summary()

    def test_cursor_visits_each_pending_entry_at_most_once(self, monkeypatch):
        """O(pending) scan: the per-frame serviceability checks are bounded
        by (entries ever pending) — no per-slot rescan of the whole pool."""
        scenario = _deep_backlog_scenario(seed=5)
        engine = UplinkSimulationEngine(scenario, PARAMS, use_batch_mac=True)
        protocol = engine.protocol
        assert isinstance(protocol, DRMAProtocol)

        original = DRMAProtocol.run_frame_batch
        observed = []

        def counting(self, frame_index, population, snapshot):
            outcome = original(self, frame_index, population, snapshot)
            # Upper bound on pending entries this frame: reservations +
            # queue capacity + one winner per converted minislot.
            info_slots = self.frame_structure.info_slots
            bound = (
                len(self.reservations)
                + PARAMS.request_queue_capacity
                + info_slots * PARAMS.drma_minislots_per_info_slot
            )
            observed.append((len(outcome.allocations), bound))
            return outcome

        monkeypatch.setattr(DRMAProtocol, "run_frame_batch", counting)
        for _ in range(200):
            engine.step()
        # Service volume per frame is bounded by the info-slot budget —
        # the cursor can never serve (or re-scan into) more than that.
        assert all(
            served <= PARAMS.n_info_slots for served, _ in observed
        )

    def test_queue_round_trip_preserves_leftover_requests(self):
        """Leftovers the frame never reached re-enter the queue with their
        original arrival frames (backlog rows keep their Request object)."""
        scenario = _deep_backlog_scenario(seed=2)
        engine = UplinkSimulationEngine(scenario, PARAMS, use_batch_mac=True)
        saw_queued = False
        for _ in range(240):
            outcome = engine.step()
            queue = engine.protocol.request_queue
            assert len(queue) == outcome.queued_requests
            if len(queue):
                saw_queued = True
                assert all(
                    not request.is_reservation
                    and request.arrival_frame <= engine.frame_index
                    for request in queue
                )
        assert saw_queued
