"""Differential tests: array-native MAC kernels vs the view-walking paths.

Every protocol's ``run_frame_batch`` must be **bit-identical** to its
``run_frame`` in parity RNG mode: same allocations (materialised from grant
columns), same acknowledgements, same contention statistics, same queue
state, frame by frame — and therefore identical end-of-run results.  The
engines below share one scenario and differ only in ``use_batch_mac``.
"""

import pytest

from repro.config import SimulationParameters
from repro.mac.registry import available_protocols
from repro.sim.engine import UplinkSimulationEngine
from repro.sim.scenario import Scenario

PARAMS = SimulationParameters()


def engine_pair(protocol, queue, seed, n_voice=12, n_data=4, duration_s=0.5):
    scenario = Scenario(
        protocol=protocol, n_voice=n_voice, n_data=n_data,
        use_request_queue=queue, duration_s=duration_s, warmup_s=0.1,
        seed=seed,
    )
    return (
        UplinkSimulationEngine(scenario, PARAMS, use_batch_mac=True),
        UplinkSimulationEngine(scenario, PARAMS, use_batch_mac=False),
    )


class TestKernelEquivalence:
    @pytest.mark.parametrize("queue", [False, True])
    @pytest.mark.parametrize("protocol", available_protocols())
    def test_frame_outcomes_bit_identical(self, protocol, queue):
        batch, view = engine_pair(protocol, queue, seed=7)
        for _ in range(180):
            a = batch.step()
            b = view.step()
            assert a == b, (protocol, queue, a.frame_index)
        assert (
            batch.collect_results().summary() == view.collect_results().summary()
        )

    @pytest.mark.parametrize("protocol", ["charisma", "drma"])
    @pytest.mark.parametrize("seed", [0, 5, 1234])
    def test_mac_heavy_protocols_across_seeds(self, protocol, seed):
        batch, view = engine_pair(protocol, True, seed=seed, n_voice=14, n_data=6)
        assert batch.run().summary() == view.run().summary()

    def test_voice_only_and_data_only_populations(self):
        for n_voice, n_data in ((10, 0), (0, 6)):
            batch, view = engine_pair(
                "charisma", True, seed=3, n_voice=n_voice, n_data=n_data
            )
            assert batch.run().summary() == view.run().summary()

    def test_batch_kernel_emits_grant_columns(self):
        """The kernels must actually run columnar (grants, not objects)."""
        batch, _ = engine_pair("dtdma_vr", False, seed=2)
        saw_grants = False
        for _ in range(120):
            outcome = batch.step()
            if outcome.grants is not None and len(outcome.grants):
                saw_grants = True
                # Materialisation is consistent with the columns.
                allocations = outcome.allocations
                assert [a.terminal_id for a in allocations] == list(
                    outcome.grants.terminal_ids
                )
                assert sum(a.n_slots for a in allocations) == (
                    outcome.grants.total_slots
                )
        assert saw_grants

    @pytest.mark.parametrize("backend", ["columnar", "object"])
    def test_timed_step_mirrors_untimed_step(self, backend):
        """The instrumented ``_step_timed`` body must stay in sync with the
        real step paths: identical per-frame outcomes and final results on
        both backends, with every phase accumulating time."""
        scenario = Scenario(protocol="charisma", n_voice=8, n_data=3,
                            use_request_queue=True, duration_s=0.4,
                            warmup_s=0.1, seed=6, engine_backend=backend)
        timed = UplinkSimulationEngine(scenario, PARAMS)
        plain = UplinkSimulationEngine(scenario, PARAMS)
        phases = timed.enable_phase_timing()
        for _ in range(150):
            assert timed.step() == plain.step()
        assert (
            timed.collect_results().summary() == plain.collect_results().summary()
        )
        assert set(phases) == {"traffic", "channel", "mac", "phy", "metrics"}
        assert all(seconds > 0.0 for seconds in phases.values())

    def test_base_class_fallback_delegates_to_run_frame(self):
        """Protocols without a batch kernel keep working on the columnar
        backend: the MACProtocol default drives their run_frame over the
        population's views and produces the exact view-path outcome."""
        from repro.mac.base import MACProtocol

        scenario = Scenario(protocol="dtdma_fr", n_voice=6, n_data=2,
                            duration_s=0.3, warmup_s=0.1, seed=4)
        via_default = UplinkSimulationEngine(scenario, PARAMS)
        via_view = UplinkSimulationEngine(scenario, PARAMS, use_batch_mac=False)
        # Route the first engine through the base-class fallback instead of
        # the protocol's own kernel.
        via_default.protocol.run_frame_batch = (
            lambda frame, population, snapshot: MACProtocol.run_frame_batch(
                via_default.protocol, frame, population, snapshot
            )
        )
        for _ in range(100):
            assert via_default.step() == via_view.step()
