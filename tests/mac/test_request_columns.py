"""Unit tests for the columnar request/grant containers."""

import numpy as np
import pytest

from repro.mac.requests import (
    Allocation,
    FrameOutcome,
    GrantColumns,
    Request,
    RequestColumns,
)
from repro.phy.csi import CSIEstimate
from repro.traffic.packets import TrafficKind


def _requests():
    return [
        Request(terminal_id=3, kind=TrafficKind.VOICE, arrival_frame=10,
                desired_packets=1, deadline_frame=17,
                csi=CSIEstimate(amplitude=0.8, frame_index=10,
                                validity_frames=2)),
        Request(terminal_id=7, kind=TrafficKind.DATA, arrival_frame=8,
                desired_packets=42),
        Request(terminal_id=1, kind=TrafficKind.VOICE, arrival_frame=12,
                is_reservation=True),
    ]


class TestRequestColumns:
    def test_round_trip_preserves_every_field(self):
        originals = _requests()
        columns = RequestColumns.from_requests(originals, csi_validity=2)
        rebuilt = columns.to_requests()
        assert rebuilt == originals

    def test_sentinels_encode_missing_values(self):
        columns = RequestColumns.from_requests(_requests())
        assert columns.deadline_frames[1] == -1
        assert np.isnan(columns.csi_amplitudes[1])
        assert columns.csi_frames[1] == -1
        assert columns.frames_to_deadline(1, 100) is None
        assert columns.frames_to_deadline(0, 12) == 5
        assert columns.frames_to_deadline(0, 30) == 0

    def test_set_csi_attaches_estimate(self):
        columns = RequestColumns.from_requests(_requests())
        columns.set_csi(1, 0.5, 9)
        rebuilt = columns.to_requests([1])[0]
        assert rebuilt.csi is not None
        assert rebuilt.csi.amplitude == 0.5
        assert rebuilt.csi.frame_index == 9

    def test_concatenate_stacks_in_order(self):
        first = RequestColumns.from_requests(_requests()[:1])
        second = RequestColumns.from_requests(_requests()[1:])
        merged = RequestColumns.concatenate([first, second])
        assert len(merged) == 3
        assert merged.to_requests() == _requests()

    def test_empty(self):
        empty = RequestColumns.empty()
        assert len(empty) == 0
        assert empty.to_requests() == []


class TestGrantColumns:
    def test_materialises_validated_allocations(self):
        grants = GrantColumns()
        grants.append(2, 1, 4, 3.0)
        grants.append(5, 3, 3, None)
        assert len(grants) == 2
        assert grants.total_slots == 4
        assert grants.to_allocations() == [
            Allocation(terminal_id=2, n_slots=1, packet_capacity=4, throughput=3.0),
            Allocation(terminal_id=5, n_slots=3, packet_capacity=3, throughput=None),
        ]


class TestFrameOutcome:
    def test_grant_columns_back_lazy_allocations(self):
        outcome = FrameOutcome(4)
        grants = outcome.use_grant_columns()
        grants.append(1, 2, 2, None)
        assert outcome.n_allocated_slots == 2
        assert outcome.allocations[0].terminal_id == 1
        # materialisation is cached
        assert outcome.allocations is outcome.allocations

    def test_object_and_columnar_outcomes_compare_equal(self):
        columnar = FrameOutcome(0)
        columnar.use_grant_columns().append(3, 1, 1, None)
        object_form = FrameOutcome(0)
        object_form.allocations.append(
            Allocation(terminal_id=3, n_slots=1, packet_capacity=1)
        )
        assert columnar == object_form

    def test_mixing_representations_is_rejected(self):
        outcome = FrameOutcome(0)
        outcome.allocations.append(
            Allocation(terminal_id=0, n_slots=1, packet_capacity=1)
        )
        with pytest.raises(RuntimeError):
            outcome.use_grant_columns()

    def test_counters_default_and_compare(self):
        a, b = FrameOutcome(1), FrameOutcome(1)
        assert a == b
        b.contention_attempts = 2
        assert a != b
