"""Frame-level behavioural tests of the five baseline protocols."""

import numpy as np
import pytest

from repro.config import SimulationParameters
from repro.mac.registry import available_protocols, build_modem, create_protocol, protocol_class
from tests.utils import (
    PARAMS,
    build_protocol,
    data_terminal_with_packets,
    population_snapshot,
    voice_terminal_with_packet,
)

# A permissive parameter set that makes contention deterministic enough for
# frame-level unit assertions (single contenders always transmit).
EAGER = PARAMS.with_overrides(
    voice_permission_probability=1.0, data_permission_probability=1.0
)


class TestRegistry:
    def test_all_six_protocols_available(self):
        assert available_protocols() == [
            "charisma", "drma", "dtdma_fr", "dtdma_vr", "rama", "rmav"
        ]

    def test_unknown_protocol_rejected(self):
        with pytest.raises(KeyError):
            protocol_class("nonexistent")
        with pytest.raises(KeyError):
            create_protocol("nonexistent", PARAMS, np.random.default_rng(0))

    def test_modem_kind_matches_protocol(self):
        assert build_modem("charisma", PARAMS).is_adaptive
        assert build_modem("dtdma_vr", PARAMS).is_adaptive
        assert not build_modem("dtdma_fr", PARAMS).is_adaptive
        assert not build_modem("rama", PARAMS).is_adaptive

    def test_rmav_never_uses_queue(self):
        protocol = build_protocol("rmav", use_request_queue=True)
        assert protocol.use_request_queue is False
        assert protocol.request_queue is None

    def test_describe_rows(self):
        for name in available_protocols():
            row = build_protocol(name).describe()
            assert row["name"] == name
            assert "frame" in row


class TestSharedBaseBehaviour:
    def test_contention_candidates_exclude_reserved_and_empty(self):
        protocol = build_protocol("dtdma_fr", params=EAGER)
        talker = voice_terminal_with_packet(0, params=EAGER)
        reserved = voice_terminal_with_packet(1, params=EAGER)
        idle = voice_terminal_with_packet(2, params=EAGER, in_talkspurt=False)
        idle._buffer.clear()
        data = data_terminal_with_packets(3, 5, params=EAGER)
        protocol.reservations.grant(1, 0)
        candidates = protocol.contention_candidates([talker, reserved, idle, data])
        assert {t.terminal_id for t in candidates} == {0, 3}

    def test_candidates_exclude_queued_terminals(self):
        protocol = build_protocol("dtdma_fr", use_request_queue=True, params=EAGER)
        data = data_terminal_with_packets(0, 5, params=EAGER)
        protocol.request_queue.push(protocol.make_request(data, 0))
        assert protocol.contention_candidates([data]) == []

    def test_slot_capacity_fixed_vs_adaptive(self):
        fixed = build_protocol("dtdma_fr", params=EAGER)
        adaptive = build_protocol("dtdma_vr", params=EAGER)
        assert fixed.slot_capacity(3.0) == (1, None)
        per_slot, throughput = adaptive.slot_capacity(3.0)
        assert per_slot == 5 and throughput == 5.0
        # outage on the adaptive PHY still transmits at the most robust mode
        per_slot, throughput = adaptive.slot_capacity(1e-4)
        assert per_slot == 1 and throughput == 0.5


def run_single_frame(protocol, terminals, amplitude=1.0, frame=0):
    snapshot = population_snapshot(terminals, amplitude=amplitude, frame_index=frame)
    return protocol.run_frame(frame, terminals, snapshot)


class TestDTDMAFR:
    def test_voice_request_served_and_reserved(self):
        protocol = build_protocol("dtdma_fr", params=EAGER)
        terminal = voice_terminal_with_packet(0, params=EAGER)
        outcome = run_single_frame(protocol, [terminal])
        assert outcome.n_successful_requests == 1
        assert len(outcome.allocations) == 1
        assert protocol.reservations.has(0)

    def test_reserved_voice_served_without_contention(self):
        protocol = build_protocol("dtdma_fr", params=EAGER)
        terminal = voice_terminal_with_packet(0, params=EAGER)
        protocol.reservations.grant(0, 0)
        outcome = run_single_frame(protocol, [terminal])
        assert outcome.contention_attempts == 0
        assert len(outcome.allocations) == 1

    def test_voice_served_before_data(self):
        protocol = build_protocol("dtdma_fr", params=EAGER)
        # more contenders than info slots: every info slot should go to voice
        voices = [voice_terminal_with_packet(i, params=EAGER, seed=i) for i in range(10)]
        data = [data_terminal_with_packets(10 + i, 50, params=EAGER, seed=i) for i in range(3)]
        outcome = run_single_frame(protocol, voices + data)
        voice_ids = {t.terminal_id for t in voices}
        allocated_voice = sum(a.terminal_id in voice_ids for a in outcome.allocations)
        allocated_data = len(outcome.allocations) - allocated_voice
        assert allocated_voice >= allocated_data

    def test_never_allocates_more_than_info_slots(self):
        protocol = build_protocol("dtdma_fr", params=EAGER)
        terminals = [voice_terminal_with_packet(i, params=EAGER, seed=i) for i in range(30)]
        outcome = run_single_frame(protocol, terminals)
        assert outcome.n_allocated_slots <= protocol.frame_structure.info_slots

    def test_unserved_requests_queued_when_enabled(self):
        # One information slot, already taken by a reserved voice user; the
        # lone data contender wins the request phase but gets no slot, so its
        # request must end up in the base-station queue.
        eager_small = EAGER.with_overrides(n_info_slots=1)
        protocol = build_protocol("dtdma_fr", use_request_queue=True, params=eager_small)
        reserved = voice_terminal_with_packet(0, params=eager_small)
        protocol.reservations.grant(0, 0)
        data = data_terminal_with_packets(1, 200, params=eager_small)
        outcome = run_single_frame(protocol, [reserved, data])
        assert outcome.queued_requests == 1
        assert protocol.request_queue.contains_terminal(1)

    def test_fixed_rate_one_packet_per_slot(self):
        protocol = build_protocol("dtdma_fr", params=EAGER)
        terminal = data_terminal_with_packets(0, 100, params=EAGER)
        outcome = run_single_frame(protocol, [terminal], amplitude=3.0)
        for allocation in outcome.allocations:
            assert allocation.packet_capacity == allocation.n_slots


class TestDTDMAVR:
    def test_adaptive_slots_carry_multiple_packets_in_good_channel(self):
        protocol = build_protocol("dtdma_vr", params=EAGER)
        terminal = data_terminal_with_packets(0, 100, params=EAGER)
        outcome = run_single_frame(protocol, [terminal], amplitude=3.0)
        assert outcome.allocations
        assert outcome.allocations[0].packet_capacity > outcome.allocations[0].n_slots

    def test_allocates_regardless_of_deep_fade(self):
        """The VR baseline is channel-blind: a user in outage still gets slots."""
        protocol = build_protocol("dtdma_vr", params=EAGER)
        terminal = voice_terminal_with_packet(0, params=EAGER)
        outcome = run_single_frame(protocol, [terminal], amplitude=1e-3)
        assert len(outcome.allocations) == 1


class TestRAMA:
    def test_auction_produces_single_winner_per_slot(self):
        protocol = build_protocol("rama", params=EAGER)
        terminals = [data_terminal_with_packets(i, 10, params=EAGER, seed=i)
                     for i in range(20)]
        outcome = run_single_frame(protocol, terminals)
        assert outcome.n_successful_requests <= protocol.params.rama_auction_slots

    def test_no_thrashing_with_many_contenders(self):
        """Unlike slotted contention, the auction keeps making progress."""
        protocol = build_protocol("rama", params=EAGER)
        terminals = [voice_terminal_with_packet(i, params=EAGER, seed=i) for i in range(40)]
        outcome = run_single_frame(protocol, terminals)
        assert outcome.n_successful_requests >= 1

    def test_voice_wins_over_data(self):
        protocol = build_protocol("rama", params=EAGER)
        voice = voice_terminal_with_packet(0, params=EAGER)
        data = [data_terminal_with_packets(i + 1, 10, params=EAGER, seed=i) for i in range(5)]
        outcome = run_single_frame(protocol, [voice] + data)
        assert outcome.acknowledgements[0].terminal_id == 0

    def test_tie_probability_properties(self):
        protocol = build_protocol("rama", params=EAGER)
        assert protocol.whole_id_tie_probability(1) == 0.0
        assert protocol.whole_id_tie_probability(2) > 0.0
        assert (
            protocol.whole_id_tie_probability(50)
            > protocol.whole_id_tie_probability(2)
        )
        assert protocol.whole_id_tie_probability(50) < 0.05


class TestRMAV:
    def test_at_most_one_winner_per_frame(self):
        protocol = build_protocol("rmav", params=EAGER)
        terminals = [voice_terminal_with_packet(0, params=EAGER)]
        outcome = run_single_frame(protocol, terminals)
        assert outcome.n_successful_requests == 1

    def test_two_contenders_collide(self):
        protocol = build_protocol("rmav", params=EAGER)
        terminals = [voice_terminal_with_packet(i, params=EAGER, seed=i) for i in range(2)]
        outcome = run_single_frame(protocol, terminals)
        assert outcome.n_successful_requests == 0
        assert outcome.contention_collisions == 1

    def test_data_grant_bounded_by_pmax(self):
        protocol = build_protocol("rmav", params=EAGER)
        terminal = data_terminal_with_packets(0, 500, params=EAGER)
        outcome = run_single_frame(protocol, [terminal])
        assert outcome.allocations
        assert outcome.allocations[0].n_slots <= protocol.params.rmav_pmax


class TestDRMA:
    def test_idle_slots_convert_to_request_opportunities(self):
        protocol = build_protocol("drma", params=EAGER)
        terminal = voice_terminal_with_packet(0, params=EAGER)
        outcome = run_single_frame(protocol, [terminal])
        # the first slot was idle, got converted, the request succeeded and a
        # later slot carried the packet
        assert outcome.n_successful_requests == 1
        assert len(outcome.allocations) == 1
        assert protocol.reservations.has(0)

    def test_full_frame_offers_no_contention(self):
        """When every slot is already assigned, nobody can even request."""
        protocol = build_protocol("drma", params=EAGER)
        n_slots = protocol.frame_structure.info_slots
        reserved = []
        for i in range(n_slots):
            terminal = voice_terminal_with_packet(i, params=EAGER, seed=i)
            protocol.reservations.grant(i, 0)
            reserved.append(terminal)
        newcomer = voice_terminal_with_packet(n_slots, params=EAGER, seed=99)
        outcome = run_single_frame(protocol, reserved + [newcomer])
        assert outcome.contention_attempts == 0
        assert outcome.n_successful_requests == 0

    def test_data_user_can_win_multiple_slots_by_recontending(self):
        protocol = build_protocol("drma", params=EAGER)
        terminal = data_terminal_with_packets(0, 500, params=EAGER)
        outcome = run_single_frame(protocol, [terminal])
        assert len(outcome.allocations) >= 2

    def test_slot_budget_respected(self):
        protocol = build_protocol("drma", params=EAGER)
        terminals = [data_terminal_with_packets(i, 50, params=EAGER, seed=i)
                     for i in range(20)]
        outcome = run_single_frame(protocol, terminals)
        assert outcome.n_allocated_slots <= protocol.frame_structure.info_slots
