"""Differential tests: the columnar and object engine backends must agree.

The columnar backend's kernels preserve the object backend's RNG call order
everywhere (batched draws are stream-compatible with their scalar
equivalents), so the two backends are required to produce **identical**
``SimulationResult`` values under a common seed — not merely statistically
equivalent ones.  Every protocol, both queue variants, and several seeds are
exercised.
"""

import pytest

from repro.config import SimulationParameters
from repro.mac.registry import available_protocols
from repro.sim.engine import UplinkSimulationEngine
from repro.sim.runner import run_simulation
from repro.sim.scenario import Scenario

PARAMS = SimulationParameters()


def run_pair(**kwargs):
    results = {}
    for backend in ("object", "columnar"):
        scenario = Scenario(engine_backend=backend, **kwargs)
        results[backend] = run_simulation(scenario, PARAMS)
    return results["object"], results["columnar"]


class TestBackendParity:
    @pytest.mark.parametrize("protocol", available_protocols())
    def test_identical_results_per_protocol(self, protocol):
        obj, col = run_pair(
            protocol=protocol, n_voice=12, n_data=3,
            use_request_queue=(protocol != "rmav"),
            duration_s=0.6, warmup_s=0.2, seed=7,
        )
        assert obj.voice == col.voice
        assert obj.mac == col.mac
        assert obj.data.generated == col.data.generated
        assert obj.data.delivered == col.data.delivered
        assert obj.data.retransmissions == col.data.retransmissions
        assert obj.data.delay_frames == col.data.delay_frames

    @pytest.mark.parametrize("seed", [0, 3, 12345])
    def test_identical_across_seeds(self, seed):
        obj, col = run_pair(
            protocol="charisma", n_voice=10, n_data=4,
            use_request_queue=True, duration_s=0.5, warmup_s=0.15, seed=seed,
        )
        assert obj.summary() == col.summary()

    def test_identical_without_queue(self):
        obj, col = run_pair(
            protocol="dtdma_vr", n_voice=14, n_data=2,
            use_request_queue=False, duration_s=0.5, warmup_s=0.1, seed=2,
        )
        assert obj.summary() == col.summary()

    def test_identical_voice_only_and_data_only(self):
        for n_voice, n_data in ((10, 0), (0, 4)):
            obj, col = run_pair(
                protocol="dtdma_fr", n_voice=n_voice, n_data=n_data,
                duration_s=0.4, warmup_s=0.1, seed=5,
            )
            assert obj.summary() == col.summary()

    def test_empty_population(self):
        obj, col = run_pair(
            protocol="charisma", n_voice=0, n_data=0,
            duration_s=0.3, warmup_s=0.0, seed=0,
        )
        assert obj.summary() == col.summary()

    def test_stepwise_frame_outcomes_match(self):
        """Per-frame MAC decisions agree, not only the final aggregates."""
        engines = {
            backend: UplinkSimulationEngine(
                Scenario(protocol="charisma", n_voice=8, n_data=2,
                         duration_s=0.5, warmup_s=0.1, seed=4,
                         engine_backend=backend),
                PARAMS,
            )
            for backend in ("object", "columnar")
        }
        for _ in range(150):
            a = engines["object"].step()
            b = engines["columnar"].step()
            assert a.frame_index == b.frame_index
            assert a.allocations == b.allocations
            assert a.acknowledgements == b.acknowledgements
            assert a.contention_attempts == b.contention_attempts
            assert a.contention_collisions == b.contention_collisions
            assert a.queued_requests == b.queued_requests


class TestMacroStepParity:
    """Macro-stepped blocks must be bit-identical to per-frame stepping.

    The macro engine re-partitions every random stream's draws (traffic
    plans, contention pools, deferred PHY batches) without re-ordering any
    stream, so in parity mode the results — and the object backend's —
    must match exactly for every block size.
    """

    @pytest.mark.parametrize("protocol", available_protocols())
    def test_macro_block_sizes_bit_identical(self, protocol):
        base = dict(
            protocol=protocol, n_voice=12, n_data=3,
            use_request_queue=(protocol != "rmav"),
            duration_s=0.6, warmup_s=0.2, seed=7,
        )
        reference = run_simulation(Scenario(**base), PARAMS)
        for macro_frames in (4, 16, 64):
            result = run_simulation(
                Scenario(**base, macro_frames=macro_frames), PARAMS
            )
            assert result.summary() == reference.summary(), (
                protocol, macro_frames,
            )

    @pytest.mark.parametrize("protocol", ("rmav", "dtdma_vr", "drma"))
    def test_macro_matches_object_backend(self, protocol):
        base = dict(
            protocol=protocol, n_voice=10, n_data=4,
            use_request_queue=(protocol != "rmav"),
            duration_s=0.5, warmup_s=0.15, seed=3,
        )
        obj = run_simulation(
            Scenario(**base, engine_backend="object"), PARAMS
        )
        macro = run_simulation(Scenario(**base, macro_frames=16), PARAMS)
        assert obj.summary() == macro.summary()

    def test_macro_per_frame_collector_streams_match(self):
        """Not just the aggregates: the per-frame metric streams align,
        so every lookahead truncation lands losses in the right frame."""
        base = dict(protocol="dtdma_vr", n_voice=16, n_data=4,
                    duration_s=0.6, warmup_s=0.1, seed=11)
        engines = {}
        for macro_frames in (1, 16):
            engine = UplinkSimulationEngine(
                Scenario(**base, macro_frames=macro_frames), PARAMS
            )
            engine.run()
            engines[macro_frames] = engine.collector
        assert (
            engines[1].data_delivered_per_frame
            == engines[16].data_delivered_per_frame
        )
        assert (
            engines[1].voice_loss_events_per_frame
            == engines[16].voice_loss_events_per_frame
        )


class TestColumnarMeasurementWindow:
    """The PR-2 warm-up epoch-tagging semantics must hold on array counters."""

    @pytest.mark.parametrize("protocol", available_protocols())
    def test_outcome_conservation_with_warmup_backlog(self, protocol):
        scenario = Scenario(
            protocol=protocol, n_voice=10, n_data=4,
            use_request_queue=(protocol != "rmav"),
            duration_s=0.4, warmup_s=0.5, seed=9,
            engine_backend="columnar",
        )
        result = run_simulation(scenario, PARAMS)
        voice, data = result.voice, result.data
        assert voice.delivered + voice.errored + voice.dropped <= voice.generated
        assert data.delivered <= data.generated
        assert len(data.delay_frames) == data.delivered
        assert all(delay >= 0 for delay in data.delay_frames)

    def test_window_reset_clears_columnar_counters(self):
        engine = UplinkSimulationEngine(
            Scenario(protocol="dtdma_fr", n_voice=8, n_data=2,
                     duration_s=0.5, warmup_s=0.0, seed=3,
                     engine_backend="columnar"),
            PARAMS,
        )
        for _ in range(120):
            engine.step()
        population = engine.population
        assert population.voice_generated.sum() > 0
        population.begin_measurement(engine.frame_index)
        assert population.voice_generated.sum() == 0
        assert population.voice_loss_total == 0
        assert population.all_data_delays() == []
        # Pre-window backlog may still be buffered — its later outcomes must
        # not be counted against the fresh window.
        engine.collector.reset()
        for _ in range(120):
            engine.step()
        result = engine.collect_results()
        voice = result.voice
        assert voice.delivered + voice.errored + voice.dropped <= voice.generated


class TestDenseIdValidation:
    def test_engine_rejects_sparse_terminal_ids(self):
        import numpy as np

        from repro.traffic.terminal import VoiceTerminal

        scenario = Scenario(protocol="dtdma_fr", n_voice=2, n_data=0,
                            duration_s=0.1, warmup_s=0.0,
                            engine_backend="object")
        engine = UplinkSimulationEngine(scenario, PARAMS)
        sparse = [VoiceTerminal(5, PARAMS, np.random.default_rng(0))]
        with pytest.raises(ValueError, match="dense 0..n-1"):
            engine._validate_dense_ids(sparse)

    def test_snapshot_rejects_out_of_range_ids(self):
        from tests.utils import make_snapshot

        snapshot = make_snapshot([1.0, 2.0, 0.5])
        assert snapshot.amplitude_of(2) == 0.5
        with pytest.raises(IndexError, match="dense"):
            snapshot.amplitude_of(3)
        with pytest.raises(IndexError, match="dense"):
            snapshot.amplitude_of(-1)
        with pytest.raises(IndexError, match="dense"):
            snapshot.snr_db_of(17)

    def test_scenario_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="engine_backend"):
            Scenario(protocol="charisma", n_voice=1, n_data=0,
                     engine_backend="gpu")
