"""Property-based tests of whole-system invariants.

These run very short end-to-end simulations over randomly drawn protocols,
populations and seeds, and check the accounting invariants that must hold for
*any* configuration — the kind of cross-cutting guarantees unit tests on
individual modules cannot give.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import SimulationParameters
from repro.mac.registry import available_protocols
from repro.sim.runner import run_simulation
from repro.sim.scenario import Scenario

PARAMS = SimulationParameters()

SCENARIO_STRATEGY = st.fixed_dictionaries(
    {
        "protocol": st.sampled_from(available_protocols()),
        "n_voice": st.integers(min_value=0, max_value=20),
        "n_data": st.integers(min_value=0, max_value=6),
        "use_request_queue": st.booleans(),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


def run_short(config: dict):
    scenario = Scenario(duration_s=0.3, warmup_s=0.1, **config)
    return scenario, run_simulation(scenario, PARAMS)


class TestWholeSystemInvariants:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(SCENARIO_STRATEGY)
    def test_accounting_invariants(self, config):
        scenario, result = run_short(config)

        voice, data, mac = result.voice, result.data, result.mac
        # Rates and ratios are probabilities.
        assert 0.0 <= voice.loss_rate <= 1.0
        assert 0.0 <= voice.dropping_rate <= 1.0
        assert 0.0 <= voice.error_rate <= 1.0
        assert 0.0 <= mac.slot_utilisation <= 1.0
        # Outcomes never exceed what was generated (allowing the few packets
        # that were already buffered when the warm-up statistics were reset).
        slack = scenario.n_voice + scenario.n_data
        assert voice.delivered + voice.errored + voice.dropped <= voice.generated + slack
        assert data.delivered <= data.generated + slack
        # Delays are non-negative and only recorded for delivered packets.
        assert all(d >= 0 for d in data.delay_frames)
        assert len(data.delay_frames) == data.delivered
        # The engine measured exactly the requested number of frames.
        assert mac.n_frames == scenario.measured_frames(PARAMS)

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(SCENARIO_STRATEGY)
    def test_runs_are_reproducible(self, config):
        _, first = run_short(config)
        _, second = run_short(config)
        assert first.summary() == second.summary()

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=2**16), st.booleans())
    def test_protocols_share_traffic_realisation(self, seed, use_queue):
        """Common random numbers: with the same seed, every protocol sees the
        same offered voice/data traffic (the generated-packet counts match)."""
        generated = set()
        for protocol in ("charisma", "dtdma_fr"):
            queue = use_queue and protocol != "rmav"
            _, result = run_short(
                {"protocol": protocol, "n_voice": 6, "n_data": 2,
                 "use_request_queue": queue, "seed": seed}
            )
            generated.add((result.voice.generated, result.data.generated))
        assert len(generated) == 1
