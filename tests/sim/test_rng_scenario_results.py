"""Tests for random streams, scenario descriptions and result containers."""

import numpy as np
import pytest

from repro.config import SimulationParameters
from repro.metrics.collector import MacStats
from repro.metrics.data import DataMetrics
from repro.metrics.voice import VoiceMetrics
from repro.sim.results import SimulationResult, SweepResult
from repro.sim.rng import STREAM_NAMES, RandomStreams
from repro.sim.scenario import Scenario

PARAMS = SimulationParameters()


class TestRandomStreams:
    def test_all_streams_present(self):
        streams = RandomStreams(seed=7)
        assert streams.names == STREAM_NAMES
        for name in STREAM_NAMES:
            assert isinstance(streams[name], np.random.Generator)

    def test_attribute_access(self):
        streams = RandomStreams(seed=7)
        assert streams.channel is streams["channel"]

    def test_reproducible_across_instances(self):
        a = RandomStreams(seed=3)["channel"].random(8)
        b = RandomStreams(seed=3)["channel"].random(8)
        np.testing.assert_allclose(a, b)

    def test_streams_are_independent(self):
        streams = RandomStreams(seed=3)
        a = streams["channel"].random(8)
        b = streams["traffic"].random(8)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1)["mac"].random(8)
        b = RandomStreams(seed=2)["mac"].random(8)
        assert not np.allclose(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomStreams(seed=-1)
        with pytest.raises(ValueError):
            RandomStreams(seed=0, names=("a", "a"))
        with pytest.raises(KeyError):
            RandomStreams(seed=0)["nonexistent"]


class TestScenario:
    def test_frame_counts(self):
        scenario = Scenario(protocol="charisma", n_voice=10, n_data=5,
                            duration_s=2.0, warmup_s=0.5)
        assert scenario.measured_frames(PARAMS) == 800
        assert scenario.warmup_frames(PARAMS) == 200
        assert scenario.n_terminals == 15

    def test_with_overrides(self):
        scenario = Scenario(protocol="charisma", n_voice=10, n_data=0)
        other = scenario.with_overrides(n_voice=50, protocol="rama")
        assert other.n_voice == 50 and other.protocol == "rama"
        assert scenario.n_voice == 10

    def test_label(self):
        scenario = Scenario(protocol="drma", n_voice=4, n_data=2,
                            use_request_queue=True, seed=9)
        assert "drma" in scenario.label() and "queue" in scenario.label()

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario(protocol="", n_voice=1, n_data=0)
        with pytest.raises(ValueError):
            Scenario(protocol="charisma", n_voice=-1, n_data=0)
        with pytest.raises(ValueError):
            Scenario(protocol="charisma", n_voice=1, n_data=0, duration_s=0.0)
        with pytest.raises(ValueError):
            Scenario(protocol="charisma", n_voice=1, n_data=0, warmup_s=-1.0)
        with pytest.raises(ValueError):
            Scenario(protocol="charisma", n_voice=1, n_data=0, mobile_speed_kmh=-5.0)


def _result(protocol="charisma", n_voice=10, loss=0.01, throughput=2.0, delay_frames=(4, 8)):
    scenario = Scenario(protocol=protocol, n_voice=n_voice, n_data=2)
    voice = VoiceMetrics(generated=1000, delivered=int(1000 * (1 - loss)),
                         errored=int(1000 * loss / 2), dropped=int(1000 * loss / 2))
    data = DataMetrics(generated=300, delivered=int(throughput * 100),
                       retransmissions=3, delay_frames=list(delay_frames),
                       n_frames=100, frame_duration_s=PARAMS.frame_duration_s)
    mac = MacStats(n_frames=100, contention_attempts=50, contention_collisions=5,
                   idle_request_slots=10, allocated_slots=300,
                   info_slots_per_frame=8, mean_queue_length=0.5)
    return SimulationResult(scenario=scenario, voice=voice, data=data, mac=mac)


class TestSimulationResult:
    def test_convenience_accessors(self):
        result = _result(loss=0.02, throughput=3.0)
        assert result.voice_loss_rate == pytest.approx(0.02)
        assert result.data_throughput == pytest.approx(3.0)
        assert result.data_delay_s == pytest.approx(6 * PARAMS.frame_duration_s)

    def test_summary_keys(self):
        summary = _result().summary()
        for key in ("protocol", "n_voice", "voice_loss_rate",
                    "data_throughput_per_frame", "data_delay_s", "slot_utilisation"):
            assert key in summary


class TestSweepResult:
    def test_series_and_crossing(self):
        values = [10, 20, 30, 40]
        results = [_result(n_voice=v, loss=loss)
                   for v, loss in zip(values, (0.001, 0.004, 0.02, 0.3))]
        sweep = SweepResult(protocol="charisma", parameter="n_voice",
                            values=values, results=results)
        series = sweep.series("voice_loss_rate")
        assert len(series) == 4 and series[0] < series[-1]
        assert sweep.crossing_value("voice_loss_rate", 0.01) == 30

    def test_crossing_none_when_below_threshold(self):
        values = [10, 20]
        results = [_result(n_voice=v, loss=0.001) for v in values]
        sweep = SweepResult(protocol="charisma", parameter="n_voice",
                            values=values, results=results)
        assert sweep.crossing_value("voice_loss_rate", 0.01) is None

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SweepResult(protocol="x", parameter="n_voice", values=[1], results=[])
