"""The fast RNG mode: statistical equivalence and stream plumbing.

``rng_mode="fast"`` batches whole-frame draws from per-subsystem child
streams, so a fast run is *not* bit-identical to a parity run — it is a
different, equally valid sample of the same stochastic model.  These tests
pin down exactly that contract:

* determinism — a fast run is reproducible from its seed;
* statistical equivalence — across seed replicates, the metric means of
  the two modes agree within a paired Student-t confidence interval (all
  six protocols);
* accounting — the PR-2 conservation invariants hold in fast mode;
* plumbing — child streams are deterministic, label-independent in order,
  and distinct across labels/streams; the fast contention kernel draws a
  single matrix and resolves the same process as the scalar path.
"""

import math

import numpy as np
import pytest

from repro.config import SimulationParameters
from repro.mac.contention import run_contention_ids
from repro.mac.registry import available_protocols
from repro.sim.rng import RandomStreams, child_stream
from repro.sim.runner import run_simulation
from repro.sim.scenario import Scenario

PARAMS = SimulationParameters()

SEEDS = (0, 1, 2, 3, 4, 5)


def _run(protocol, seed, rng_mode):
    return run_simulation(
        Scenario(
            protocol=protocol, n_voice=10, n_data=3, use_request_queue=True,
            duration_s=0.5, warmup_s=0.15, seed=seed, rng_mode=rng_mode,
        ),
        PARAMS,
    )


def _metrics(result):
    return {
        "voice_generated": float(result.voice.generated),
        "data_generated": float(result.data.generated),
        "slot_utilisation": float(result.mac.slot_utilisation),
    }


def _paired_t_half_width(differences, confidence=0.99):
    n = len(differences)
    mean = sum(differences) / n
    variance = sum((d - mean) ** 2 for d in differences) / (n - 1)
    from scipy import stats as scipy_stats

    t_value = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return mean, t_value * math.sqrt(variance / n)


class TestStatisticalEquivalence:
    @pytest.mark.parametrize("protocol", available_protocols())
    def test_metric_means_within_paired_t_ci(self, protocol):
        """Seed-paired parity/fast metric differences are centred on zero.

        For each metric the paired per-seed difference (parity − fast) must
        have |mean| within the Student-t confidence half-width — i.e. no
        statistically detectable bias between the modes.  Deterministic
        given the fixed seed list.
        """
        parity = [_metrics(_run(protocol, seed, "parity")) for seed in SEEDS]
        fast = [_metrics(_run(protocol, seed, "fast")) for seed in SEEDS]
        for metric in parity[0]:
            differences = [p[metric] - f[metric] for p, f in zip(parity, fast)]
            if all(d == 0 for d in differences):
                continue
            mean, half_width = _paired_t_half_width(differences)
            scale = max(
                1e-9,
                max(abs(p[metric]) for p in parity),
            )
            assert abs(mean) <= max(half_width, 0.05 * scale), (
                protocol, metric, mean, half_width,
            )

    @pytest.mark.parametrize("protocol", available_protocols())
    def test_fast_mode_conservation(self, protocol):
        for seed in SEEDS[:3]:
            result = _run(protocol, seed, "fast")
            voice, data = result.voice, result.data
            assert (
                voice.delivered + voice.errored + voice.dropped
                <= voice.generated
            )
            assert data.delivered <= data.generated
            assert len(data.delay_frames) == data.delivered

    def test_fast_mode_is_deterministic(self):
        first = _run("charisma", 9, "fast").summary()
        second = _run("charisma", 9, "fast").summary()
        assert first == second

    @pytest.mark.parametrize(
        "protocol", ("rmav", "dtdma_vr", "drma", "charisma")
    )
    def test_macro_fast_mode_statistical_equivalence(self, protocol):
        """Macro-stepped fast runs stay within the parity CI as well.

        A macro fast run may re-partition contention draws differently
        from the per-frame fast path (pool semantics), so it is its own
        sample — compare it against per-frame parity the same way.
        CHARISMA's entry exercises the batched-CSI stream: its macro
        lookahead prefetches whole blocks of estimation noise from the
        dedicated child stream, and those draws, too, may re-partition
        relative to per-frame fast stepping without biasing any metric.
        """

        def run_macro_fast(seed):
            return run_simulation(
                Scenario(
                    protocol=protocol, n_voice=10, n_data=3,
                    use_request_queue=(protocol != "rmav"),
                    duration_s=0.5, warmup_s=0.15, seed=seed,
                    rng_mode="fast", macro_frames=16,
                ),
                PARAMS,
            )

        parity = [_metrics(_run(protocol, seed, "parity")) for seed in SEEDS]
        fast = [_metrics(run_macro_fast(seed)) for seed in SEEDS]
        for metric in parity[0]:
            differences = [p[metric] - f[metric] for p, f in zip(parity, fast)]
            if all(d == 0 for d in differences):
                continue
            mean, half_width = _paired_t_half_width(differences)
            scale = max(1e-9, max(abs(p[metric]) for p in parity))
            assert abs(mean) <= max(half_width, 0.05 * scale), (
                protocol, metric, mean, half_width,
            )

    @pytest.mark.parametrize("protocol", available_protocols())
    def test_macro_fast_mode_conservation(self, protocol):
        result = run_simulation(
            Scenario(
                protocol=protocol, n_voice=10, n_data=3,
                use_request_queue=(protocol != "rmav"),
                duration_s=0.4, warmup_s=0.15, seed=1,
                rng_mode="fast", macro_frames=16,
            ),
            PARAMS,
        )
        voice, data = result.voice, result.data
        assert voice.delivered + voice.errored + voice.dropped <= voice.generated
        assert data.delivered <= data.generated
        assert len(data.delay_frames) == data.delivered

    def test_charisma_macro_fast_batched_csi_engages_and_is_deterministic(self):
        """The batched-CSI lookahead actually runs, reproducibly.

        In fast mode CHARISMA advertises ``supports_macro_lookahead`` (its
        estimation noise comes from a dedicated child stream the macro
        runner can prefetch), so macro blocks must take the inline CSI
        path — and two identically-seeded runs must agree bit-for-bit.
        Bit-identity *across* stepping modes is deliberately not asserted:
        the contract is statistical equivalence (see above), because the
        block pool may re-partition the noise draws.
        """
        from repro.sim.engine import UplinkSimulationEngine

        def build():
            return UplinkSimulationEngine(
                Scenario(
                    protocol="charisma", n_voice=10, n_data=3,
                    use_request_queue=True, duration_s=0.4, warmup_s=0.1,
                    seed=9, rng_mode="fast", macro_frames=16,
                ),
                PARAMS,
            )

        first = build()
        first_result = first.run()
        assert first._macro is not None
        assert first._macro._supported  # the lookahead engaged in fast mode
        assert first._macro._style == "csi_schedule"
        assert first_result.voice.delivered > 0
        second = build()
        assert first_result.summary() == second.run().summary()

    def test_fast_and_parity_differ_but_share_initial_state(self):
        """Same seed, different draw partitioning: the realisations diverge
        (they are different samples), while construction-time state —
        drawn from the shared stream in both modes — is identical."""
        from repro.sim.engine import UplinkSimulationEngine

        engines = {
            mode: UplinkSimulationEngine(
                Scenario(protocol="dtdma_fr", n_voice=8, n_data=2,
                         duration_s=0.5, warmup_s=0.1, seed=21, rng_mode=mode),
                PARAMS,
            )
            for mode in ("parity", "fast")
        }
        assert np.array_equal(
            engines["parity"].population.countdown,
            engines["fast"].population.countdown,
        )


class TestChildStreams:
    def test_child_is_deterministic_and_order_independent(self):
        streams_a = RandomStreams(42)
        streams_b = RandomStreams(42)
        # Request children in different orders: same (seed, stream, label)
        # must yield the same generator state either way.
        toggle_a = streams_a.child("traffic", "toggle")
        burst_a = streams_a.child("traffic", "burst")
        burst_b = streams_b.child("traffic", "burst")
        toggle_b = streams_b.child("traffic", "toggle")
        assert toggle_a.random(4).tolist() == toggle_b.random(4).tolist()
        assert burst_a.random(4).tolist() == burst_b.random(4).tolist()

    def test_children_distinct_across_labels_streams_and_seeds(self):
        streams = RandomStreams(7)
        draws = {
            ("traffic", "toggle"): streams.child("traffic", "toggle").random(6),
            ("traffic", "burst"): streams.child("traffic", "burst").random(6),
            ("mac", "toggle"): streams.child("mac", "toggle").random(6),
        }
        values = [tuple(v.tolist()) for v in draws.values()]
        assert len(set(values)) == len(values)
        other_seed = RandomStreams(8).child("traffic", "toggle").random(6)
        assert not np.array_equal(draws[("traffic", "toggle")], other_seed)

    def test_child_does_not_disturb_parent_stream(self):
        streams = RandomStreams(3)
        before = streams["traffic"].bit_generator.state["state"]
        streams.child("traffic", "toggle")
        after = streams["traffic"].bit_generator.state["state"]
        assert before == after

    def test_unknown_stream_raises(self):
        with pytest.raises(KeyError):
            RandomStreams(0).child("nope", "toggle")

    def test_child_stream_function_matches_method(self):
        streams = RandomStreams(5)
        seq = np.random.SeedSequence(5).spawn(len(streams.names))[1]  # traffic
        direct = child_stream(seq, "toggle").random(3)
        via_method = RandomStreams(5).child("traffic", "toggle").random(3)
        assert direct.tolist() == via_method.tolist()


class TestFastContention:
    def test_fast_draws_one_matrix(self):
        class CountingRNG:
            def __init__(self):
                self.calls = 0
                self._rng = np.random.default_rng(0)

            def random(self, size=None):
                self.calls += 1
                return self._rng.random(size)

        rng = CountingRNG()
        ids = np.arange(12)
        probabilities = np.full(12, 0.3)
        run_contention_ids(ids, probabilities, 10, rng, fast=True)
        assert rng.calls == 1

    def test_fast_statistics_match_parity_distribution(self):
        """Aggregate winner/collision statistics of the two paths agree.

        The processes are distributionally identical; over many trials the
        mean winner and collision counts must lie close together.
        """
        ids = np.arange(10)
        probabilities = np.full(10, 0.25)
        totals = {"parity": [0, 0], "fast": [0, 0]}
        rng_parity = np.random.default_rng(100)
        rng_fast = np.random.default_rng(200)
        trials = 400
        for _ in range(trials):
            parity = run_contention_ids(ids, probabilities, 5, rng_parity)
            fast = run_contention_ids(ids, probabilities, 5, rng_fast, fast=True)
            totals["parity"][0] += len(parity.winner_ids)
            totals["parity"][1] += parity.collisions
            totals["fast"][0] += len(fast.winner_ids)
            totals["fast"][1] += fast.collisions
        for index in (0, 1):
            mean_parity = totals["parity"][index] / trials
            mean_fast = totals["fast"][index] / trials
            assert abs(mean_parity - mean_fast) < 0.25, (index, totals)

    def test_fast_winner_drops_out_of_later_minislots(self):
        """After a minislot win the winner must stop transmitting: with one
        certain transmitter (p=1) and the rest silent, every later minislot
        is idle — never a second win by the same candidate."""
        ids = np.array([4, 9])
        probabilities = np.array([1.0, 0.0])
        result = run_contention_ids(
            ids, probabilities, 6, np.random.default_rng(1), fast=True
        )
        assert result.winner_ids == [4]
        assert result.idle_slots == 5
        assert result.remaining_ids == [9]

    def test_empty_candidates_all_idle(self):
        for fast in (False, True):
            result = run_contention_ids(
                np.zeros(0, dtype=np.int64), np.zeros(0), 4,
                np.random.default_rng(0), fast=fast,
            )
            assert result.idle_slots == 4
            assert result.winner_ids == []
