"""Macro-stepping correctness: lookahead truncation edges and machinery.

The parity suite (``test_backend_parity.py``) asserts whole-run
bit-identity across block sizes; this module pins the specific events that
truncate or re-align a lookahead block — a contention success mid-block, a
reservation expiring at a block boundary, CHARISMA's per-frame CSI draws —
plus the roll-back/replay pool and the compiled-kernel seam themselves.
"""

import numpy as np
import pytest

from repro.accel import HAS_NUMBA, contention_round_scan, voice_generation_offsets
from repro.config import SimulationParameters
from repro.sim.engine import UplinkSimulationEngine
from repro.sim.macro import RandomPool
from repro.sim.runner import run_simulation
from repro.sim.scenario import Scenario

PARAMS = SimulationParameters()


def _pair(macro_frames, **kwargs):
    reference = run_simulation(Scenario(**kwargs), PARAMS)
    macro = run_simulation(
        Scenario(**kwargs, macro_frames=macro_frames), PARAMS
    )
    return reference, macro


class TestLookaheadTruncation:
    def test_contention_success_mid_block(self):
        """Winners inside a block truncate the pre-drawn pool exactly.

        A loaded scenario resolves contention successes in nearly every
        block; the per-frame metric streams (not just totals) must align
        across the roll-back/replay boundaries.
        """
        base = dict(protocol="dtdma_fr", n_voice=20, n_data=6,
                    duration_s=0.6, warmup_s=0.1, seed=5)
        engines = {}
        for macro_frames in (1, 16):
            engine = UplinkSimulationEngine(
                Scenario(**base, macro_frames=macro_frames), PARAMS
            )
            result = engine.run()
            engines[macro_frames] = (engine, result)
        reference = engines[1][1]
        macro = engines[16][1]
        # The workload must actually exercise the truncation path:
        # contention happened and produced reservations (winners).
        assert reference.mac.contention_attempts > 0
        assert reference.voice.delivered > 0
        assert reference.summary() == macro.summary()
        assert (
            engines[1][0].collector.voice_loss_events_per_frame
            == engines[16][0].collector.voice_loss_events_per_frame
        )

    @pytest.mark.parametrize("macro_frames", (2, 3, 5, 7, 8, 9, 16))
    def test_reservation_boundaries_across_block_phases(self, macro_frames):
        """Talkspurt ends / reservation releases land on every possible
        position relative to block boundaries as the block size varies;
        each must re-align the holder set without drift."""
        base = dict(protocol="rmav", n_voice=14, n_data=0,
                    duration_s=0.5, warmup_s=0.1, seed=2)
        reference, macro = _pair(macro_frames, **base)
        assert reference.summary() == macro.summary()

    def test_charisma_csi_frames_fall_back(self):
        """CHARISMA draws CSI estimates every frame, so macro blocks must
        route every frame through its own kernel — and still be exact."""
        base = dict(protocol="charisma", n_voice=10, n_data=3,
                    use_request_queue=True, duration_s=0.5, warmup_s=0.1,
                    seed=9)
        engine = UplinkSimulationEngine(
            Scenario(**base, macro_frames=16), PARAMS
        )
        macro = engine.run()
        assert engine._macro is not None
        assert not engine._macro._supported  # every frame fell back
        reference = run_simulation(Scenario(**base), PARAMS)
        assert reference.summary() == macro.summary()

    def test_macro_frames_exceeding_measured_frames(self):
        """Blocks clamp to the remaining warm-up/measured frame counts."""
        base = dict(protocol="dtdma_vr", n_voice=8, n_data=2,
                    duration_s=0.1, warmup_s=0.025, seed=4)
        reference, macro = _pair(64, **base)
        assert reference.summary() == macro.summary()
        engine = UplinkSimulationEngine(
            Scenario(**base, macro_frames=64), PARAMS
        )
        engine.run()
        scenario = Scenario(**base)
        assert engine.frame_index == (
            scenario.warmup_frames(PARAMS) + scenario.measured_frames(PARAMS)
        )

    def test_queue_pressure_toggles_fallback(self):
        """With the request queue enabled, queue-backed frames fall back
        and drained-queue frames resume the fast path — exactly."""
        base = dict(protocol="dtdma_fr", n_voice=40, n_data=10,
                    use_request_queue=True, duration_s=0.4, warmup_s=0.1,
                    seed=13)
        reference, macro = _pair(16, **base)
        assert reference.mac.mean_queue_length > 0  # queue actually used
        assert reference.summary() == macro.summary()

    def test_large_talking_population_uses_batched_schedule(self):
        """Populations with >=64 simultaneous talkspurts route gap
        generation through the accel kernel — still bit-identical to
        sequential advancing."""
        from repro.traffic.population import TerminalPopulation

        def build():
            population = TerminalPopulation(
                PARAMS, 120, 0, np.random.default_rng(17)
            )
            # Force a large talking set with staggered phases and spread
            # the next source events out so gap processing engages.
            rng = np.random.default_rng(99)
            population.in_talkspurt[:100] = True
            population.frames_since_packet[:100] = rng.integers(0, 40, 100)
            population.countdown[:] = rng.integers(3, 60, 120)
            return population

        sequential = build()
        planned = build()
        n_frames = 48
        for frame in range(n_frames):
            sequential.advance_frame(frame)
        plan = planned.plan_frames(0, n_frames)
        for frame in range(n_frames):
            planned.apply_planned_frame(plan, frame)
        assert sequential.voice_generated.sum() > 200  # schedule was busy
        for name in ("occupancy", "voice_generated", "in_talkspurt",
                     "countdown", "frames_since_packet", "head_created"):
            assert np.array_equal(
                getattr(sequential, name), getattr(planned, name)
            ), name
        assert sequential._segments == planned._segments

    def test_interleaved_step_calls_resync_mirrors(self):
        """Frames advanced through engine.step() between run_frames calls
        invalidate the runner's incremental mirrors — the mixed schedule
        must still be bit-identical to pure per-frame stepping."""
        base = dict(protocol="dtdma_fr", n_voice=16, n_data=4,
                    duration_s=0.6, warmup_s=0.0, seed=8)
        mixed = UplinkSimulationEngine(
            Scenario(**base, macro_frames=16), PARAMS
        )
        mixed.run_frames(96)
        for _ in range(40):
            mixed.step()
        mixed.run_frames(104)
        pure = UplinkSimulationEngine(Scenario(**base), PARAMS)
        for _ in range(240):
            pure.step()
        assert mixed.collect_results().summary() == pure.collect_results().summary()

    def test_large_population_path_stays_json_safe(self):
        """Above the bulk-tolist threshold (>256 terminals) the fast path
        reads occupancy from the array; stat records must stay plain ints
        (JSON/store safety) and results bit-identical."""
        import json

        base = dict(protocol="dtdma_vr", n_voice=240, n_data=40,
                    duration_s=0.15, warmup_s=0.05, seed=3)
        reference, macro = _pair(16, **base)
        assert reference.summary() == macro.summary()
        json.dumps(macro.summary())  # would raise on numpy scalar leakage

    def test_record_block_rejects_negative_counters(self):
        from repro.metrics.collector import MetricsCollector

        collector = MetricsCollector(PARAMS, 8)
        with pytest.raises(ValueError, match="non-negative"):
            collector.record_block([[0, 0, 0, 0, 0, -1, 0]])

    def test_macro_frames_validation(self):
        with pytest.raises(ValueError, match="macro_frames"):
            Scenario(protocol="rmav", n_voice=1, n_data=0, macro_frames=0)


class TestMidBlockTruncationProperty:
    """Property: a mid-block contention win truncates the pre-drawn pool to
    exactly the consumed prefix.

    DRMA and RAMA resolve contended frames inline (winners re-enter the
    same frame's pending pool, deep data winners span several converted
    slots), so a block's pool consumption is data-dependent and truncation
    happens constantly.  If the roll-back/replay ever returned one draw too
    many or too few, the shared generator would leave the run in a state no
    per-frame execution can reach — so beyond summary bit-identity, the
    *generator states themselves* must converge for every block size.
    """

    @pytest.mark.parametrize("macro_frames", (4, 16, 64))
    @pytest.mark.parametrize("protocol", ("drma", "rama"))
    def test_winner_reentry_reconsumes_exactly_the_used_prefix(
        self, protocol, macro_frames
    ):
        base = dict(protocol=protocol, n_voice=24, n_data=6,
                    duration_s=0.5, warmup_s=0.1, seed=11)
        reference_engine = UplinkSimulationEngine(Scenario(**base), PARAMS)
        reference = reference_engine.run()
        macro_engine = UplinkSimulationEngine(
            Scenario(**base, macro_frames=macro_frames), PARAMS
        )
        macro = macro_engine.run()
        # The workload must actually exercise winner re-entry: the macro
        # path engaged, contention resolved winners and voice flowed.
        assert macro_engine._macro is not None
        assert macro_engine._macro._supported
        assert reference.mac.contention_attempts > 0
        assert reference.voice.delivered > 0
        assert reference.summary() == macro.summary()
        # The property itself: after the run, the pooled generator sits at
        # exactly the position the live per-frame draws leave it — the
        # block's unconsumed suffix was returned, the consumed prefix
        # replayed, nothing more.
        assert (
            reference_engine.protocol.contention_rng.bit_generator.state
            == macro_engine.protocol.contention_rng.bit_generator.state
        )
        # And both streams keep producing identical draws from here on.
        assert np.array_equal(
            reference_engine.protocol.contention_rng.random(16),
            macro_engine.protocol.contention_rng.random(16),
        )


class TestRandomPool:
    def test_partitioned_takes_match_direct_draws(self):
        pool_rng = np.random.default_rng(42)
        direct_rng = np.random.default_rng(42)
        pool = RandomPool(pool_rng, chunk=16)
        taken = np.concatenate([pool.take(5), pool.take(30), pool.take(7)])
        assert np.array_equal(taken, direct_rng.random(42))

    def test_close_replays_exactly_the_consumed_prefix(self):
        pool_rng = np.random.default_rng(7)
        direct_rng = np.random.default_rng(7)
        pool = RandomPool(pool_rng, chunk=64)
        pool.take(10)
        pool.close()
        direct_rng.random(10)
        # After closing, both generators must continue identically.
        assert np.array_equal(pool_rng.random(20), direct_rng.random(20))

    def test_unwind_returns_draws_to_the_stream(self):
        pool_rng = np.random.default_rng(3)
        direct_rng = np.random.default_rng(3)
        pool = RandomPool(pool_rng, chunk=64)
        first = pool.take(12)
        pool.unwind(4)  # last 4 were never really consumed
        expected_first = direct_rng.random(12)
        assert np.array_equal(first, expected_first)
        pool.close()
        # Only 8 draws were consumed; the direct stream re-aligns by
        # rewinding its own position equivalently.
        aligned = np.random.default_rng(3)
        aligned.random(8)
        assert np.array_equal(pool_rng.random(5), aligned.random(5))

    def test_close_without_use_is_a_noop(self):
        rng = np.random.default_rng(1)
        state = rng.bit_generator.state
        RandomPool(rng).close()
        assert rng.bit_generator.state == state


class TestAccelKernels:
    def test_contention_round_scan_matches_reference(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            rows = int(rng.integers(1, 12))
            k = int(rng.integers(1, 30))
            draws = rng.random((rows, k))
            probs = rng.random(k)
            counts, row, col = contention_round_scan(draws, probs)
            hits = draws < probs
            expected_counts = hits.sum(axis=1)
            singles = np.nonzero(expected_counts == 1)[0]
            expected_row = int(singles[0]) if singles.shape[0] else -1
            if expected_row >= 0:
                assert row == expected_row
                assert col == int(np.argmax(hits[expected_row]))
                assert np.array_equal(
                    counts[: row + 1], expected_counts[: row + 1]
                )
            else:
                assert (row, col) == (-1, -1)
                assert np.array_equal(counts, expected_counts)

    def test_voice_generation_offsets_matches_loop(self):
        rng = np.random.default_rng(1)
        for _ in range(30):
            n = int(rng.integers(0, 20))
            period = int(rng.integers(1, 10))
            gap = int(rng.integers(1, 40))
            since = rng.integers(0, 100, size=n)
            offsets, rows = voice_generation_offsets(since, period, gap)
            expected = []
            for i in range(n):
                o = (-int(since[i])) % period
                while o < gap:
                    expected.append((o, i))
                    o += period
            got = sorted(zip(offsets.tolist(), rows.tolist()), key=lambda t: (t[1], t[0]))
            assert got == sorted(expected, key=lambda t: (t[1], t[0]))

    def test_numba_is_optional(self):
        # The container ships without numba; the fallback must be active
        # and the flag accurate either way.
        import repro.accel.kernels as kernels

        assert kernels.HAS_NUMBA == (kernels.numba is not None)


class TestDispatchCounter:
    def test_counts_per_phase_and_floor_drops_under_macro(self):
        counts = {}
        for macro_frames in (1, 16):
            scenario = Scenario(protocol="rmav", n_voice=16, n_data=4,
                                duration_s=0.25, warmup_s=0.0, seed=1,
                                macro_frames=macro_frames)
            engine = UplinkSimulationEngine(scenario, PARAMS)
            engine.enable_phase_timing(count_dispatches=True)
            try:
                engine.run_frames(100)
                counts[macro_frames] = dict(engine.dispatch_counts)
            finally:
                engine.disable_phase_timing()
        assert counts[1]["traffic"] > 0
        assert counts[1]["phy"] > 0
        total_per_frame = sum(counts[1].values())
        total_macro = sum(counts[16].values())
        assert total_macro < total_per_frame
