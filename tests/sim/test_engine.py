"""Integration tests of the frame-synchronous engine and the runner."""

import pytest

from repro.config import SimulationParameters
from repro.mac.registry import available_protocols
from repro.sim.engine import UplinkSimulationEngine
from repro.sim.runner import run_simulation
from repro.sim.scenario import Scenario

PARAMS = SimulationParameters()
SHORT = dict(duration_s=1.0, warmup_s=0.25)


def scenario(protocol="charisma", n_voice=8, n_data=2, queue=False, seed=1, **kw):
    merged = {**SHORT, **kw}
    return Scenario(protocol=protocol, n_voice=n_voice, n_data=n_data,
                    use_request_queue=queue, seed=seed, **merged)


class TestEngineBasics:
    def test_step_advances_frame_counter(self):
        engine = UplinkSimulationEngine(scenario(), PARAMS)
        engine.step()
        engine.step()
        assert engine.frame_index == 2

    def test_run_returns_consistent_result(self):
        result = run_simulation(scenario(), PARAMS)
        assert 0.0 <= result.voice.loss_rate <= 1.0
        assert result.data.throughput_packets_per_frame >= 0.0
        assert result.mac.n_frames == scenario().measured_frames(PARAMS)

    def test_reproducible_with_same_seed(self):
        a = run_simulation(scenario(seed=5), PARAMS)
        b = run_simulation(scenario(seed=5), PARAMS)
        assert a.summary() == b.summary()

    def test_different_seeds_differ(self):
        a = run_simulation(scenario(seed=5, n_voice=20), PARAMS)
        b = run_simulation(scenario(seed=6, n_voice=20), PARAMS)
        assert a.summary() != b.summary()

    def test_zero_population_runs(self):
        result = run_simulation(scenario(n_voice=0, n_data=0), PARAMS)
        assert result.voice.generated == 0
        assert result.data.generated == 0

    def test_speed_override_used(self):
        fast = UplinkSimulationEngine(scenario(mobile_speed_kmh=80.0), PARAMS)
        assert fast.doppler.speed_kmh == 80.0
        default = UplinkSimulationEngine(scenario(), PARAMS)
        assert default.doppler.speed_kmh == PARAMS.mobile_speed_kmh


class TestEngineInvariants:
    @pytest.mark.parametrize("protocol", available_protocols())
    def test_every_protocol_runs_and_accounts_packets(self, protocol):
        queue = protocol != "rmav"
        result = run_simulation(
            scenario(protocol=protocol, n_voice=12, n_data=3, queue=queue), PARAMS
        )
        voice = result.voice
        # every generated voice packet is eventually delivered, errored,
        # dropped, or still sitting in a buffer at the end of the run
        assert voice.delivered + voice.errored + voice.dropped <= voice.generated + 12
        assert 0.0 <= voice.loss_rate <= 1.0
        data = result.data
        assert data.delivered <= data.generated
        assert data.mean_delay_s >= 0.0
        assert 0.0 <= result.mac.slot_utilisation <= 1.0

    def test_loss_grows_with_overload(self):
        light = run_simulation(scenario(n_voice=10, protocol="dtdma_fr"), PARAMS)
        heavy = run_simulation(
            scenario(n_voice=220, protocol="dtdma_fr", duration_s=1.5), PARAMS
        )
        assert heavy.voice.loss_rate > light.voice.loss_rate

    def test_charisma_beats_fixed_rate_baseline_under_load(self):
        """The headline qualitative claim on a small workload."""
        kwargs = dict(n_voice=60, n_data=5, duration_s=2.0, warmup_s=1.0, seed=3)
        charisma = run_simulation(scenario(protocol="charisma", **kwargs), PARAMS)
        fixed = run_simulation(scenario(protocol="dtdma_fr", **kwargs), PARAMS)
        assert charisma.voice.loss_rate <= fixed.voice.loss_rate
        assert charisma.data.mean_delay_s <= fixed.data.mean_delay_s


class TestRunner:
    """The sweep helpers moved to repro.api; runner keeps the single run."""

    def test_run_simulation_independent_seeds(self):
        results = [run_simulation(scenario(seed=s), PARAMS) for s in (1, 2)]
        assert len(results) == 2
        assert results[0].summary() != results[1].summary()

    def test_sweep_spec_shapes(self):
        from repro.api import SerialExecutor, run, sweep_spec

        spec = sweep_spec(
            ("charisma",), "n_voice", [4, 8],
            base_scenario=scenario(n_voice=0, n_data=0), params=PARAMS,
        )
        sweep = run(spec, executor=SerialExecutor()).to_sweep_result("n_voice")
        assert sweep.values == [4, 8]
        assert len(sweep.results) == 2
        assert sweep.results[1].scenario.n_voice == 8

    def test_sweep_spec_invalid_parameter(self):
        from repro.api import sweep_spec

        with pytest.raises(ValueError, match="sweepable"):
            sweep_spec(("charisma",), "n_bogus", [1],
                       base_scenario=scenario(n_voice=0, n_data=0))

    def test_protocol_comparison_keys(self):
        from repro.api import SerialExecutor, run, sweep_spec

        spec = sweep_spec(
            ("charisma", "rama"), "n_voice", [4],
            base_scenario=scenario(n_voice=0, n_data=0), params=PARAMS,
        )
        sweeps = run(spec, executor=SerialExecutor()).to_sweep_results("n_voice")
        assert set(sweeps) == {"charisma", "rama"}
