"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.des import DiscreteEventSimulator, EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(3.0, lambda: fired.append("c"))
        while len(queue):
            queue.pop().callback()
        assert fired == ["a", "b", "c"]

    def test_fifo_among_simultaneous(self):
        queue = EventQueue()
        order = []
        for i in range(5):
            queue.push(1.0, lambda i=i: order.append(i))
        while len(queue):
            queue.pop().callback()
        assert order == [0, 1, 2, 3, 4]

    def test_cancel(self):
        queue = EventQueue()
        keep = queue.push(1.0, lambda: None, label="keep")
        drop = queue.push(0.5, lambda: None, label="drop")
        queue.cancel(drop)
        assert len(queue) == 1
        assert queue.pop() is keep

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(0.5, lambda: None)
        queue.push(1.5, lambda: None)
        queue.cancel(event)
        assert queue.peek_time() == 1.5

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)


class TestDiscreteEventSimulator:
    def test_clock_advances_with_events(self):
        sim = DiscreteEventSimulator()
        times = []
        sim.schedule_at(1.0, lambda: times.append(sim.now))
        sim.schedule_at(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.0, 2.5]
        assert sim.now == 2.5
        assert sim.events_processed == 2

    def test_schedule_in_relative(self):
        sim = DiscreteEventSimulator()
        sim.schedule_at(1.0, lambda: sim.schedule_in(0.5, lambda: None, "later"))
        sim.run()
        assert sim.now == pytest.approx(1.5)

    def test_cannot_schedule_in_past(self):
        sim = DiscreteEventSimulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_in(-0.1, lambda: None)

    def test_run_until_stops_at_horizon(self):
        sim = DiscreteEventSimulator()
        fired = []
        sim.schedule_every(1.0, lambda: fired.append(sim.now))
        sim.run_until(5.5)
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert sim.now == 5.5
        assert sim.pending_events >= 1

    def test_periodic_with_offset(self):
        sim = DiscreteEventSimulator()
        fired = []
        sim.schedule_every(2.0, lambda: fired.append(sim.now), start_offset=1.0)
        sim.run_until(6.0)
        assert fired == [1.0, 3.0, 5.0]

    def test_cancel_pending_event(self):
        sim = DiscreteEventSimulator()
        fired = []
        event = sim.schedule_at(1.0, lambda: fired.append("x"))
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_run_max_events(self):
        sim = DiscreteEventSimulator()
        sim.schedule_every(1.0, lambda: None)
        sim.run(max_events=7)
        assert sim.events_processed == 7

    def test_run_until_validation(self):
        sim = DiscreteEventSimulator()
        sim.schedule_at(2.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.run_until(1.0)

    def test_periodic_validation(self):
        sim = DiscreteEventSimulator()
        with pytest.raises(ValueError):
            sim.schedule_every(0.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_every(1.0, lambda: None, start_offset=-1.0)
