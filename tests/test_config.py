"""Tests for the simulation parameters (Table 1)."""

import dataclasses

import pytest

from repro.config import PriorityWeights, SimulationParameters


class TestPriorityWeights:
    def test_defaults_valid(self):
        weights = PriorityWeights()
        assert 0 < weights.beta_voice < 1
        assert 0 < weights.beta_data < 1
        assert weights.voice_offset > 0

    def test_invalid_beta_rejected(self):
        with pytest.raises(ValueError):
            PriorityWeights(beta_voice=0.0)
        with pytest.raises(ValueError):
            PriorityWeights(beta_data=1.0)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            PriorityWeights(alpha_voice=-1.0)


class TestSimulationParameters:
    def test_defaults_match_paper(self):
        p = SimulationParameters()
        assert p.bandwidth_hz == 320_000.0
        assert p.frame_duration_s == 0.0025
        assert p.voice_bit_rate_bps == 8_000.0
        assert p.voice_packet_period_s == 0.020
        assert p.voice_deadline_s == 0.020
        assert p.mean_talkspurt_s == 1.0
        assert p.mean_silence_s == 1.35
        assert p.mean_data_interarrival_s == 1.0
        assert p.mean_data_burst_packets == 100.0
        assert p.mode_throughputs == (0.5, 1.0, 2.0, 3.0, 4.0, 5.0)
        assert p.mobile_speed_kmh == 50.0
        assert p.rmav_pmax == 10

    def test_derived_quantities(self):
        p = SimulationParameters()
        assert p.frames_per_voice_period == 8
        assert p.voice_deadline_frames == 8
        assert p.frames_per_second == pytest.approx(400.0)
        assert p.n_modes == 6

    def test_packet_size_consistent_with_voice_rate(self):
        p = SimulationParameters()
        expected_bits = p.voice_bit_rate_bps * p.voice_packet_period_s
        assert p.packet_size_bits == pytest.approx(expected_bits)

    def test_frozen(self):
        p = SimulationParameters()
        with pytest.raises(dataclasses.FrozenInstanceError):
            p.bandwidth_hz = 1.0  # type: ignore[misc]

    def test_with_overrides(self):
        p = SimulationParameters().with_overrides(n_info_slots=8, mobile_speed_kmh=80.0)
        assert p.n_info_slots == 8
        assert p.mobile_speed_kmh == 80.0
        # untouched fields retain defaults
        assert p.n_request_slots == SimulationParameters().n_request_slots

    def test_with_overrides_revalidates(self):
        with pytest.raises(ValueError):
            SimulationParameters().with_overrides(frame_duration_s=-1.0)

    def test_invalid_permission_probability(self):
        with pytest.raises(ValueError):
            SimulationParameters(voice_permission_probability=0.0)
        with pytest.raises(ValueError):
            SimulationParameters(data_permission_probability=1.5)

    def test_invalid_loss_threshold(self):
        with pytest.raises(ValueError):
            SimulationParameters(voice_loss_threshold=1.0)

    def test_invalid_mode_table(self):
        with pytest.raises(ValueError):
            SimulationParameters(mode_throughputs=(1.0,))
        with pytest.raises(ValueError):
            SimulationParameters(mode_throughputs=(2.0, 1.0))

    def test_invalid_target_ber(self):
        with pytest.raises(ValueError):
            SimulationParameters(target_ber=0.6)

    def test_invalid_slot_counts(self):
        with pytest.raises(ValueError):
            SimulationParameters(n_info_slots=0)
        with pytest.raises(ValueError):
            SimulationParameters(n_request_slots=0)

    def test_describe_contains_headline_rows(self):
        d = SimulationParameters().describe()
        assert d["bandwidth_hz"] == 320_000.0
        assert d["frame_duration_ms"] == pytest.approx(2.5)
        assert d["voice_packet_period_ms"] == pytest.approx(20.0)
        assert d["adaptive_modes"] == [0.5, 1.0, 2.0, 3.0, 4.0, 5.0]
        assert "mean_talkspurt_s" in d and "mean_silence_s" in d
