"""Interference coupling: offsets math, SNR injection, error labelling."""

import numpy as np
import pytest

from repro.channel.doppler import DopplerModel
from repro.channel.manager import ChannelManager
from repro.config import SimulationParameters
from repro.constellation import (
    ConstellationScenario,
    beam_busy_load,
    interference_offsets,
    run_constellation,
)

PARAMS = SimulationParameters()


def make_manager(beam=None):
    return ChannelManager(
        n_users=4,
        doppler=DopplerModel(speed_kmh=3.0),
        frame_duration_s=PARAMS.frame_duration_s,
        rng=np.random.default_rng(0),
        mean_snr_db=PARAMS.mean_snr_db,
        beam=beam,
    )


class TestInterferenceOffsets:
    def test_zero_without_coupling_or_single_beam(self):
        assert (interference_offsets(np.array([0.5]), 1, 3.0) == 0.0).all()
        assert (interference_offsets(np.array([0.5, 0.8]), 1, 0.0) == 0.0).all()

    def test_full_cochannel_load_costs_coupling_db(self):
        offsets = interference_offsets(np.array([1.0, 1.0, 1.0]), 1, 3.0)
        assert offsets == pytest.approx([3.0, 3.0, 3.0])

    def test_mean_of_other_beams_not_self(self):
        # Beam 0 idle, beam 1 fully loaded, same reuse group: beam 0 sees
        # the full penalty, beam 1 sees none (its only peer is idle).
        offsets = interference_offsets(np.array([0.0, 1.0]), 1, 4.0)
        assert offsets == pytest.approx([4.0, 0.0])

    def test_reuse_partitioning(self):
        # reuse_factor=2 over 4 beams: groups {0,2} and {1,3}.
        loads = np.array([1.0, 0.0, 0.0, 1.0])
        offsets = interference_offsets(loads, 2, 2.0)
        assert offsets == pytest.approx([0.0, 2.0, 2.0, 0.0])

    def test_busy_load_counts_talkspurts_and_queues(self):
        in_talkspurt = np.array([True, False, False, False])
        occupancy = np.array([0, 3, 0, 0])
        assert beam_busy_load(in_talkspurt, occupancy) == pytest.approx(0.5)
        assert beam_busy_load(np.zeros(0, bool), np.zeros(0, int)) == 0.0


class TestChannelInjection:
    def test_penalty_shifts_snr_by_exactly_that_many_db(self):
        clean = make_manager()
        noisy = make_manager()
        noisy.set_interference_db(6.0)
        snap_clean = clean.snapshot()
        snap_noisy = noisy.snapshot()
        for user in range(4):
            delta = snap_clean.snr_db_of(user) - snap_noisy.snr_db_of(user)
            assert delta == pytest.approx(6.0)
            ratio = snap_noisy.amplitude_of(user) / snap_clean.amplitude_of(user)
            assert ratio == pytest.approx(10.0 ** (-6.0 / 20.0))

    def test_zero_penalty_is_bit_exact(self):
        reference = make_manager()
        gated = make_manager()
        gated.set_interference_db(0.0)
        for user in range(4):
            assert gated.snapshot().amplitude_of(user) == reference.snapshot().amplitude_of(user)

    def test_penalty_must_be_finite_non_negative(self):
        manager = make_manager()
        with pytest.raises(ValueError):
            manager.set_interference_db(-1.0)
        with pytest.raises(ValueError):
            manager.set_interference_db(float("nan"))

    def test_snapshot_errors_carry_beam_and_local_id(self):
        sharded = make_manager(beam=7)
        with pytest.raises(IndexError, match=r"beam 7, local_id 99"):
            sharded.snapshot().amplitude_of(99)
        plain = make_manager()
        with pytest.raises(IndexError, match=r"user_id 99"):
            plain.snapshot().snr_db_of(99)

    def test_population_errors_carry_beam_and_local_id(self):
        from repro.traffic.population import TerminalPopulation

        population = TerminalPopulation(
            PARAMS, 2, 1, np.random.default_rng(0), beam=3
        )
        with pytest.raises(IndexError, match=r"beam 3, local_id 9"):
            population.export_terminal_state(9)


class TestCoupledBehaviour:
    def test_interference_degrades_aggregate_quality_or_throughput(self):
        base = dict(
            protocol="charisma", n_beams=4, n_voice=20, n_data=6,
            duration_s=1.0, warmup_s=0.2, seed=9, macro_frames=8,
        )
        quiet = run_constellation(
            ConstellationScenario(**base), PARAMS
        ).merged
        loud = run_constellation(
            ConstellationScenario(coupling_db=20.0, reuse_factor=1, **base),
            PARAMS,
        ).merged
        # A 20 dB co-channel penalty must not *improve* the constellation.
        assert loud.voice.loss_rate >= quiet.voice.loss_rate
        assert (
            loud.data.throughput_packets_per_frame
            <= quiet.data.throughput_packets_per_frame
            or loud.voice.loss_rate > quiet.voice.loss_rate
        )
