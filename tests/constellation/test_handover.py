"""Handover conservation: no packet or statistic lost or duplicated.

A handover is a state *swap* between two idle same-class slots in
different beams.  Summed over both ends, every counter — generated,
delivered, errored, dropped, queued packets, delay samples, the
population's running loss total — must be exactly conserved, and the dense
voice-then-data layout must reject cross-class imports.
"""

import numpy as np
import pytest

from repro.config import SimulationParameters
from repro.constellation import (
    ConstellationScenario,
    ConstellationRunner,
    plan_handovers,
    run_constellation,
)
from repro.constellation.shard import BeamShard

PARAMS = SimulationParameters()


def make_shards(n_beams=2, **overrides):
    kwargs = dict(
        protocol="rama", n_beams=n_beams, n_voice=10, n_data=3,
        duration_s=0.5, warmup_s=0.1, seed=11, macro_frames=8,
        handover_rate=0.2,
    )
    kwargs.update(overrides)
    scenario = ConstellationScenario(**kwargs)
    return [BeamShard(beam, scenario, PARAMS) for beam in range(n_beams)]


def population_totals(populations):
    totals = {}
    for name in (
        "voice_generated", "voice_delivered", "voice_errored",
        "voice_dropped", "data_generated", "data_delivered",
        "data_retransmissions", "occupancy",
    ):
        totals[name] = sum(int(getattr(p, name).sum()) for p in populations)
    totals["voice_loss_total"] = sum(p.voice_loss_total for p in populations)
    totals["delay_samples"] = sum(
        len(p.all_data_delays()) for p in populations
    )
    return totals


class TestSwapConservation:
    def test_swap_conserves_every_counter(self):
        shard_a, shard_b = make_shards()
        for shard in (shard_a, shard_b):
            shard.run_frames(200)
        populations = [shard_a.population, shard_b.population]
        before = population_totals(populations)

        ids_a = shard_a.eligible_handover_ids()
        ids_b = shard_b.eligible_handover_ids()
        assert ids_a and ids_b, "expected idle voice terminals in both beams"
        local_a, local_b = ids_a[0], ids_b[0]
        state_a = shard_a.export_terminal(local_a)
        state_b = shard_b.export_terminal(local_b)
        shard_a.import_terminal(local_a, state_b)
        shard_b.import_terminal(local_b, state_a)

        assert population_totals(populations) == before

    def test_eligible_terminals_are_idle_voice(self):
        shard, _ = make_shards()
        shard.run_frames(150)
        population = shard.population
        for local_id in shard.eligible_handover_ids():
            assert bool(population.is_voice[local_id])
            assert not bool(population.in_talkspurt[local_id])
            assert int(population.occupancy[local_id]) == 0

    def test_cross_class_import_rejected_with_beam_label(self):
        shard_a, shard_b = make_shards()
        voice_state = shard_a.export_terminal(0)
        data_slot = shard_b.population.n_voice  # first data slot
        with pytest.raises(ValueError, match=r"beam 1, local_id"):
            shard_b.import_terminal(data_slot, voice_state)

    def test_swap_runs_on_cleanly(self):
        # After an idle-idle swap both engines must keep stepping without
        # error and keep producing traffic (mirror invalidation works).
        shard_a, shard_b = make_shards()
        for shard in (shard_a, shard_b):
            shard.run_frames(120)
        ids_a = shard_a.eligible_handover_ids()
        ids_b = shard_b.eligible_handover_ids()
        state_a = shard_a.export_terminal(ids_a[0])
        state_b = shard_b.export_terminal(ids_b[0])
        shard_a.import_terminal(ids_a[0], state_b)
        shard_b.import_terminal(ids_b[0], state_a)
        before = population_totals([shard_a.population, shard_b.population])
        for shard in (shard_a, shard_b):
            shard.run_frames(200)
        after = population_totals([shard_a.population, shard_b.population])
        assert after["voice_generated"] > before["voice_generated"]


class TestPlanHandovers:
    def test_each_slot_swaps_at_most_once(self):
        rng = np.random.default_rng(0)
        eligible = [[0, 1, 2, 3], [0, 1, 2, 3], [0, 1, 2, 3]]
        swaps = plan_handovers(eligible, 1.0, rng)
        seen = set()
        for (beam_a, local_a), (beam_b, local_b) in swaps:
            assert beam_a != beam_b
            assert (beam_a, local_a) not in seen
            assert (beam_b, local_b) not in seen
            seen.add((beam_a, local_a))
            seen.add((beam_b, local_b))

    def test_disabled_or_degenerate_plans_nothing(self):
        rng = np.random.default_rng(0)
        assert plan_handovers([[0, 1]], 1.0, rng) == []
        assert plan_handovers([[0], [0]], 0.0, rng) == []

    def test_plan_is_deterministic_in_rng_state(self):
        eligible = [[0, 2, 5], [1, 3], [0, 4]]
        first = plan_handovers(eligible, 0.5, np.random.default_rng(9))
        second = plan_handovers(eligible, 0.5, np.random.default_rng(9))
        assert first == second


class TestCoupledRun:
    def test_handovers_happen_and_results_reproduce(self):
        scenario = ConstellationScenario(
            protocol="charisma", n_beams=3, n_voice=12, n_data=3,
            duration_s=0.8, warmup_s=0.2, seed=5, macro_frames=8,
            handover_rate=0.1,
        )
        first = run_constellation(scenario, PARAMS)
        second = run_constellation(scenario, PARAMS)
        assert first.handovers > 0
        assert first.handovers == second.handovers
        assert first.merged == second.merged
        assert first.beams == second.beams

    def test_merged_equals_sum_of_beams(self):
        scenario = ConstellationScenario(
            protocol="dtdma_vr", n_beams=3, n_voice=10, n_data=4,
            duration_s=0.6, warmup_s=0.1, seed=2, macro_frames=8,
            handover_rate=0.1,
        )
        outcome = run_constellation(scenario, PARAMS)
        for counter in ("generated", "delivered", "errored", "dropped"):
            assert getattr(outcome.merged.voice, counter) == sum(
                getattr(beam.voice, counter) for beam in outcome.beams
            )
        assert outcome.merged.data.generated == sum(
            beam.data.generated for beam in outcome.beams
        )
        assert len(outcome.merged.data.delay_frames) == sum(
            len(beam.data.delay_frames) for beam in outcome.beams
        )
        assert outcome.merged.mac.allocated_slots == sum(
            beam.mac.allocated_slots for beam in outcome.beams
        )
        assert outcome.merged.mac.n_frames == outcome.beams[0].mac.n_frames

    def test_runner_counts_match_metrics_gauge(self):
        from repro.obs.metrics import MetricsRegistry, recording

        scenario = ConstellationScenario(
            protocol="rama", n_beams=2, n_voice=10, n_data=2,
            duration_s=0.5, warmup_s=0.1, seed=4, macro_frames=8,
            handover_rate=0.2,
        )
        registry = MetricsRegistry()
        with recording(registry):
            outcome = ConstellationRunner(scenario, PARAMS).run()
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["constellation.handovers"] == float(
            outcome.handovers
        )
        assert "constellation.load_imbalance" in snapshot["gauges"]
