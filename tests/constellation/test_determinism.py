"""Threaded and serial shard stepping must produce identical results.

Shards share no mutable state between block barriers and the handover RNG
is consumed serially by the coordinator, so the worker count is a pure
performance knob — every per-beam result, the merged result and the
handover count must be independent of it.
"""

import pytest

from repro.config import SimulationParameters
from repro.constellation import ConstellationScenario, run_constellation

PARAMS = SimulationParameters()


COUPLED = ConstellationScenario(
    protocol="charisma", n_beams=5, n_voice=10, n_data=3,
    duration_s=0.6, warmup_s=0.1, seed=13, macro_frames=8,
    handover_rate=0.1, coupling_db=2.0, reuse_factor=2,
)

UNCOUPLED = ConstellationScenario(
    protocol="drma", n_beams=4, n_voice=8, n_data=2,
    duration_s=0.5, warmup_s=0.1, seed=21, macro_frames=16,
)


@pytest.mark.parametrize("scenario", [COUPLED, UNCOUPLED],
                         ids=["coupled", "uncoupled"])
@pytest.mark.parametrize("n_workers", [2, 4])
def test_threaded_matches_serial(scenario, n_workers):
    serial = run_constellation(scenario, PARAMS, n_workers=1)
    threaded = run_constellation(scenario, PARAMS, n_workers=n_workers)
    assert threaded.merged == serial.merged
    assert threaded.beams == serial.beams
    assert threaded.handovers == serial.handovers


def test_workers_env_override(monkeypatch):
    from repro.constellation import WORKERS_ENV, resolve_workers

    monkeypatch.setenv(WORKERS_ENV, "3")
    assert resolve_workers(UNCOUPLED) == 3
    # Explicit argument wins over the environment.
    assert resolve_workers(UNCOUPLED, 2) == 2
    # Never more workers than beams.
    monkeypatch.setenv(WORKERS_ENV, "64")
    assert resolve_workers(UNCOUPLED) == UNCOUPLED.n_beams


def test_lpt_assignment_is_deterministic_and_balanced():
    import numpy as np

    from repro.constellation import lpt_assign

    costs = np.array([5.0, 1.0, 1.0, 1.0, 1.0, 1.0])
    assignment = lpt_assign(costs, 2)
    assert assignment.shape == (6,)
    # The expensive shard sits alone-ish: its worker's total (5) exceeds
    # the other's (5 × 1) by no more than one small shard.
    totals = [float(costs[assignment == w].sum()) for w in (0, 1)]
    assert abs(totals[0] - totals[1]) <= 1.0
    repeat = lpt_assign(costs, 2)
    assert (assignment == repeat).all()
    # Single worker: everything on worker 0.
    assert (lpt_assign(costs, 1) == 0).all()
