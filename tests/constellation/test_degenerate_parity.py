"""The 1-beam constellation is bit-identical to the plain Scenario path.

Beam 0's random streams use an empty spawn-key prefix — the classic
single-cell derivation — and without any coupling the runner advances whole
phases through the same ``run_frames`` chunking as ``engine.run()``, so the
merged result of a single-beam constellation must equal the plain run
field for field in parity RNG mode.  Every protocol and both macro-step
block sizes are exercised.
"""

import pytest

from repro.config import SimulationParameters
from repro.constellation import ConstellationScenario, run_constellation
from repro.mac.registry import available_protocols
from repro.sim.runner import run_simulation
from repro.sim.scenario import Scenario

PARAMS = SimulationParameters()


def constellation_and_plain(protocol, macro_frames, **overrides):
    kwargs = dict(
        protocol=protocol,
        n_voice=12,
        n_data=3,
        use_request_queue=(protocol != "rmav"),
        duration_s=0.6,
        warmup_s=0.2,
        seed=7,
        macro_frames=macro_frames,
    )
    kwargs.update(overrides)
    constellation = ConstellationScenario(n_beams=1, **kwargs)
    merged = run_constellation(constellation, PARAMS).merged
    plain = run_simulation(Scenario(**kwargs), PARAMS)
    return merged, plain


@pytest.mark.parametrize("macro_frames", [1, 16])
@pytest.mark.parametrize("protocol", available_protocols())
def test_single_beam_bit_identity(protocol, macro_frames):
    merged, plain = constellation_and_plain(protocol, macro_frames)
    assert merged.voice == plain.voice
    assert merged.data == plain.data
    assert merged.mac == plain.mac


def test_single_beam_identity_through_run_simulation_dispatch():
    scenario = ConstellationScenario(
        protocol="rama", n_beams=1, n_voice=10, n_data=2,
        duration_s=0.5, warmup_s=0.1, seed=3, macro_frames=16,
    )
    via_dispatch = run_simulation(scenario, PARAMS)
    direct = run_constellation(scenario, PARAMS).merged
    assert via_dispatch == direct


def test_beam_zero_streams_match_plain_streams():
    from repro.sim.rng import RandomStreams

    plain = RandomStreams(42)
    beamed = RandomStreams(42, spawn_key=())
    for name in plain.names:
        assert plain[name].bit_generator.state == beamed[name].bit_generator.state


def test_other_beams_get_independent_streams():
    from repro.constellation import beam_spawn_key
    from repro.sim.rng import RandomStreams

    base = RandomStreams(42)
    other = RandomStreams(42, spawn_key=beam_spawn_key(1))
    assert other.spawn_key != ()
    for name in base.names:
        assert base[name].bit_generator.state != other[name].bit_generator.state
    # Distinct beams must also differ from each other.
    third = RandomStreams(42, spawn_key=beam_spawn_key(2))
    assert (
        other["channel"].bit_generator.state
        != third["channel"].bit_generator.state
    )
