"""Static typing gate for the annotated packages.

``mypy`` is not part of the runtime environment; when it is absent (the
offline container) this test skips and CI's dedicated lint job runs the
check instead — see ``.github/workflows/ci.yml``.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

HAS_MYPY = importlib.util.find_spec("mypy") is not None


@pytest.mark.skipif(not HAS_MYPY, reason="mypy is not installed")
def test_lint_and_store_pass_mypy():
    # The packages to check come from setup.cfg's `packages =` line, so the
    # local test and CI's lint job run the identical command.
    result = subprocess.run(
        [
            sys.executable, "-m", "mypy",
            "--config-file", str(REPO / "setup.cfg"),
        ],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_mypy_config_present():
    config = (REPO / "setup.cfg").read_text(encoding="utf-8")
    assert "[mypy]" in config
    assert "repro.lint" in config
