"""Inline suppressions and the committed-baseline round trip."""

import json
import textwrap
from pathlib import Path

from repro.lint import lint_tree, update_baseline
from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.findings import Finding

BAD_MODULE = '''\
"""Tree with one wall-clock violation."""

import time


def stamp() -> float:
    return time.time()
'''


def make_tree(tmp_path: Path, body: str = BAD_MODULE) -> Path:
    root = tmp_path / "tree"
    root.mkdir()
    (root / "mod.py").write_text(body, encoding="utf-8")
    return root


def test_inline_suppression_same_line(tmp_path):
    root = make_tree(
        tmp_path,
        BAD_MODULE.replace(
            "time.time()", "time.time()  # lint: allow[KRN002]"
        ),
    )
    report = lint_tree(root=root)
    assert report.exit_code == 0
    assert report.n_suppressed == 1


def test_inline_suppression_line_above(tmp_path):
    root = make_tree(
        tmp_path,
        BAD_MODULE.replace(
            "    return time.time()",
            "    # provenance stamp, not simulation input: lint: allow[KRN002]\n"
            "    return time.time()",
        ),
    )
    report = lint_tree(root=root)
    assert report.exit_code == 0
    assert report.n_suppressed == 1


def test_wildcard_suppression(tmp_path):
    root = make_tree(
        tmp_path,
        BAD_MODULE.replace("time.time()", "time.time()  # lint: allow[*]"),
    )
    assert lint_tree(root=root).exit_code == 0


def test_wrong_rule_suppression_does_not_apply(tmp_path):
    root = make_tree(
        tmp_path,
        BAD_MODULE.replace(
            "time.time()", "time.time()  # lint: allow[RNG001]"
        ),
    )
    report = lint_tree(root=root)
    assert report.exit_code == 1
    assert report.n_suppressed == 0


def test_baseline_round_trip(tmp_path):
    root = make_tree(tmp_path)
    dirty = lint_tree(root=root)
    assert dirty.exit_code == 1

    clean = update_baseline(root=root)
    assert clean.exit_code == 0
    assert len(clean.baselined) == 1
    assert clean.findings == []

    # A *new* finding in the same tree is not covered by the baseline.
    (root / "other.py").write_text(
        textwrap.dedent(
            '''\
            import time


            def other() -> float:
                return time.time()
            '''
        ),
        encoding="utf-8",
    )
    regressed = lint_tree(root=root)
    assert regressed.exit_code == 1
    assert [f.path for f in regressed.findings] == ["other.py"]
    assert len(regressed.baselined) == 1


def test_baseline_keys_survive_line_shifts(tmp_path):
    root = make_tree(tmp_path)
    update_baseline(root=root)
    # Prepend unrelated code: the finding moves down but its
    # line-number-free key still matches the baseline.
    module = root / "mod.py"
    module.write_text(
        "X = 1\nY = 2\n\n\n" + module.read_text(encoding="utf-8"),
        encoding="utf-8",
    )
    report = lint_tree(root=root)
    assert report.exit_code == 0
    assert len(report.baselined) == 1


def test_baseline_file_shape(tmp_path):
    path = tmp_path / "baseline.json"
    finding = Finding(
        path="mod.py", line=7, column=12, rule="KRN002",
        severity="error", message="wall clock", symbol="stamp",
        snippet="    return time.time()",
    )
    write_baseline(path, [finding, finding])  # duplicates collapse
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["format"] == "repro-lint-baseline"
    assert len(payload["findings"]) == 1
    assert load_baseline(path) == {finding.baseline_key()}
    # Tolerant loader: garbage baselines read as empty, not as a crash.
    path.write_text("not json", encoding="utf-8")
    assert load_baseline(path) == set()
    assert load_baseline(tmp_path / "missing.json") == set()
