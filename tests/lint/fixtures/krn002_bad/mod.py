"""Bad fixture: wall clocks anywhere; any timer inside a kernel."""

import time
from datetime import datetime

from repro.lint.contracts import kernel


def stamp() -> float:
    return time.time()  # flagged even outside kernels (wall clock)


def when() -> object:
    return datetime.now()  # flagged: nondeterministic input


@kernel
def timed_step(values: list) -> float:
    start = time.perf_counter()  # flagged: timer inside a kernel body
    total = float(sum(values))
    return total - start
