"""Good fixture: monotonic timers are fine in profiling glue outside kernels."""

import time

from repro.lint.contracts import kernel


def profile(step: object) -> float:
    start = time.perf_counter()
    step()
    return time.perf_counter() - start


@kernel
def pure_step(values: list) -> float:
    return float(sum(values))
