"""Good fixture: timing behind the obs-clock seam; metrics legal in kernels.

Raw ``time.perf_counter`` reads are flagged everywhere now — profiling glue
goes through :mod:`repro.obs.clock` (the single suppressed sanctuary), which
is legal anywhere *outside* a ``@kernel`` body.  Metrics counters read no
clock, so they stay legal even inside kernels.
"""

from repro.obs import clock
from repro.obs import metrics
from repro.lint.contracts import kernel


def profile(step: object) -> float:
    start = clock.now()
    step()
    return clock.now() - start


@kernel
def pure_step(values: list) -> float:
    m = metrics.METRICS
    if m.enabled:
        m.inc("kernel.calls")
    return float(sum(values))
