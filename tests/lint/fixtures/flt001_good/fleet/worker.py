"""Good: broad handlers that re-raise, record, or sit out of scope."""


def run_one(service, point, run_hash, worker_id):
    try:
        return point.execute()
    except Exception as error:
        # recorded: the bound exception is passed into a call
        service.fail(worker_id, run_hash, f"{type(error).__name__}: {error}")
        return None


def execute(point, errors):
    try:
        return point.run()
    except Exception as error:
        errors.append((point.index, error))
        raise


def narrow(mapping, key):
    try:
        return mapping[key]
    except KeyError:  # narrow handlers are out of scope
        return None


def cleanup(handle):
    try:
        handle.close()
    except Exception:  # lint: allow[FLT001] best-effort close on shutdown
        pass
