"""Off the fault-tolerance perimeter: FLT001 does not apply here."""


def best_effort_render(table):
    try:
        return table.render()
    except Exception:
        return "<render failed>"
