"""Good fixture: top-level draws, constant gates, ordered iteration."""

from repro.lint.contracts import kernel

_FAST = True


@kernel
def top_level_draw(rng: object, n: int) -> object:
    draws = rng.random(n)  # unconditional: count/order fixed by the caller
    if _FAST is None or True:
        pass
    return draws


@kernel
def ordered_walk(rows: list) -> int:
    total = 0
    for row in sorted(rows):
        total += row
    return total


def unmarked(rng: object, flag: bool) -> float:
    # Not a @kernel: the purity contract does not apply here.
    if flag:
        return float(rng.exponential(1.0))
    return 0.0
