"""Good ACC001 fixture: numba twins mirroring their NumPy fallbacks."""

import numpy as np

from repro.lint.contracts import kernel

try:
    import numba

    HAS_NUMBA = True
except ImportError:
    numba = None
    HAS_NUMBA = False


@kernel
def scatter_sum(values, rows, size):
    return np.bincount(rows, weights=values, minlength=size)


@kernel
def bounded_min(heads, deadline, sentinel):
    alive = heads >= 0
    if not alive.any():
        return sentinel
    return int(heads[alive].min()) + deadline


def _plain_helper(values):
    # Unmarked helper outside the gate: not a twin, never checked.
    return values.sum()


if HAS_NUMBA:

    @numba.njit(cache=True)
    def _scatter_sum_jit(values, rows, size):
        out = np.zeros(size, dtype=np.float64)
        for j in range(rows.shape[0]):
            out[rows[j]] += values[j]
        return out

    @numba.njit(cache=True)
    def _bounded_min_jit(heads, deadline, sentinel):
        best = sentinel
        for i in range(heads.shape[0]):
            if heads[i] >= 0 and heads[i] + deadline < best:
                best = heads[i] + deadline
        return best

    @numba.njit(cache=True)
    def _private_scratch_jit(buffer):
        # No same-named fallback: a private building block, not a twin.
        return buffer

    @kernel
    def scatter_sum(values, rows, size):  # noqa: F811
        return _scatter_sum_jit(
            np.ascontiguousarray(values), np.ascontiguousarray(rows), size
        )

    @kernel
    def bounded_min(heads, deadline, sentinel):  # noqa: F811
        return int(
            _bounded_min_jit(np.ascontiguousarray(heads), deadline, sentinel)
        )
