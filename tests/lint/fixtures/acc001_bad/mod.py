"""Bad ACC001 fixture: every way a numba twin can drift from its fallback."""

import numpy as np

from repro.lint.contracts import kernel

try:
    import numba

    HAS_NUMBA = True
except ImportError:
    numba = None
    HAS_NUMBA = False


@kernel
def scatter_sum(values, rows, size):
    return np.bincount(rows, weights=values, minlength=size)


@kernel
def bounded_min(heads, deadline, sentinel):
    alive = heads >= 0
    if not alive.any():
        return sentinel
    return int(heads[alive].min()) + deadline


@kernel
def windowed_count(stamps, lo, hi):
    return int(((stamps >= lo) & (stamps < hi)).sum())


if HAS_NUMBA:

    @numba.njit(cache=True)
    def _scatter_sum_jit(values, rows, size):
        out = np.zeros(size, dtype=np.float64)
        for j in range(rows.shape[0]):
            out[rows[j]] += values[j]
        return out

    # Drift 1: jit implementation renamed/reordered its parameters.
    @numba.njit(cache=True)
    def _bounded_min_jit(deadline, heads, sentinel):
        best = sentinel
        for i in range(heads.shape[0]):
            if heads[i] >= 0 and heads[i] + deadline < best:
                best = heads[i] + deadline
        return best

    @numba.njit(cache=True)
    def _windowed_count_jit(stamps, lo, hi):
        n = 0
        for i in range(stamps.shape[0]):
            if stamps[i] >= lo and stamps[i] < hi:
                n += 1
        return n

    @numba.njit(cache=True)
    def _orphan_step_jit(buffer):
        return buffer

    # Drift 2: wrapper swaps the arguments it routes into the jit twin.
    @kernel
    def scatter_sum(values, rows, size):  # noqa: F811
        return _scatter_sum_jit(
            np.ascontiguousarray(rows), np.ascontiguousarray(values), size
        )

    # Drift 3: wrapper signature no longer matches the fallback's.
    @kernel
    def bounded_min(heads, horizon, sentinel):  # noqa: F811
        return int(
            _bounded_min_jit(np.ascontiguousarray(heads), horizon, sentinel)
        )

    # Drift 4: wrapper drops a parameter on the way through.
    @kernel
    def windowed_count(stamps, lo, hi):  # noqa: F811
        return int(_windowed_count_jit(np.ascontiguousarray(stamps), lo))

    # Drift 5: gated twin with no NumPy fallback before the gate.
    @kernel
    def orphan_step(buffer):
        return _orphan_step_jit(np.ascontiguousarray(buffer))
