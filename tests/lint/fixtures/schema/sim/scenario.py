"""Schema fixture: a miniature Scenario with two persisted fields."""


class Scenario:
    protocol: str = "charisma"
    seed: int = 0
