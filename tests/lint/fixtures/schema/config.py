"""Schema fixture: a miniature SimulationParameters."""


class SimulationParameters:
    bandwidth_hz: float = 2_000_000.0
    packet_size_bits: int = 424
