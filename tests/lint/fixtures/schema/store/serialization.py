"""Schema fixture: the wire-format version the fingerprint is recorded against."""

SCHEMA_VERSION = 1
