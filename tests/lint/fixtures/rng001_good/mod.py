"""Good fixture: injected generators and attribute references are fine."""

import numpy as np


def draw(rng: "np.random.Generator") -> float:
    # Drawing from an *injected* generator is the sanctioned pattern; only
    # construction/module-level draws are RNG001 violations.
    return float(rng.uniform())


def check(obj: object) -> bool:
    return isinstance(obj, np.random.Generator)
