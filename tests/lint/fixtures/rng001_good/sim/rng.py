"""Good fixture: the sanctuary module may construct generators freely."""

import numpy as np


def make(seed: int) -> object:
    return np.random.default_rng(seed)
