"""Bad: broad handlers that swallow faults on the fleet path."""


def run_one(service, point):
    try:
        return point.execute()
    except Exception:  # neither re-raises nor records
        return None


def drain(queue):
    for item in queue:
        try:
            item.run()
        except:  # noqa: E722 — bare except, swallowed
            pass


def lease_loop(service):
    try:
        service.claim()
    except (ValueError, BaseException) as error:  # broad via the tuple
        del error
