"""Bad fixture: draws under data-dependent gates, unordered iteration."""

from repro.lint.contracts import kernel


@kernel
def gated_draw(rng: object, occupancy: int) -> float:
    if occupancy > 0:  # data-dependent gate
        return float(rng.exponential(1.0))  # flagged
    return 0.0


@kernel
def set_walk() -> int:
    total = 0
    for terminal in {1, 2, 3}:  # flagged: set literal iteration
        total += terminal
    for key in {"a": 1, "b": 2}.keys():  # flagged: dict .keys() order
        total += len(key)
    return total
