"""Bad fixture: observability timing smuggled into kernel bodies.

Spans and ``repro.obs.clock`` reads are timers; inside a ``@kernel`` body
they break the "simulated time is the only clock" purity contract even
though the same calls are legal instrumentation glue outside.  A raw
``time.perf_counter`` outside any kernel is also flagged now — timing must
route through the obs-clock seam.
"""

import time

from repro.obs import clock as _obs_clock
from repro.obs import span
from repro.lint.contracts import kernel


def raw_timer_glue() -> float:
    return time.perf_counter()  # flagged: raw timer, use repro.obs.clock


@kernel
def spanned_step(values: list) -> float:
    with span("kernel.step", n=len(values)):  # flagged: span in a kernel
        return float(sum(values))


@kernel
def clocked_step(values: list) -> float:
    start = _obs_clock.now()  # flagged: obs clock read in a kernel
    total = float(sum(values))
    return total - start
