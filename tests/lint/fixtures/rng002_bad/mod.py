"""Bad fixture: two call sites share one literal (stream, label) pair."""


def first(streams: object) -> object:
    return streams.child("mac", "contention")


def second(streams: object) -> object:
    return streams.child("mac", "contention")  # flagged: duplicates `first`
