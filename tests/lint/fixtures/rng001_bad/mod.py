"""Bad fixture: every RNG001 spelling the rule must catch."""

import random  # noqa: F401  (flagged: stdlib random import)

import numpy as np
from numpy.random import default_rng


def seedless() -> object:
    return np.random.default_rng()  # flagged: aliased numpy.random call


def bare() -> object:
    return default_rng(7)  # flagged: bare import resolves via the alias map


def legacy_draw() -> float:
    return np.random.uniform()  # flagged: legacy module-level draw
