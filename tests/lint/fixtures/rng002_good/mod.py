"""Good fixture: unique labels per site; repeats of one site don't count."""


def first(streams: object) -> object:
    return streams.child("mac", "contention")


def second(streams: object) -> object:
    return streams.child("mac", "backoff")


def looped(streams: object) -> list:
    # One call *site* executed many times is fine: RNG002 is about distinct
    # source locations silently sharing a stream.
    return [streams.child("traffic", "arrivals") for _ in range(3)]
