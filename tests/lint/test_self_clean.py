"""Tier-1 gate: the shipped source tree passes its own contracts.

This is the test the ISSUE's acceptance criteria hang off: ``repro lint``
must exit 0 over ``src/repro`` with the committed baseline/fingerprint, and
the kernel-purity rules must actually be exercised by a meaningful number
of ``@kernel``-marked hot-path functions.
"""

from repro.lint import lint_tree
from repro.lint.rules import RULE_REGISTRY


def test_shipped_tree_is_clean():
    report = lint_tree()
    details = "\n".join(
        f"{f.location()}: [{f.rule}] {f.message}" for f in report.findings
    )
    assert report.exit_code == 0, f"repro lint found fresh findings:\n{details}"


def test_kernel_coverage_floor():
    # Raised from 10 as the accel seam and the macro frame kernels grew
    # (PR 8 added the voice-flush/deadline/expiry kernels and the inline
    # CHARISMA CSI frame; PR 10 added the constellation coupling/LPT and
    # terminal-migration kernels); shrinking coverage below this means
    # hot-path code lost its purity contract, not that the floor is wrong.
    report = lint_tree()
    assert report.n_kernels >= 30, (
        "the kernel purity rules are only as good as their coverage: "
        f"expected >= 30 @kernel functions, found {report.n_kernels}"
    )


def test_all_contract_rules_registered():
    for rule_id in (
        "LNT000", "RNG001", "RNG002", "KRN001", "KRN002", "SCH001", "ACC001",
    ):
        assert rule_id in RULE_REGISTRY


def test_shipped_baseline_is_empty():
    # The tree was fixed (not grandfathered) in the PR that introduced lint;
    # regressions should be fixed or suppressed inline, not baselined away.
    report = lint_tree()
    assert report.baselined == []
