"""Per-rule good/bad fixture coverage.

Each bad fixture must fail lint (non-zero exit) with at least one finding
from its rule; each good fixture must stay clean.  Fixture trees live under
``tests/lint/fixtures/`` and are parsed, never imported.
"""

from pathlib import Path

import pytest

from repro.lint import lint_tree

FIXTURES = Path(__file__).parent / "fixtures"


def run_fixture(name: str, **kwargs):
    return lint_tree(root=FIXTURES / name, **kwargs)


def rules_hit(report):
    return {finding.rule for finding in report.findings}


@pytest.mark.parametrize(
    "fixture, rule, n_expected",
    [
        ("rng001_bad", "RNG001", 4),
        ("rng002_bad", "RNG002", 1),
        ("krn001_bad", "KRN001", 3),
        ("krn002_bad", "KRN002", 3),
        ("krn002_obs_bad", "KRN002", 3),
        ("acc001_bad", "ACC001", 6),
        ("flt001_bad", "FLT001", 3),
    ],
)
def test_bad_fixture_fails(fixture, rule, n_expected):
    report = run_fixture(fixture)
    hits = [f for f in report.findings if f.rule == rule]
    assert report.exit_code == 1
    assert len(hits) == n_expected, [f.message for f in report.findings]


@pytest.mark.parametrize(
    "fixture",
    [
        "rng001_good", "rng002_good", "krn001_good", "krn002_good",
        "acc001_good", "flt001_good",
    ],
)
def test_good_fixture_is_clean(fixture):
    report = run_fixture(fixture)
    details = [f"{f.location()}: [{f.rule}] {f.message}" for f in report.findings]
    assert report.exit_code == 0, details


def test_rng001_sanctuary_and_alias_resolution():
    bad = run_fixture("rng001_bad")
    messages = " ".join(f.message for f in bad.findings)
    # The aliased call, the bare import, and the legacy draw all resolve to
    # their canonical numpy.random names.
    assert "numpy.random.default_rng" in messages
    assert "numpy.random.uniform" in messages
    good = run_fixture("rng001_good")
    # sim/rng.py calls default_rng but is the sanctuary module.
    assert rules_hit(good) == set()


def test_rng002_cites_the_first_site():
    report = run_fixture("rng002_bad")
    (finding,) = [f for f in report.findings if f.rule == "RNG002"]
    assert "mod.py:5" in finding.message
    assert finding.line == 9


def test_krn001_only_applies_to_marked_kernels():
    report = run_fixture("krn001_good")
    # `unmarked` has a gated draw but no @kernel decorator.
    assert "KRN001" not in rules_hit(report)


def test_krn002_obs_clock_is_the_only_timing_path():
    # The good fixture times through repro.obs.clock and bumps a metrics
    # counter inside a kernel — both legal.
    report = run_fixture("krn002_good")
    assert "KRN002" not in rules_hit(report)
    bad = run_fixture("krn002_bad")
    timer_findings = [
        f for f in bad.findings if "time.perf_counter" in f.message
    ]
    assert len(timer_findings) == 1
    assert "timed_step" in timer_findings[0].message


def test_krn002_flags_spans_and_obs_clock_inside_kernels():
    report = run_fixture("krn002_obs_bad")
    by_symbol = {f.symbol: f.message for f in report.findings}
    assert "repro.obs.clock" in by_symbol["raw_timer_glue"]
    assert "repro.obs.span" in by_symbol["spanned_step"]
    assert "repro.obs.clock.now" in by_symbol["clocked_step"]
    # Kernel sites name the purity contract, glue sites name the sanctuary.
    assert "outside kernel bodies" in by_symbol["spanned_step"]
    assert "sanctuary" in by_symbol["raw_timer_glue"]


def test_acc001_names_each_drift_mode():
    report = run_fixture("acc001_bad")
    messages = [f.message for f in report.findings if f.rule == "ACC001"]
    joined = " ".join(messages)
    # The reordered jit implementation, the swapped wrapper routing, the
    # renamed wrapper parameter, the dropped argument and the orphan twin
    # are each called out by name.
    assert "_bounded_min_jit" in joined and "mirror" in joined
    assert "argument order drifted" in joined
    assert "signatures must match exactly" in joined
    assert "2 positional argument(s)" in joined
    assert "no NumPy fallback" in joined


def test_acc001_ignores_private_jit_helpers():
    report = run_fixture("acc001_good")
    assert "ACC001" not in rules_hit(report)


def test_rule_subset_selection():
    report = run_fixture("krn002_bad", rules=["RNG001"])
    assert report.findings == []
    with pytest.raises(KeyError):
        run_fixture("krn002_bad", rules=["NOPE999"])
