"""The @kernel marker is a pure annotation: no wrapping, no behaviour."""

from repro.lint.contracts import KERNEL_ATTR, is_kernel, kernel


def test_kernel_marks_without_wrapping():
    def step(x):
        """doc"""
        return x + 1

    marked = kernel(step)
    assert marked is step  # identity: no wrapper object
    assert getattr(step, KERNEL_ATTR) is True
    assert is_kernel(step)
    assert step(2) == 3
    assert step.__doc__ == "doc"


def test_is_kernel_false_for_plain_objects():
    assert not is_kernel(lambda: None)
    assert not is_kernel(object())
    assert not is_kernel(None)


def test_shipped_kernels_carry_the_marker_at_runtime():
    # The AST scan (lint) and the runtime attribute must agree.
    from repro.accel.kernels import contention_round_scan
    from repro.phy.error_model import PacketErrorModel

    assert is_kernel(contention_round_scan)
    assert is_kernel(PacketErrorModel.success_probabilities)
    assert is_kernel(PacketErrorModel.transmit_batch)


def test_kernel_batch_form_registers_and_classifies():
    from repro.lint.contracts import (
        is_batch_kernel, registered_kernels, kernel as kernel_decorator,
    )

    @kernel_decorator
    def batched(x):
        return x

    @kernel_decorator(batch=False)
    def scalar(x):
        return x

    assert is_kernel(batched) and is_batch_kernel(batched)
    assert is_kernel(scalar) and not is_batch_kernel(scalar)
    infos = {info.func: info for info in registered_kernels()}
    assert infos[batched].batch is True
    assert infos[scalar].batch is False
    assert infos[batched].qualname.endswith("batched")


def test_registry_covers_the_shipped_accel_kernels():
    from repro.accel.kernels import contention_round_scan
    from repro.lint.contracts import registered_kernels

    funcs = [info.func for info in registered_kernels()]
    assert contention_round_scan in funcs
