"""The @kernel marker is a pure annotation: no wrapping, no behaviour."""

from repro.lint.contracts import KERNEL_ATTR, is_kernel, kernel


def test_kernel_marks_without_wrapping():
    def step(x):
        """doc"""
        return x + 1

    marked = kernel(step)
    assert marked is step  # identity: no wrapper object
    assert getattr(step, KERNEL_ATTR) is True
    assert is_kernel(step)
    assert step(2) == 3
    assert step.__doc__ == "doc"


def test_is_kernel_false_for_plain_objects():
    assert not is_kernel(lambda: None)
    assert not is_kernel(object())
    assert not is_kernel(None)


def test_shipped_kernels_carry_the_marker_at_runtime():
    # The AST scan (lint) and the runtime attribute must agree.
    from repro.accel.kernels import contention_round_scan
    from repro.phy.error_model import PacketErrorModel

    assert is_kernel(contention_round_scan)
    assert is_kernel(PacketErrorModel.success_probabilities)
    assert is_kernel(PacketErrorModel.transmit_batch)
