"""The JSON report is a stable machine interface; the CLI drives both
renderers."""

import json
from pathlib import Path

from repro.cli import main as repro_main
from repro.lint import lint_tree
from repro.lint.reporters import (
    JSON_REPORT_VERSION,
    render_json,
    render_text,
    report_payload,
)

FIXTURES = Path(__file__).parent / "fixtures"

FINDING_KEYS = {
    "rule", "severity", "path", "line", "column", "message",
    "symbol", "snippet", "key", "baselined",
}
SUMMARY_KEYS = {
    "modules", "kernel_functions", "rules", "fresh", "failing",
    "baselined", "suppressed", "exit_code",
}


def test_json_report_schema():
    report = lint_tree(root=FIXTURES / "krn002_bad")
    payload = json.loads(render_json(report))
    assert set(payload) == {"version", "root", "summary", "findings"}
    assert payload["version"] == JSON_REPORT_VERSION
    assert set(payload["summary"]) == SUMMARY_KEYS
    assert payload["summary"]["exit_code"] == 1
    assert payload["summary"]["fresh"] == len(payload["findings"])
    for finding in payload["findings"]:
        assert set(finding) == FINDING_KEYS
        assert finding["severity"] in ("error", "warning", "note")
        assert finding["line"] >= 1 and finding["column"] >= 1


def test_json_summary_counts_match_report():
    report = lint_tree(root=FIXTURES / "krn002_bad")
    payload = report_payload(report)
    assert payload["summary"]["failing"] == sum(
        1 for f in report.findings if f.fails
    )
    assert payload["summary"]["kernel_functions"] == report.n_kernels


def test_text_report_mentions_every_finding():
    report = lint_tree(root=FIXTURES / "krn001_bad")
    text = render_text(report)
    for finding in report.findings:
        assert finding.location() in text
    assert "@kernel function(s)" in text


def test_cli_lint_subcommand(tmp_path, capsys):
    exit_code = repro_main(
        ["lint", "--root", str(FIXTURES / "krn002_bad"), "--json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    assert payload["summary"]["exit_code"] == 1

    exit_code = repro_main(["lint", "--root", str(FIXTURES / "krn002_good")])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "clean" in out


def test_cli_rule_filter(capsys):
    exit_code = repro_main(
        ["lint", "--root", str(FIXTURES / "krn002_bad"), "--rule", "RNG001"]
    )
    capsys.readouterr()
    assert exit_code == 0
