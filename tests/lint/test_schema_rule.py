"""SCH001: schema drift must fail lint until SCHEMA_VERSION is bumped.

The workflow under test is exactly the one a future PR adding a Scenario
field goes through: the field addition alone fails lint; bumping
``SCHEMA_VERSION`` downgrades the finding to a note; ``--update-baseline``
re-records the fingerprint and the tree is clean again.
"""

import json
import shutil
from pathlib import Path

from repro.lint import (
    default_fingerprint_path,
    default_root,
    lint_tree,
    update_baseline,
)
from repro.lint.schema import load_recorded_fingerprint, schema_fingerprint

FIXTURES = Path(__file__).parent / "fixtures"


def make_tree(tmp_path):
    root = tmp_path / "tree"
    shutil.copytree(FIXTURES / "schema", root)
    return root


def sch001(report):
    return [f for f in report.findings if f.rule == "SCH001"]


def test_missing_fingerprint_is_an_error(tmp_path):
    root = make_tree(tmp_path)
    report = lint_tree(root=root)
    (finding,) = sch001(report)
    assert report.exit_code == 1
    assert "--update-baseline" in finding.message


def test_field_addition_fails_until_version_bump(tmp_path):
    root = make_tree(tmp_path)
    assert update_baseline(root=root).exit_code == 0

    # Simulate a PR adding a Scenario field without touching the store.
    scenario = root / "sim" / "scenario.py"
    scenario.write_text(
        scenario.read_text(encoding="utf-8") + "    handoff_margin_db: float = 3.0\n",
        encoding="utf-8",
    )
    report = lint_tree(root=root)
    (finding,) = sch001(report)
    assert report.exit_code == 1
    assert finding.severity == "error"
    assert "Scenario += handoff_margin_db" in finding.message
    assert "SCHEMA_VERSION" in finding.message

    # Bumping SCHEMA_VERSION turns the error into a re-record note ...
    serialization = root / "store" / "serialization.py"
    serialization.write_text(
        serialization.read_text(encoding="utf-8").replace(
            "SCHEMA_VERSION = 1", "SCHEMA_VERSION = 2"
        ),
        encoding="utf-8",
    )
    bumped = lint_tree(root=root)
    assert bumped.exit_code == 0
    (note,) = sch001(bumped)
    assert note.severity == "note"

    # ... and --update-baseline re-records the pair, clearing the note.
    assert update_baseline(root=root).exit_code == 0
    final = lint_tree(root=root)
    assert sch001(final) == []
    recorded = load_recorded_fingerprint(default_fingerprint_path(root))
    assert recorded is not None and recorded["schema_version"] == 2


def test_annotation_change_also_counts_as_drift(tmp_path):
    root = make_tree(tmp_path)
    update_baseline(root=root)
    config = root / "config.py"
    config.write_text(
        config.read_text(encoding="utf-8").replace(
            "packet_size_bits: int = 424", "packet_size_bits: int = 512"
        ),
        encoding="utf-8",
    )
    report = lint_tree(root=root)
    (finding,) = sch001(report)
    assert finding.severity == "error"
    assert "field annotations or defaults changed" in finding.message


def test_stale_version_with_matching_fields_is_a_note(tmp_path):
    root = make_tree(tmp_path)
    update_baseline(root=root)
    serialization = root / "store" / "serialization.py"
    serialization.write_text(
        serialization.read_text(encoding="utf-8").replace(
            "SCHEMA_VERSION = 1", "SCHEMA_VERSION = 2"
        ),
        encoding="utf-8",
    )
    report = lint_tree(root=root)
    (finding,) = sch001(report)
    assert report.exit_code == 0
    assert finding.severity == "note"
    assert "re-record" in finding.message


def test_committed_fingerprint_matches_the_real_tree():
    """The shipped schema_fingerprint.json tracks the actual dataclasses."""
    from repro.lint.analyzer import load_project
    from repro.lint.schema import extract_schema_fields, extract_schema_version

    root = default_root()
    project = load_project(root)
    fields = extract_schema_fields(project)
    assert fields is not None
    assert set(fields) == {
        "Scenario",
        "ConstellationScenario",
        "SimulationParameters",
    }
    recorded = load_recorded_fingerprint(default_fingerprint_path(root))
    assert recorded is not None
    assert recorded["fingerprint"] == schema_fingerprint(fields)
    assert recorded["schema_version"] == extract_schema_version(project)


def test_fingerprint_file_is_versioned_json():
    payload = json.loads(
        default_fingerprint_path(default_root()).read_text(encoding="utf-8")
    )
    assert isinstance(payload["schema_version"], int)
    assert isinstance(payload["fingerprint"], str)
    assert set(payload["fields"]) == {
        "Scenario",
        "ConstellationScenario",
        "SimulationParameters",
    }
