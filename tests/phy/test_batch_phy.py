"""Batched PHY: vectorised success probabilities and transmissions.

``transmit_batch`` must be a drop-in replacement for a sequence of scalar
``transmit_packets`` calls: same success probabilities (bitwise), same
random-stream consumption, same delivered counts.
"""

import numpy as np
import pytest

from repro.phy.abicm import AdaptiveModem
from repro.phy.error_model import PacketErrorModel
from repro.phy.fixed import FixedRateModem
from repro.phy.modes import ModeTable


def adaptive_modem() -> AdaptiveModem:
    return AdaptiveModem(ModeTable(), mean_snr_db=28.5)


def sample_grants(seed=0, n=64):
    rng = np.random.default_rng(seed)
    amplitudes = rng.gamma(2.0, 0.6, size=n)
    throughputs = rng.choice([0.5, 1.0, 2.0, 3.0, 4.0, 5.0], size=n)
    counts = rng.integers(1, 9, size=n)
    return amplitudes, throughputs, counts


class TestSuccessProbabilities:
    @pytest.mark.parametrize("modem_factory", [adaptive_modem, FixedRateModem])
    def test_batch_matches_scalar_bitwise(self, modem_factory):
        modem = modem_factory()
        amplitudes, throughputs, _ = sample_grants()
        batch = modem.packet_success_probabilities(amplitudes, throughputs)
        scalar = np.array(
            [
                modem.packet_success_probability(float(a), float(t))
                for a, t in zip(amplitudes, throughputs)
            ]
        )
        assert np.array_equal(batch, scalar)

    @pytest.mark.parametrize("modem_factory", [adaptive_modem, FixedRateModem])
    def test_nan_selects_modem_default(self, modem_factory):
        modem = modem_factory()
        amplitudes, _, _ = sample_grants(seed=2, n=32)
        batch = modem.packet_success_probabilities(
            amplitudes, np.full(32, np.nan)
        )
        scalar = np.array(
            [modem.packet_success_probability(float(a)) for a in amplitudes]
        )
        assert np.array_equal(batch, scalar)
        default = modem.packet_success_probabilities(amplitudes, None)
        assert np.array_equal(default, scalar)

    def test_precomputed_snr_matches_amplitude_path(self):
        modem = adaptive_modem()
        amplitudes, throughputs, _ = sample_grants(seed=4)
        snr_db = modem.snr_db_from_amplitude(amplitudes)
        via_snr = modem.packet_success_probabilities(
            None, throughputs, snr_db=snr_db
        )
        via_amp = modem.packet_success_probabilities(amplitudes, throughputs)
        assert np.array_equal(via_snr, via_amp)

    def test_outage_amplitude_falls_back_to_most_robust_mode(self):
        modem = adaptive_modem()
        probability = modem.packet_success_probabilities(np.array([1e-6]), None)
        expected = modem.packet_success_probability(1e-6)
        assert probability[0] == expected
        assert 0.0 <= probability[0] < 1e-6


class TestTransmitBatch:
    @pytest.mark.parametrize("modem_factory", [adaptive_modem, FixedRateModem])
    def test_stream_compatible_with_scalar_calls(self, modem_factory):
        amplitudes, throughputs, counts = sample_grants(seed=7)
        scalar_model = PacketErrorModel(modem_factory(), np.random.default_rng(9))
        batch_model = PacketErrorModel(modem_factory(), np.random.default_rng(9))
        scalar = [
            scalar_model.transmit_packets(float(a), int(n), float(t))
            for a, n, t in zip(amplitudes, counts, throughputs)
        ]
        batch = batch_model.transmit_batch(amplitudes, counts, throughputs)
        assert list(batch) == scalar
        assert (
            scalar_model._rng.bit_generator.state
            == batch_model._rng.bit_generator.state
        )

    def test_empty_batch(self):
        model = PacketErrorModel(FixedRateModem(), np.random.default_rng(0))
        state = model._rng.bit_generator.state
        result = model.transmit_batch(np.empty(0), np.empty(0, dtype=int))
        assert result.shape == (0,)
        assert model._rng.bit_generator.state == state

    def test_zero_packet_grants_rejected(self):
        model = PacketErrorModel(FixedRateModem(), np.random.default_rng(0))
        with pytest.raises(ValueError, match="positive"):
            model.transmit_batch(np.array([1.0, 1.0]), np.array([3, 0]))

    def test_delivered_counts_bounded_by_grants(self):
        amplitudes, throughputs, counts = sample_grants(seed=12, n=200)
        model = PacketErrorModel(adaptive_modem(), np.random.default_rng(1))
        delivered = model.transmit_batch(amplitudes, counts, throughputs)
        assert np.all(delivered >= 0)
        assert np.all(delivered <= counts)
