"""Tests for the adaptive and fixed-rate modems and the packet error model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.abicm import AdaptiveModem
from repro.phy.error_model import PacketErrorModel
from repro.phy.fixed import FixedRateModem
from repro.phy.modes import ModeTable


def adaptive(mean_snr_db=18.0, target_ber=1e-3):
    return AdaptiveModem(ModeTable(target_ber=target_ber), mean_snr_db=mean_snr_db)


def fixed(mean_snr_db=18.0):
    return FixedRateModem(mean_snr_db=mean_snr_db)


class TestAdaptiveModem:
    def test_is_adaptive(self):
        assert adaptive().is_adaptive is True

    def test_snr_conversion(self):
        modem = adaptive(mean_snr_db=20.0)
        assert modem.snr_db_from_amplitude(1.0) == pytest.approx(20.0)
        assert modem.snr_db_from_amplitude(10.0) == pytest.approx(40.0)

    def test_good_channel_high_mode(self):
        modem = adaptive()
        mode = modem.select_mode(3.0)
        assert mode is not None and mode.index == 5

    def test_deep_fade_outage(self):
        modem = adaptive()
        assert modem.select_mode(0.01) is None
        assert modem.in_outage(0.01) is True

    def test_throughput_monotone_in_amplitude(self):
        modem = adaptive()
        amps = np.linspace(0.01, 4.0, 300)
        tput = modem.throughput(amps)
        assert np.all(np.diff(tput) >= 0)

    def test_throughput_used_by_priority_metric_is_bounded(self):
        modem = adaptive()
        amps = np.linspace(0.0 + 1e-6, 10.0, 100)
        tput = modem.throughput(amps)
        assert np.all(tput >= 0.0)
        assert np.all(tput <= modem.mode_table.max_throughput)

    def test_packets_per_slot_matches_mode(self):
        modem = adaptive()
        amp = 3.0
        mode = modem.select_mode(amp)
        assert modem.packets_per_slot(amp) == mode.packets_per_slot(1.0)

    def test_ber_at_threshold_equals_target(self):
        modem = adaptive(mean_snr_db=0.0)  # amplitude in dB == SNR in dB
        table = modem.mode_table
        for mode in table:
            amplitude = 10.0 ** (mode.snr_threshold_db / 20.0)
            assert modem.instantaneous_ber(amplitude) == pytest.approx(
                table.target_ber, rel=1e-3
            )

    def test_ber_in_outage_exceeds_target(self):
        modem = adaptive()
        assert modem.instantaneous_ber(0.01) > modem.mode_table.target_ber

    def test_constant_ber_within_adaptation_range(self):
        """Within the adaptation range the BER never exceeds the target."""
        modem = adaptive()
        amps = np.linspace(0.05, 5.0, 500)
        for amp in amps:
            if not modem.in_outage(float(amp)):
                assert modem.instantaneous_ber(float(amp)) <= modem.mode_table.target_ber * 1.0001

    def test_packet_success_high_in_good_channel(self):
        modem = adaptive()
        assert modem.packet_success_probability(3.0) > 0.8

    def test_packet_success_low_in_outage(self):
        modem = adaptive()
        assert modem.packet_success_probability(0.01) < 0.01

    def test_vectorised_mode_index(self):
        modem = adaptive()
        idx = modem.mode_index(np.array([0.01, 1.0, 3.0]))
        assert idx.shape == (3,)
        assert idx[0] == -1 and idx[2] == 5

    def test_invalid_packet_size(self):
        with pytest.raises(ValueError):
            AdaptiveModem(ModeTable(), packet_size_bits=0)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=1e-3, max_value=10.0))
    def test_throughput_zero_iff_outage(self, amp):
        modem = adaptive()
        tput = float(modem.throughput(amp))
        assert (tput == 0.0) == bool(modem.in_outage(amp))


class TestFixedRateModem:
    def test_not_adaptive(self):
        assert fixed().is_adaptive is False

    def test_always_one_packet_per_slot(self):
        modem = fixed()
        assert modem.packets_per_slot(0.01) == 1
        assert modem.packets_per_slot(5.0) == 1
        assert modem.max_packets_per_slot == 1

    def test_constant_throughput(self):
        modem = fixed()
        np.testing.assert_allclose(modem.throughput(np.array([0.1, 1.0, 5.0])), 1.0)

    def test_ber_degrades_in_fade(self):
        modem = fixed()
        assert modem.instantaneous_ber(0.05) > modem.instantaneous_ber(1.0)

    def test_success_probability_degrades_in_fade(self):
        modem = fixed()
        assert modem.packet_success_probability(0.05) < modem.packet_success_probability(2.0)

    def test_outage_flag(self):
        modem = fixed()
        assert modem.in_outage(0.01) is True
        assert modem.in_outage(3.0) is False

    def test_mode_always_selected(self):
        modem = fixed()
        assert modem.select_mode(0.001).throughput == 1.0

    def test_no_mode_table(self):
        assert fixed().mode_table is None

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedRateModem(throughput=0.0)
        with pytest.raises(ValueError):
            FixedRateModem(packet_size_bits=0)

    def test_adaptive_delivers_more_than_fixed_on_average(self):
        """The paper notes D-TDMA/VR offers about twice the average throughput
        of D-TDMA/FR; on a Rayleigh-distributed amplitude ensemble the adaptive
        modem must deliver substantially more packets per slot than 1."""
        rng = np.random.default_rng(0)
        amps = rng.rayleigh(scale=np.sqrt(0.5), size=20000)
        adaptive_mean = float(np.mean(adaptive().packets_per_slot(amps)))
        assert adaptive_mean > 1.5


class TestPacketErrorModel:
    def test_transmit_packet_reproducible(self):
        model_a = PacketErrorModel(fixed(), np.random.default_rng(1))
        model_b = PacketErrorModel(fixed(), np.random.default_rng(1))
        outcomes_a = [model_a.transmit_packet(1.0) for _ in range(50)]
        outcomes_b = [model_b.transmit_packet(1.0) for _ in range(50)]
        assert outcomes_a == outcomes_b

    def test_good_channel_mostly_succeeds(self):
        model = PacketErrorModel(adaptive(), np.random.default_rng(2))
        successes = sum(model.transmit_packet(3.0) for _ in range(500))
        assert successes > 400

    def test_deep_fade_mostly_fails(self):
        model = PacketErrorModel(adaptive(), np.random.default_rng(3))
        successes = sum(model.transmit_packet(0.01) for _ in range(500))
        assert successes < 50

    def test_transmit_packets_bounded(self):
        model = PacketErrorModel(adaptive(), np.random.default_rng(4))
        delivered = model.transmit_packets(1.5, 5)
        assert 0 <= delivered <= 5

    def test_transmit_zero_packets(self):
        model = PacketErrorModel(adaptive(), np.random.default_rng(5))
        assert model.transmit_packets(1.0, 0) == 0

    def test_negative_packets_rejected(self):
        model = PacketErrorModel(adaptive(), np.random.default_rng(6))
        with pytest.raises(ValueError):
            model.transmit_packets(1.0, -1)

    def test_success_probability_passthrough(self):
        modem = adaptive()
        model = PacketErrorModel(modem, np.random.default_rng(7))
        assert model.success_probability(1.0) == pytest.approx(
            modem.packet_success_probability(1.0)
        )
