"""Tests for CSI estimation and staleness."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.csi import CSIEstimate, CSIEstimator


class TestCSIEstimate:
    def test_fresh_then_stale(self):
        est = CSIEstimate(amplitude=1.2, frame_index=10, validity_frames=2)
        assert not est.is_stale(10)
        assert not est.is_stale(11)
        assert est.is_stale(12)

    def test_age(self):
        est = CSIEstimate(amplitude=0.5, frame_index=4)
        assert est.age(9) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            CSIEstimate(amplitude=-0.1, frame_index=0)
        with pytest.raises(ValueError):
            CSIEstimate(amplitude=1.0, frame_index=0, validity_frames=0)


class TestCSIEstimator:
    def test_perfect_estimator_returns_truth(self):
        est = CSIEstimator(perfect=True, rng=np.random.default_rng(0))
        for amp in (0.1, 1.0, 2.5):
            assert est.estimate(amp, 3).amplitude == pytest.approx(amp)

    def test_noisy_estimate_close_to_truth(self):
        est = CSIEstimator(n_pilot_symbols=16, mean_snr_db=18.0,
                           rng=np.random.default_rng(1))
        errors = [est.estimate(1.0, 0).amplitude - 1.0 for _ in range(2000)]
        assert abs(np.mean(errors)) < 0.01
        assert np.std(errors) == pytest.approx(est.estimation_std(1.0), rel=0.1)

    def test_more_pilots_better_estimate(self):
        few = CSIEstimator(n_pilot_symbols=2, rng=np.random.default_rng(2))
        many = CSIEstimator(n_pilot_symbols=64, rng=np.random.default_rng(2))
        assert many.estimation_std(1.0) < few.estimation_std(1.0)

    def test_higher_snr_better_estimate(self):
        low = CSIEstimator(mean_snr_db=5.0, rng=np.random.default_rng(3))
        high = CSIEstimator(mean_snr_db=25.0, rng=np.random.default_rng(3))
        assert high.estimation_std(1.0) < low.estimation_std(1.0)

    def test_estimates_never_negative(self):
        est = CSIEstimator(n_pilot_symbols=1, mean_snr_db=0.0,
                           rng=np.random.default_rng(4))
        for _ in range(500):
            assert est.estimate(0.01, 0).amplitude >= 0.0

    def test_frame_stamp_and_validity_propagated(self):
        est = CSIEstimator(validity_frames=3, rng=np.random.default_rng(5))
        record = est.estimate(1.0, 42)
        assert record.frame_index == 42
        assert record.validity_frames == 3
        assert not record.is_stale(44)
        assert record.is_stale(45)

    def test_estimate_many(self):
        est = CSIEstimator(rng=np.random.default_rng(6))
        records = est.estimate_many(np.array([0.5, 1.0, 1.5]), 7)
        assert len(records) == 3
        assert all(r.frame_index == 7 for r in records)

    def test_validation(self):
        with pytest.raises(ValueError):
            CSIEstimator(n_pilot_symbols=0)
        with pytest.raises(ValueError):
            CSIEstimator(validity_frames=0)
        with pytest.raises(ValueError):
            CSIEstimator().estimation_std(-1.0)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.0, max_value=5.0), st.integers(min_value=0, max_value=1000))
    def test_estimate_nonnegative_property(self, amp, frame):
        est = CSIEstimator(rng=np.random.default_rng(7))
        record = est.estimate(amp, frame)
        assert record.amplitude >= 0.0
        assert record.frame_index == frame
