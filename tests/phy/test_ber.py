"""Tests for the BER approximation helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.phy.ber import (
    BER_COEFFICIENT,
    ber_approximation,
    packet_success_probability,
    required_snr_db,
    required_snr_linear,
    snr_db_to_linear,
    snr_linear_to_db,
)


class TestSnrConversions:
    def test_roundtrip(self):
        assert snr_linear_to_db(snr_db_to_linear(13.0)) == pytest.approx(13.0)

    def test_zero_db_is_unity(self):
        assert snr_db_to_linear(0.0) == pytest.approx(1.0)

    def test_vectorised(self):
        out = snr_db_to_linear(np.array([0.0, 10.0, 20.0]))
        np.testing.assert_allclose(out, [1.0, 10.0, 100.0])

    def test_zero_linear_is_minus_inf_db(self):
        assert snr_linear_to_db(0.0) == float("-inf")


class TestBerApproximation:
    def test_decreases_with_snr(self):
        low = ber_approximation(1.0, 1.0)
        high = ber_approximation(1.0, 100.0)
        assert high < low

    def test_increases_with_throughput(self):
        robust = ber_approximation(0.5, 10.0)
        aggressive = ber_approximation(5.0, 10.0)
        assert aggressive > robust

    def test_zero_snr_gives_coefficient(self):
        assert ber_approximation(2.0, 0.0) == pytest.approx(BER_COEFFICIENT)

    def test_clipped_to_half(self):
        assert ber_approximation(1.0, 0.0) <= 0.5

    def test_vectorised(self):
        out = ber_approximation(1.0, np.array([1.0, 10.0, 100.0]))
        assert out.shape == (3,)
        assert np.all(np.diff(out) < 0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ber_approximation(0.0, 10.0)
        with pytest.raises(ValueError):
            ber_approximation(1.0, -1.0)

    @given(
        st.floats(min_value=0.1, max_value=8.0),
        st.floats(min_value=0.0, max_value=1e4),
    )
    def test_always_a_probability(self, eta, snr):
        ber = ber_approximation(eta, snr)
        assert 0.0 <= ber <= 0.5


class TestRequiredSnr:
    def test_inverts_ber(self):
        """At the required SNR the BER equals the target."""
        for eta in (0.5, 1.0, 3.0, 5.0):
            gamma = required_snr_linear(eta, 1e-3)
            assert ber_approximation(eta, gamma) == pytest.approx(1e-3, rel=1e-6)

    def test_monotone_in_throughput(self):
        snrs = [required_snr_db(eta, 1e-3) for eta in (0.5, 1.0, 2.0, 3.0, 4.0, 5.0)]
        assert snrs == sorted(snrs)
        assert snrs[0] < snrs[-1]

    def test_stricter_target_needs_more_snr(self):
        assert required_snr_db(2.0, 1e-4) > required_snr_db(2.0, 1e-2)

    def test_paper_like_range(self):
        """The 6-mode table at 1e-3 spans a plausible cellular SNR range."""
        low = required_snr_db(0.5, 1e-3)
        high = required_snr_db(5.0, 1e-3)
        assert 0.0 < low < 5.0
        assert 15.0 < high < 25.0

    def test_invalid_targets(self):
        with pytest.raises(ValueError):
            required_snr_linear(1.0, 0.0)
        with pytest.raises(ValueError):
            required_snr_linear(1.0, 0.3)
        with pytest.raises(ValueError):
            required_snr_linear(0.0, 1e-3)

    @given(
        st.floats(min_value=0.25, max_value=6.0),
        st.floats(min_value=1e-6, max_value=0.1),
    )
    def test_roundtrip_property(self, eta, target):
        gamma = required_snr_linear(eta, target)
        assert ber_approximation(eta, gamma) == pytest.approx(target, rel=1e-6)


class TestPacketSuccess:
    def test_zero_ber_always_succeeds(self):
        assert packet_success_probability(0.0, 160) == 1.0

    def test_decreases_with_packet_length(self):
        assert packet_success_probability(1e-3, 320) < packet_success_probability(1e-3, 160)

    def test_decreases_with_ber(self):
        assert packet_success_probability(1e-2, 160) < packet_success_probability(1e-4, 160)

    def test_known_value(self):
        assert packet_success_probability(1e-3, 160) == pytest.approx((1 - 1e-3) ** 160)

    def test_vectorised(self):
        out = packet_success_probability(np.array([0.0, 1e-3, 0.5]), 100)
        assert out.shape == (3,)
        assert np.all((out >= 0) & (out <= 1))

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            packet_success_probability(1e-3, 0)

    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(min_value=1, max_value=5000))
    def test_always_a_probability(self, ber, bits):
        p = packet_success_probability(ber, bits)
        assert 0.0 <= p <= 1.0
