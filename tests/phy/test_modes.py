"""Tests for the transmission-mode table and constant-BER thresholds."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.ber import required_snr_db
from repro.phy.modes import OUTAGE_MODE_INDEX, ModeTable, TransmissionMode
from repro.phy.thresholds import constant_ber_thresholds_db


class TestThresholds:
    def test_strictly_increasing(self):
        thr = constant_ber_thresholds_db((0.5, 1.0, 2.0, 3.0, 4.0, 5.0), 1e-3)
        assert all(b > a for a, b in zip(thr, thr[1:]))

    def test_matches_required_snr(self):
        thr = constant_ber_thresholds_db((1.0, 2.0), 1e-3)
        assert thr[0] == pytest.approx(required_snr_db(1.0, 1e-3))
        assert thr[1] == pytest.approx(required_snr_db(2.0, 1e-3))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            constant_ber_thresholds_db((), 1e-3)

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            constant_ber_thresholds_db((2.0, 1.0), 1e-3)

    @given(st.floats(min_value=1e-6, max_value=0.1))
    def test_monotone_for_any_target(self, target):
        thr = constant_ber_thresholds_db((0.5, 1.0, 2.0, 4.0), target)
        assert all(b > a for a, b in zip(thr, thr[1:]))


class TestTransmissionMode:
    def test_packets_per_slot_scaling(self):
        mode = TransmissionMode(index=3, throughput=3.0, snr_threshold_db=12.0)
        assert mode.packets_per_slot(1.0) == 3
        assert mode.packets_per_slot(0.5) == 6

    def test_minimum_one_packet(self):
        mode = TransmissionMode(index=0, throughput=0.5, snr_threshold_db=2.0)
        assert mode.packets_per_slot(1.0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TransmissionMode(index=-1, throughput=1.0, snr_threshold_db=0.0)
        with pytest.raises(ValueError):
            TransmissionMode(index=0, throughput=0.0, snr_threshold_db=0.0)
        mode = TransmissionMode(index=0, throughput=1.0, snr_threshold_db=0.0)
        with pytest.raises(ValueError):
            mode.packets_per_slot(0.0)


class TestModeTable:
    def _table(self, **kw):
        return ModeTable(target_ber=1e-3, **kw)

    def test_paper_table_has_six_modes(self):
        table = self._table()
        assert len(table) == 6
        assert table.max_throughput == 5.0
        assert table.max_packets_per_slot == 5

    def test_iteration_and_indexing(self):
        table = self._table()
        modes = list(table)
        assert modes[0].throughput == 0.5
        assert table[5].throughput == 5.0

    def test_mode_lookup_monotone(self):
        table = self._table()
        snrs = np.linspace(-10.0, 30.0, 200)
        idx = table.mode_index_for_snr(snrs)
        assert np.all(np.diff(idx) >= 0)

    def test_outage_below_lowest_threshold(self):
        table = self._table()
        assert table.mode_for_snr(table.outage_threshold_db - 1.0) is None
        idx = table.mode_index_for_snr(table.outage_threshold_db - 1.0)
        assert int(idx) == OUTAGE_MODE_INDEX

    def test_highest_mode_at_high_snr(self):
        table = self._table()
        mode = table.mode_for_snr(40.0)
        assert mode is not None and mode.index == 5

    def test_threshold_boundary_inclusive(self):
        table = self._table()
        thr = table.thresholds_db
        mode = table.mode_for_snr(float(thr[2]))
        assert mode is not None and mode.index == 2

    def test_throughput_staircase(self):
        """Fig. 7b: throughput rises from 0 (outage) to 5 in steps."""
        table = self._table()
        snrs = np.linspace(-10.0, 30.0, 400)
        tput = table.throughput_for_snr(snrs)
        assert tput[0] == 0.0
        assert tput[-1] == 5.0
        assert np.all(np.diff(tput) >= 0)
        assert set(np.unique(tput)) <= {0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0}

    def test_packets_per_slot_staircase(self):
        table = self._table()
        assert table.packets_per_slot_for_snr(-10.0) == 0
        assert table.packets_per_slot_for_snr(40.0) == 5

    def test_scalar_vs_vector_consistency(self):
        table = self._table()
        assert table.throughput_for_snr(10.0) == pytest.approx(
            float(table.throughput_for_snr(np.array([10.0]))[0])
        )

    def test_describe_rows(self):
        table = self._table()
        rows = table.describe()
        assert len(rows) == 6
        assert rows[0]["mode"] == 0
        assert rows[-1]["packets_per_slot"] == 5
        for row in rows:
            assert row["snr_threshold_db"] == pytest.approx(
                row["required_snr_check_db"], abs=1e-3
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            ModeTable(throughputs=(1.0,))
        with pytest.raises(ValueError):
            ModeTable(throughputs=(2.0, 1.0))
        with pytest.raises(ValueError):
            ModeTable(throughputs=(1.0, 1.0))
        with pytest.raises(ValueError):
            ModeTable(reference_throughput=0.0)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=-30.0, max_value=50.0))
    def test_lookup_consistent_with_thresholds(self, snr):
        table = self._table()
        mode = table.mode_for_snr(snr)
        if mode is None:
            assert snr < table.outage_threshold_db
        else:
            assert snr >= mode.snr_threshold_db
            if mode.index < len(table) - 1:
                assert snr < table[mode.index + 1].snr_threshold_db
