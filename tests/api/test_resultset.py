"""Tests for ResultSet querying, aggregation, export and legacy conversion."""

import json
import math

import pytest

from repro.api import ExperimentSpec, SerialExecutor, SweepAxis, run, sweep_spec
from repro.config import SimulationParameters
from repro.sim.results import SweepResult
from repro.sim.scenario import Scenario

PARAMS = SimulationParameters()
BASE = Scenario(protocol="charisma", n_voice=0, n_data=1,
                duration_s=0.4, warmup_s=0.2)

#: All six protocols of the paper, in its own reporting order.
ALL_PROTOCOLS = ("charisma", "dtdma_vr", "dtdma_fr", "drma", "rama", "rmav")


@pytest.fixture(scope="module")
def replicated():
    """Two protocols × two loads × three seed replicates."""
    spec = ExperimentSpec(
        protocols=("charisma", "rama"),
        base_scenario=BASE,
        axes=(SweepAxis("n_voice", (2, 4)),),
        params=PARAMS,
        seeds=(0, 1, 2),
    )
    return run(spec, executor=SerialExecutor())


class TestQuerying:
    def test_filter_by_coords(self, replicated):
        subset = replicated.filter(protocol="charisma", n_voice=4)
        assert len(subset) == 3
        assert all(r.point.scenario.n_voice == 4 for r in subset)

    def test_filter_by_predicate(self, replicated):
        subset = replicated.filter(lambda r: r["voice_loss_rate"] <= 1.0)
        assert len(subset) == len(replicated)

    def test_filter_unknown_key_raises(self, replicated):
        with pytest.raises(KeyError):
            replicated.filter(bogus=1)

    def test_group_by_protocol(self, replicated):
        groups = replicated.group_by("protocol")
        assert list(groups) == [("charisma",), ("rama",)]
        assert all(len(g) == 6 for g in groups.values())

    def test_group_by_needs_keys(self, replicated):
        with pytest.raises(ValueError):
            replicated.group_by()

    def test_distinct_and_slicing(self, replicated):
        assert replicated.distinct("seed") == [0, 1, 2]
        assert len(replicated[:4]) == 4
        assert replicated[0].point.index == 0


class TestAggregation:
    def test_mean_and_ci_across_three_seeds(self, replicated):
        rows = replicated.aggregate(["voice_loss_rate"],
                                    by=("protocol", "n_voice"))
        assert len(rows) == 4  # 2 protocols x 2 loads
        for row in rows:
            assert row.n == 3
            group = dict(row.group)
            values = replicated.filter(**group).series("voice_loss_rate")
            mean = sum(values) / len(values)
            assert row.mean == pytest.approx(mean)
            var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
            assert row.std == pytest.approx(math.sqrt(var))
            # t(0.975, df=2) = 4.3027
            expected_hw = 4.302652729911275 * math.sqrt(var / 3)
            assert row.ci_half_width == pytest.approx(expected_hw, rel=1e-6)

    def test_singleton_group_has_zero_ci(self, replicated):
        rows = replicated.aggregate(["voice_loss_rate"],
                                    by=("protocol", "n_voice", "seed"))
        assert all(row.n == 1 and row.ci_half_width == 0.0 for row in rows)

    def test_whole_set_aggregate(self, replicated):
        rows = replicated.aggregate(["data_throughput_per_frame"])
        assert len(rows) == 1
        assert rows[0].n == len(replicated)
        assert rows[0].group == ()

    def test_as_dict_inlines_group(self, replicated):
        row = replicated.aggregate(["voice_loss_rate"], by=("protocol",))[0]
        flat = row.as_dict()
        assert flat["protocol"] == "charisma"
        assert set(flat) >= {"metric", "mean", "std", "ci_half_width", "n"}

    def test_validation(self, replicated):
        with pytest.raises(ValueError):
            replicated.aggregate(confidence=1.5)


class TestExports:
    def test_to_records_flat_and_ordered(self, replicated):
        records = replicated.to_records()
        assert len(records) == len(replicated)
        assert records[0]["protocol"] == "charisma"
        assert "voice_loss_rate" in records[0]
        assert "run_hash" in records[0]

    def test_to_csv_roundtrip_header(self, replicated, tmp_path):
        path = tmp_path / "results.csv"
        text = replicated.to_csv(str(path))
        assert path.read_text() == text
        header = text.splitlines()[0].split(",")
        assert "protocol" in header and "voice_loss_rate" in header
        assert len(text.splitlines()) == len(replicated) + 1

    def test_to_json_roundtrip(self, replicated, tmp_path):
        path = tmp_path / "results.json"
        text = replicated.to_json(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(text)
        assert len(loaded) == len(replicated)


class TestLegacyConversion:
    def test_to_sweep_result_requires_unique_runs(self, replicated):
        with pytest.raises(ValueError):
            replicated.to_sweep_result("n_voice")  # two protocols
        with pytest.raises(ValueError):
            replicated.to_sweep_result("n_voice", protocol="charisma")  # 3 seeds
        sweep = replicated.to_sweep_result("n_voice", protocol="charisma", seed=1)
        assert isinstance(sweep, SweepResult)
        assert sweep.values == [2, 4]
        assert [r.scenario.seed for r in sweep.results] == [1, 1]

    def test_to_sweep_results_matches_filter(self, replicated):
        sweeps = replicated.filter(seed=0).to_sweep_results("n_voice")
        assert set(sweeps) == {"charisma", "rama"}
        assert sweeps["rama"].parameter == "n_voice"


class TestSweepSpecConvenience:
    """sweep_spec + to_sweep_results replaced the removed legacy shims."""

    def test_six_protocol_comparison_shapes(self):
        spec = sweep_spec(ALL_PROTOCOLS, "n_voice", [2, 4],
                          base_scenario=BASE, params=PARAMS)
        sweeps = run(spec, executor=SerialExecutor()).to_sweep_results("n_voice")
        assert set(sweeps) == set(ALL_PROTOCOLS)
        for protocol in ALL_PROTOCOLS:
            assert sweeps[protocol].values == [2, 4]
            assert [r.scenario.protocol for r in sweeps[protocol].results] == \
                   [protocol, protocol]

    def test_sweep_spec_generalised_beyond_populations(self):
        spec = sweep_spec(("charisma",), "mobile_speed_kmh", [10, 80],
                          base_scenario=BASE.with_overrides(n_voice=2),
                          params=PARAMS)
        sweep = run(spec, executor=SerialExecutor()).to_sweep_result(
            "mobile_speed_kmh"
        )
        assert sweep.parameter == "mobile_speed_kmh"
        assert sweep.values == [10, 80]

    def test_sweep_spec_bad_parameter_lists_fields(self):
        with pytest.raises(ValueError, match="sweepable"):
            sweep_spec(("charisma",), "n_users", [1, 2],
                       base_scenario=BASE, params=PARAMS)

    def test_sweep_spec_defaults_to_base_seed(self):
        spec = sweep_spec(("charisma",), "n_voice", [2],
                          base_scenario=BASE.with_overrides(seed=7),
                          params=PARAMS)
        assert spec.seeds == (7,)
