"""Tests for the execution backends: serial/parallel parity, selection."""

import pytest

from repro.api import (
    ExperimentSpec,
    ParallelExecutor,
    SerialExecutor,
    SweepAxis,
    run,
    run_points,
    select_executor,
)
from repro.api.executors import estimated_grid_cost, estimated_point_cost
from repro.api.spec import RunPoint
from repro.config import SimulationParameters
from repro.sim.scenario import Scenario

PARAMS = SimulationParameters()
BASE = Scenario(protocol="charisma", n_voice=0, n_data=1,
                duration_s=0.4, warmup_s=0.2)


def _small_spec():
    return ExperimentSpec(
        protocols=("charisma", "dtdma_fr"),
        base_scenario=BASE,
        axes=(SweepAxis("n_voice", (2, 4)),),
        params=PARAMS,
        seeds=(0, 1),
    )


class TestSerialExecutor:
    def test_results_in_expansion_order(self):
        spec = _small_spec()
        results = run(spec, executor=SerialExecutor())
        assert len(results) == spec.n_runs
        for record in results:
            assert record.result.scenario == record.point.scenario

    def test_progress_called_per_run(self):
        spec = _small_spec()
        calls = []
        run(spec, executor=SerialExecutor(),
            progress=lambda done, total: calls.append((done, total)))
        assert calls == [(i + 1, spec.n_runs) for i in range(spec.n_runs)]


class TestParallelExecutor:
    def test_matches_serial_for_identical_seeds(self):
        spec = _small_spec()
        serial = run(spec, executor=SerialExecutor())
        parallel = run(spec, executor=ParallelExecutor(n_workers=2, chunk_size=3))
        assert serial.to_records() == parallel.to_records()

    def test_param_axis_matches_serial(self):
        spec = ExperimentSpec(
            protocols=("charisma",),
            base_scenario=BASE.with_overrides(n_voice=2),
            axes=(SweepAxis("mean_snr_db", (20.0, 28.5)),),
            params=PARAMS,
            seeds=(0, 1),
        )
        serial = run(spec, executor=SerialExecutor())
        parallel = run(spec, executor=ParallelExecutor(n_workers=2, chunk_size=1))
        assert serial.to_records() == parallel.to_records()

    def test_progress_reports_monotonic_completion(self):
        spec = _small_spec()
        calls = []
        run(spec, executor=ParallelExecutor(n_workers=2, chunk_size=2),
            progress=lambda done, total: calls.append((done, total)))
        assert calls[-1] == (spec.n_runs, spec.n_runs)
        assert [c[0] for c in calls] == sorted(c[0] for c in calls)

    def test_single_worker_falls_back_to_serial(self):
        spec = _small_spec()
        results = run(spec, executor=ParallelExecutor(n_workers=1))
        assert len(results) == spec.n_runs

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelExecutor(n_workers=0)
        with pytest.raises(ValueError):
            ParallelExecutor(chunk_size=0)


class TestRunPoints:
    def test_parallel_and_serial_identical_for_identical_seeds(self):
        # Regression: the shared SimulationParameters object travels to the
        # workers through the pool initializer; the results must still be
        # exactly those of an in-process loop.
        points = [
            RunPoint(index=i, scenario=BASE.with_overrides(n_voice=n, seed=s))
            for i, (n, s) in enumerate((n, s) for n in (2, 4) for s in (0, 1))
        ]
        serial = run_points(points, PARAMS, n_workers=1)
        parallel = run_points(points, PARAMS, n_workers=2)
        assert [r.summary() for r in serial] == [r.summary() for r in parallel]
        assert [r.scenario for r in serial] == [p.scenario for p in points]

    def test_sink_sees_every_completion(self):
        points = [
            RunPoint(index=i, scenario=BASE.with_overrides(seed=i))
            for i in range(3)
        ]
        seen = []
        results = SerialExecutor().execute_with_sink(
            points, PARAMS,
            sink=lambda pos, point, result: seen.append((pos, point, result)),
        )
        assert [pos for pos, _, _ in seen] == [0, 1, 2]
        assert [r for _, _, r in seen] == results


class TestSelection:
    def test_explicit_workers_force_choice(self):
        points = _small_spec().expand()
        assert isinstance(select_executor(points, n_workers=1), SerialExecutor)
        chosen = select_executor(points, n_workers=3)
        assert isinstance(chosen, ParallelExecutor)
        assert chosen.n_workers == 3

    def test_small_grids_stay_serial(self):
        points = _small_spec().expand()
        assert estimated_grid_cost(points) < 2000.0
        assert isinstance(select_executor(points), SerialExecutor)

    def test_cost_model_scales_with_grid(self):
        small = _small_spec().expand()
        big_spec = ExperimentSpec(
            protocols=("charisma",),
            base_scenario=BASE.with_overrides(duration_s=10.0, n_voice=150),
            axes=(SweepAxis("n_data", tuple(range(10, 110, 10))),),
        )
        assert estimated_grid_cost(big_spec.expand()) > estimated_grid_cost(small)

    def test_grid_cost_sums_point_costs(self):
        points = _small_spec().expand()
        assert estimated_grid_cost(points) == pytest.approx(
            sum(estimated_point_cost(p) for p in points)
        )
