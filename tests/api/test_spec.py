"""Tests for the declarative layer: SweepAxis validation, grid expansion."""

import pytest

from repro.api import (
    ExperimentSpec,
    SweepAxis,
    parameter_sweepable_fields,
    scenario_sweepable_fields,
)
from repro.sim.scenario import Scenario

BASE = Scenario(protocol="charisma", n_voice=0, n_data=0,
                duration_s=0.5, warmup_s=0.25)


class TestSweepAxis:
    def test_scenario_field_inferred(self):
        axis = SweepAxis("n_voice", (10, 20))
        assert axis.target == "scenario"
        assert axis.values == (10, 20)

    def test_params_field_inferred(self):
        axis = SweepAxis("mean_snr_db", (20.0, 28.5))
        assert axis.target == "params"

    def test_scenario_wins_on_shared_name(self):
        # mobile_speed_kmh exists on both Scenario and SimulationParameters;
        # the scenario override is the per-run mechanism the engine honours.
        assert SweepAxis("mobile_speed_kmh", (10.0,)).target == "scenario"
        assert SweepAxis("mobile_speed_kmh", (10.0,), target="params").target == "params"

    def test_unknown_field_error_lists_sweepable_fields(self):
        with pytest.raises(ValueError) as excinfo:
            SweepAxis("population", (1, 2))
        message = str(excinfo.value)
        for field in scenario_sweepable_fields():
            assert field in message
        assert "mean_snr_db" in message  # parameter fields listed too

    def test_reserved_fields_rejected(self):
        with pytest.raises(ValueError, match="protocols"):
            SweepAxis("protocol", ("charisma",))
        with pytest.raises(ValueError, match="seeds"):
            SweepAxis("seed", (0, 1))

    def test_empty_and_duplicate_values_rejected(self):
        with pytest.raises(ValueError):
            SweepAxis("n_voice", ())
        with pytest.raises(ValueError):
            SweepAxis("n_voice", (5, 5))

    def test_sweepable_field_lists(self):
        assert "n_voice" in scenario_sweepable_fields()
        assert "protocol" not in scenario_sweepable_fields()
        assert "seed" not in scenario_sweepable_fields()
        assert "mean_snr_db" in parameter_sweepable_fields()


class TestExperimentSpecValidation:
    def test_needs_protocols_and_seeds(self):
        with pytest.raises(ValueError):
            ExperimentSpec(protocols=(), base_scenario=BASE)
        with pytest.raises(ValueError):
            ExperimentSpec(protocols=("charisma",), base_scenario=BASE, seeds=())

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(protocols=("charisma", "charisma"), base_scenario=BASE)
        with pytest.raises(ValueError):
            ExperimentSpec(protocols=("charisma",), base_scenario=BASE,
                           seeds=(1, 1))
        with pytest.raises(ValueError):
            ExperimentSpec(
                protocols=("charisma",), base_scenario=BASE,
                axes=(SweepAxis("n_voice", (1,)), SweepAxis("n_voice", (2,))),
            )


class TestExpansion:
    def _spec(self):
        return ExperimentSpec(
            protocols=("charisma", "rama"),
            base_scenario=BASE,
            axes=(
                SweepAxis("n_voice", (2, 4)),
                SweepAxis("use_request_queue", (False, True)),
            ),
            seeds=(0, 7),
        )

    def test_n_runs_is_cross_product(self):
        assert self._spec().n_runs == 2 * 2 * 2 * 2

    def test_expansion_is_deterministic(self):
        first = self._spec().expand()
        second = self._spec().expand()
        assert first == second
        assert [p.run_hash() for p in first] == [p.run_hash() for p in second]
        assert self._spec().spec_hash() == self._spec().spec_hash()

    def test_expansion_order_protocol_then_axes_then_seed(self):
        points = self._spec().expand()
        assert [p.index for p in points] == list(range(len(points)))
        # protocols outermost, seeds innermost
        assert points[0].coords_dict() == {
            "protocol": "charisma", "n_voice": 2,
            "use_request_queue": False, "seed": 0,
        }
        assert points[1].coords_dict()["seed"] == 7
        assert points[len(points) // 2].coords_dict()["protocol"] == "rama"

    def test_overrides_applied_to_scenarios(self):
        points = self._spec().expand()
        for point in points:
            coords = point.coords_dict()
            assert point.scenario.protocol == coords["protocol"]
            assert point.scenario.n_voice == coords["n_voice"]
            assert point.scenario.use_request_queue == coords["use_request_queue"]
            assert point.scenario.seed == coords["seed"]
            assert point.param_overrides == ()

    def test_distinct_points_have_distinct_hashes(self):
        points = self._spec().expand()
        assert len({p.run_hash() for p in points}) == len(points)

    def test_changed_spec_changes_hashes(self):
        base = self._spec()
        other = ExperimentSpec(
            protocols=("charisma", "rama"),
            base_scenario=BASE.with_overrides(duration_s=0.75),
            axes=base.axes,
            seeds=base.seeds,
        )
        assert base.spec_hash() != other.spec_hash()
        assert base.expand()[0].run_hash() != other.expand()[0].run_hash()

    def test_param_axis_kept_as_delta(self):
        spec = ExperimentSpec(
            protocols=("charisma",),
            base_scenario=BASE,
            axes=(SweepAxis("mean_snr_db", (20.0, 28.5)),),
        )
        points = spec.expand()
        assert [p.param_overrides for p in points] == [
            (("mean_snr_db", 20.0),), (("mean_snr_db", 28.5),),
        ]
        assert points[0].resolved_params(spec.params).mean_snr_db == 20.0
        # scenario untouched by parameter axes
        assert points[0].scenario.n_voice == BASE.n_voice

    def test_spec_is_hashable(self):
        assert isinstance(hash(self._spec()), int)
        assert isinstance(hash(self._spec().expand()[0]), int)

    def test_changed_base_params_change_run_hashes(self):
        # Identical scenarios under different shared parameters must not
        # hash equal (run_hash is the designated result-cache key).
        from repro.config import SimulationParameters

        spec = ExperimentSpec(protocols=("charisma",), base_scenario=BASE)
        other = ExperimentSpec(protocols=("charisma",), base_scenario=BASE,
                               params=SimulationParameters(mean_snr_db=15.0))
        point, other_point = spec.expand()[0], other.expand()[0]
        assert point.scenario == other_point.scenario
        assert point.run_hash() != other_point.run_hash()
