"""Tests for the analysis layer: capacity search, tables, experiment registry."""

import pytest

from repro.analysis.capacity import (
    CapacityEstimate,
    _bracket_and_bisect,
    data_qos_capacity,
    voice_capacity,
)
from repro.analysis.experiments import (
    ALL_PROTOCOLS,
    EXPERIMENTS,
    get_experiment,
    list_experiments,
)
from repro.analysis.tables import (
    format_comparison_table,
    format_kv_table,
    format_sweep_table,
)
from repro.config import SimulationParameters
from repro.api import SerialExecutor, run, sweep_spec
from repro.sim.scenario import Scenario

PARAMS = SimulationParameters()
FAST = dict(duration_s=0.5, warmup_s=0.25)


class TestBracketAndBisect:
    def _evaluate_threshold(self, limit):
        def evaluate(n):
            return float(n), n <= limit
        return evaluate

    def test_finds_exact_limit(self):
        capacity, probes = _bracket_and_bisect(self._evaluate_threshold(37), 10, 100, 20)
        assert capacity == 37
        assert len(probes) >= 3

    def test_all_pass_returns_highest_probe(self):
        capacity, _ = _bracket_and_bisect(self._evaluate_threshold(1000), 10, 50, 20)
        assert capacity == 50

    def test_all_fail_returns_zero(self):
        capacity, _ = _bracket_and_bisect(self._evaluate_threshold(0), 10, 100, 20)
        assert capacity == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            _bracket_and_bisect(self._evaluate_threshold(5), -1, 10, 5)
        with pytest.raises(ValueError):
            _bracket_and_bisect(self._evaluate_threshold(5), 0, 10, 0)


class TestCapacitySearches:
    def test_voice_capacity_small_search(self):
        estimate = voice_capacity(
            "charisma", PARAMS, lower=4, upper=12, step=8,
            duration_s=0.5, warmup_s=0.25, seed=1,
        )
        assert isinstance(estimate, CapacityEstimate)
        assert estimate.capacity >= 4
        assert estimate.n_probes >= 1
        assert estimate.threshold_value == PARAMS.voice_loss_threshold

    def test_data_capacity_small_search(self):
        estimate = data_qos_capacity(
            "charisma", PARAMS, lower=2, upper=6, step=4,
            duration_s=0.5, warmup_s=0.25, seed=1,
        )
        assert estimate.capacity >= 0
        assert estimate.protocol == "charisma"


class TestTables:
    def _sweep(self, protocol="charisma", values=(2, 4)):
        base = Scenario(protocol=protocol, n_voice=0, n_data=0, **FAST)
        spec = sweep_spec((protocol,), "n_voice", values,
                          base_scenario=base, params=PARAMS)
        return run(spec, executor=SerialExecutor()).to_sweep_result("n_voice")

    def test_kv_table(self):
        text = format_kv_table({"a": 1, "bb": 2.5}, title="Params")
        assert "Params" in text and "bb" in text

    def test_sweep_table_contains_values(self):
        text = format_sweep_table(self._sweep(), title="sweep")
        assert "n_voice" in text
        assert "voice_loss_rate" in text
        assert " 2" in text and " 4" in text

    def test_comparison_table(self):
        sweeps = {"charisma": self._sweep("charisma"), "rama": self._sweep("rama")}
        text = format_comparison_table(sweeps, "voice_loss_rate", title="cmp")
        assert "charisma" in text and "rama" in text

    def test_comparison_table_mismatched_values_rejected(self):
        other = self._sweep("rama", values=(3,))
        with pytest.raises(ValueError):
            format_comparison_table({"charisma": self._sweep(), "rama": other},
                                    "voice_loss_rate")

    def test_empty_comparison(self):
        assert format_comparison_table({}, "voice_loss_rate", title="t") == "t"


class TestExperimentRegistry:
    def test_every_figure_and_table_registered(self):
        keys = list_experiments()
        assert "table1" in keys and "fig5" in keys and "fig7" in keys
        for figure in (11, 12, 13):
            for sub in "abcdef":
                assert f"fig{figure}{sub}" in keys
        assert "capacity_voice" in keys and "speed_ablation" in keys
        assert len(keys) == 25

    def test_lookup_and_describe(self):
        experiment = get_experiment("fig11a")
        row = experiment.describe()
        assert row["paper_artifact"] == "Figure 11(a)"
        assert row["kind"] == "voice_sweep"
        assert row["bench_target"].endswith("fig11_voice_loss.py")
        assert tuple(row["protocols"]) == ALL_PROTOCOLS

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyError):
            get_experiment("fig99z")

    def test_base_scenario_applies_fixed_fields(self):
        experiment = get_experiment("fig11d")
        scenario = experiment.base_scenario(seed=3)
        assert scenario.n_data == 10
        assert scenario.use_request_queue is True
        assert scenario.seed == 3

    def test_sweep_experiment_runs_scaled_down(self):
        experiment = get_experiment("fig11a")
        sweeps = experiment.run(
            PARAMS, values=[2, 4], duration_s=0.5, seed=1,
        )
        assert set(sweeps) == set(ALL_PROTOCOLS)
        assert sweeps["charisma"].values == [2, 4]

    def test_speed_sweep_runs(self):
        experiment = get_experiment("speed_ablation")
        sweeps = experiment.run(PARAMS, values=[10, 80], duration_s=0.5, seed=1)
        assert list(sweeps) == ["charisma"]
        assert sweeps["charisma"].values == [10.0, 80.0]

    def test_non_sweep_experiment_refuses_run(self):
        with pytest.raises(ValueError):
            get_experiment("table1").run(PARAMS)

    def test_every_experiment_has_bench_and_modules(self):
        for key, experiment in EXPERIMENTS.items():
            assert experiment.bench_target, key
            assert experiment.modules, key
            assert experiment.expected_shape, key
