"""Tests for the transmit-energy accounting."""

import pytest

from repro.config import SimulationParameters
from repro.metrics.collector import MacStats
from repro.metrics.data import DataMetrics
from repro.metrics.energy import EnergyModel, EnergyReport
from repro.metrics.voice import VoiceMetrics
from repro.sim.runner import run_simulation
from repro.sim.results import SimulationResult
from repro.sim.scenario import Scenario

PARAMS = SimulationParameters()


def make_result(voice_delivered=90, voice_errored=10, data_delivered=50,
                retransmissions=5, attempts=200):
    scenario = Scenario(protocol="charisma", n_voice=5, n_data=2)
    voice = VoiceMetrics(generated=110, delivered=voice_delivered,
                         errored=voice_errored, dropped=10)
    data = DataMetrics(generated=80, delivered=data_delivered,
                       retransmissions=retransmissions, delay_frames=[2, 4],
                       n_frames=100, frame_duration_s=PARAMS.frame_duration_s)
    mac = MacStats(n_frames=100, contention_attempts=attempts,
                   contention_collisions=10, idle_request_slots=5,
                   allocated_slots=150, info_slots_per_frame=8,
                   mean_queue_length=0.1)
    return SimulationResult(scenario=scenario, voice=voice, data=data, mac=mac)


class TestEnergyReport:
    def test_accounting(self):
        model = EnergyModel(packet_energy_unit=1.0, request_energy_unit=0.1)
        report = model.report(make_result())
        assert report.request_energy == pytest.approx(20.0)
        assert report.packet_energy == pytest.approx(90 + 10 + 50 + 5)
        assert report.wasted_packet_energy == pytest.approx(15.0)
        assert report.useful_packets == 140
        assert report.total_energy == pytest.approx(175.0)
        assert report.wasted_fraction == pytest.approx(15.0 / 175.0)
        assert report.energy_per_useful_packet == pytest.approx(175.0 / 140.0)

    def test_zero_useful_packets(self):
        report = EnergyReport(request_energy=1.0, packet_energy=2.0,
                              wasted_packet_energy=2.0, useful_packets=0)
        assert report.energy_per_useful_packet == float("inf")
        empty = EnergyReport(0.0, 0.0, 0.0, 0)
        assert empty.energy_per_useful_packet == 0.0
        assert empty.wasted_fraction == 0.0

    def test_more_errors_cost_more_energy_per_packet(self):
        model = EnergyModel()
        clean = model.energy_per_useful_packet(make_result(voice_errored=0,
                                                           retransmissions=0))
        dirty = model.energy_per_useful_packet(make_result(voice_errored=30,
                                                           retransmissions=20))
        assert dirty > clean

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(packet_energy_unit=0.0)
        with pytest.raises(ValueError):
            EnergyModel(request_energy_unit=-0.1)


class TestEnergyOnSimulations:
    def test_charisma_at_least_as_efficient_as_fixed_rate(self):
        """The paper's energy argument: avoiding doomed transmissions means
        less energy per delivered packet for the channel-adaptive protocol."""
        model = EnergyModel()
        kwargs = dict(n_voice=40, n_data=5, duration_s=1.5, warmup_s=0.5, seed=2)
        charisma = run_simulation(Scenario(protocol="charisma", **kwargs), PARAMS)
        fixed = run_simulation(Scenario(protocol="dtdma_fr", **kwargs), PARAMS)
        assert model.report(charisma).wasted_fraction <= (
            model.report(fixed).wasted_fraction + 1e-9
        )
        assert model.energy_per_useful_packet(charisma) <= (
            model.energy_per_useful_packet(fixed) * 1.05
        )
