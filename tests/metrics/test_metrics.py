"""Tests for the metrics layer (voice, data, collector, statistics)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SimulationParameters
from repro.mac.requests import Allocation, FrameOutcome
from repro.metrics.collector import MetricsCollector
from repro.metrics.data import DataMetrics
from repro.metrics.stats import RunningStatistics, batch_means_confidence_interval
from repro.metrics.voice import VoiceMetrics
from tests.utils import data_terminal_with_packets, voice_terminal_with_packet

PARAMS = SimulationParameters()


class TestVoiceMetrics:
    def test_loss_rate_combines_drops_and_errors(self):
        metrics = VoiceMetrics(generated=1000, delivered=980, errored=5, dropped=15)
        assert metrics.lost == 20
        assert metrics.loss_rate == pytest.approx(0.02)
        assert metrics.dropping_rate == pytest.approx(0.015)
        assert metrics.error_rate == pytest.approx(0.005)

    def test_quality_threshold(self):
        assert VoiceMetrics(1000, 995, 2, 3).meets_quality(0.01)
        assert not VoiceMetrics(1000, 900, 50, 50).meets_quality(0.01)

    def test_zero_generated(self):
        metrics = VoiceMetrics(0, 0, 0, 0)
        assert metrics.loss_rate == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            VoiceMetrics(-1, 0, 0, 0)

    def test_from_terminals(self):
        voice = voice_terminal_with_packet(0)
        voice.stats.voice_generated = 10
        voice.stats.voice_delivered = 8
        voice.stats.voice_errored = 1
        voice.stats.voice_dropped = 1
        data = data_terminal_with_packets(1, 3)
        metrics = VoiceMetrics.from_terminals([voice, data])
        assert metrics.generated == 10 and metrics.lost == 2

    @given(st.integers(0, 10_000), st.integers(0, 10_000), st.integers(0, 10_000))
    def test_rates_bounded_property(self, delivered, errored, dropped):
        generated = delivered + errored + dropped
        metrics = VoiceMetrics(generated, delivered, errored, dropped)
        assert 0.0 <= metrics.loss_rate <= 1.0


class TestDataMetrics:
    def _metrics(self, delivered=200, n_frames=100, delays=(2, 4, 6)):
        return DataMetrics(generated=300, delivered=delivered, retransmissions=5,
                           delay_frames=list(delays), n_frames=n_frames,
                           frame_duration_s=PARAMS.frame_duration_s)

    def test_throughput(self):
        metrics = self._metrics(delivered=200, n_frames=100)
        assert metrics.throughput_packets_per_frame == pytest.approx(2.0)
        assert metrics.throughput_packets_per_second == pytest.approx(800.0)

    def test_delay_conversion(self):
        metrics = self._metrics(delays=(4, 8))
        assert metrics.mean_delay_frames == pytest.approx(6.0)
        assert metrics.mean_delay_s == pytest.approx(0.015)
        assert metrics.p95_delay_s >= metrics.mean_delay_s * 0.9

    def test_qos_check(self):
        metrics = self._metrics(delivered=200, n_frames=100, delays=(4,))
        assert metrics.meets_qos(max_delay_s=1.0, min_throughput_per_user=0.25, n_users=4)
        assert not metrics.meets_qos(max_delay_s=0.001, min_throughput_per_user=0.25, n_users=4)
        assert not metrics.meets_qos(max_delay_s=1.0, min_throughput_per_user=1.0, n_users=4)

    def test_empty_delays(self):
        metrics = self._metrics(delays=())
        assert metrics.mean_delay_s == 0.0
        assert metrics.p95_delay_s == 0.0

    def test_delivery_ratio(self):
        assert self._metrics(delivered=150).delivery_ratio == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            self._metrics(n_frames=-1)
        with pytest.raises(ValueError):
            DataMetrics(1, 1, 0, [], 10, 0.0)


class TestRunningStatistics:
    def test_matches_numpy(self):
        values = np.random.default_rng(0).normal(size=500)
        stats = RunningStatistics()
        stats.update_many(values)
        assert stats.count == 500
        assert stats.mean == pytest.approx(float(np.mean(values)))
        assert stats.std == pytest.approx(float(np.std(values, ddof=1)), rel=1e-9)
        assert stats.minimum == pytest.approx(float(values.min()))
        assert stats.maximum == pytest.approx(float(values.max()))

    def test_empty(self):
        stats = RunningStatistics()
        assert stats.mean == 0.0 and stats.variance == 0.0


class TestBatchMeans:
    def test_constant_series_zero_halfwidth(self):
        mean, half = batch_means_confidence_interval([3.0] * 100, n_batches=10)
        assert mean == pytest.approx(3.0)
        assert half == pytest.approx(0.0)

    def test_mean_recovered(self):
        rng = np.random.default_rng(1)
        data = rng.normal(loc=5.0, size=2000)
        mean, half = batch_means_confidence_interval(data, n_batches=10)
        assert abs(mean - 5.0) < half + 0.2
        assert half > 0.0

    def test_short_series(self):
        mean, half = batch_means_confidence_interval([1.0, 2.0], n_batches=10)
        assert mean == pytest.approx(1.5)
        assert half == 0.0

    def test_empty_series(self):
        assert batch_means_confidence_interval([], 10) == (0.0, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_means_confidence_interval([1.0], n_batches=0)
        with pytest.raises(ValueError):
            batch_means_confidence_interval([1.0], confidence=1.5)


class TestMetricsCollector:
    def _outcome(self, slots=2, queued=1):
        outcome = FrameOutcome(frame_index=0)
        outcome.allocations.append(
            Allocation(terminal_id=0, n_slots=slots, packet_capacity=slots)
        )
        outcome.contention_attempts = 3
        outcome.contention_collisions = 1
        outcome.idle_request_slots = 2
        outcome.queued_requests = queued
        return outcome

    def test_accumulates_frames(self):
        collector = MetricsCollector(PARAMS, info_slots_per_frame=8)
        for _ in range(4):
            collector.record_frame(self._outcome(), data_delivered=3, voice_losses=1)
        stats = collector.mac_stats()
        assert stats.n_frames == 4
        assert stats.allocated_slots == 8
        assert stats.contention_attempts == 12
        assert stats.slot_utilisation == pytest.approx(8 / 32)
        assert stats.mean_queue_length == pytest.approx(1.0)
        assert collector.data_delivered_per_frame == [3, 3, 3, 3]
        assert collector.voice_loss_events_per_frame == [1, 1, 1, 1]

    def test_reset_clears(self):
        collector = MetricsCollector(PARAMS, info_slots_per_frame=8)
        collector.record_frame(self._outcome(), 1, 0)
        collector.reset()
        assert collector.n_frames == 0
        assert collector.mac_stats().allocated_slots == 0

    def test_negative_counters_rejected(self):
        collector = MetricsCollector(PARAMS, info_slots_per_frame=8)
        with pytest.raises(ValueError):
            collector.record_frame(self._outcome(), data_delivered=-1, voice_losses=0)

    def test_terminal_aggregation(self):
        collector = MetricsCollector(PARAMS, info_slots_per_frame=8)
        collector.record_frame(self._outcome(), 0, 0)
        voice = voice_terminal_with_packet(0)
        data = data_terminal_with_packets(1, 2)
        assert collector.voice_metrics([voice, data]).generated == 1
        assert collector.data_metrics([voice, data]).generated == 2
