"""Tests for the CSI-ranked allocator and the CSI polling mechanism."""

import numpy as np
import pytest

from repro.config import SimulationParameters
from repro.core.allocator import CSIRankedAllocator
from repro.core.csi_polling import CSIPoller
from repro.mac.registry import build_modem
from repro.mac.requests import Request
from repro.phy.csi import CSIEstimate, CSIEstimator
from repro.traffic.packets import TrafficKind
from tests.utils import (
    data_terminal_with_packets,
    make_snapshot,
    voice_terminal_with_packet,
)

PARAMS = SimulationParameters()
MODEM = build_modem("charisma", PARAMS)


def allocator(n_slots=4, margin=2):
    return CSIRankedAllocator(MODEM, n_slots, defer_deadline_margin=margin)


def request_for(terminal, csi_amplitude, frame=0, deadline=None):
    return Request(
        terminal_id=terminal.terminal_id,
        kind=terminal.kind,
        arrival_frame=frame,
        desired_packets=max(1, terminal.buffer_occupancy),
        csi=CSIEstimate(amplitude=csi_amplitude, frame_index=frame),
        deadline_frame=deadline,
    )


class TestCSIRankedAllocator:
    def test_voice_gets_one_slot(self):
        terminal = voice_terminal_with_packet(0)
        decision = allocator().allocate(
            [request_for(terminal, 1.0, deadline=8)], {0: terminal},
            make_snapshot([1.0]), 0,
        )
        assert len(decision.allocations) == 1
        assert decision.allocations[0].n_slots == 1

    def test_data_gets_enough_slots_to_drain_buffer(self):
        terminal = data_terminal_with_packets(0, 12)
        decision = allocator(n_slots=8).allocate(
            [request_for(terminal, 1.0)], {0: terminal}, make_snapshot([1.0]), 0
        )
        assert decision.allocations[0].packet_capacity >= 12 or (
            decision.allocations[0].n_slots == 8
        )

    def test_never_exceeds_slot_budget(self):
        terminals = {i: data_terminal_with_packets(i, 100, seed=i) for i in range(6)}
        requests = [request_for(t, 2.0) for t in terminals.values()]
        decision = allocator(n_slots=5).allocate(
            requests, terminals, make_snapshot([2.0] * 6), 0
        )
        assert decision.slots_used <= 5
        assert sum(a.n_slots for a in decision.allocations) == decision.slots_used

    def test_outage_data_request_deferred(self):
        terminal = data_terminal_with_packets(0, 5)
        decision = allocator().allocate(
            [request_for(terminal, 1e-4)], {0: terminal}, make_snapshot([1e-4]), 0
        )
        assert not decision.allocations
        assert decision.deferred and decision.deferred[0].terminal_id == 0

    def test_outage_voice_deferred_until_deadline_near(self):
        terminal = voice_terminal_with_packet(0)
        relaxed = request_for(terminal, 1e-4, deadline=8)
        decision = allocator(margin=2).allocate(
            [relaxed], {0: terminal}, make_snapshot([1e-4]), 0
        )
        assert not decision.allocations and decision.deferred

    def test_outage_voice_served_when_deadline_imminent(self):
        terminal = voice_terminal_with_packet(0)
        urgent = request_for(terminal, 1e-4, deadline=2)
        decision = allocator(margin=2).allocate(
            [urgent], {0: terminal}, make_snapshot([1e-4]), 0
        )
        assert len(decision.allocations) == 1
        # served at the most robust mode
        assert decision.allocations[0].throughput == MODEM.mode_table[0].throughput

    def test_unserved_when_out_of_slots(self):
        terminals = {i: voice_terminal_with_packet(i, seed=i) for i in range(4)}
        requests = [request_for(t, 1.0, deadline=8) for t in terminals.values()]
        decision = allocator(n_slots=2).allocate(
            requests, terminals, make_snapshot([1.0] * 4), 0
        )
        assert len(decision.allocations) == 2
        assert len(decision.unserved) == 2
        assert decision.leftovers == decision.unserved + decision.deferred

    def test_requests_for_empty_terminals_skipped(self):
        terminal = data_terminal_with_packets(0, 0)
        decision = allocator().allocate(
            [request_for(terminal, 1.0)], {0: terminal}, make_snapshot([1.0]), 0
        )
        assert not decision.allocations and not decision.unserved

    def test_missing_csi_treated_conservatively(self):
        terminal = voice_terminal_with_packet(0)
        request = Request(terminal_id=0, kind=TrafficKind.VOICE, arrival_frame=0,
                          deadline_frame=8)
        decision = allocator().allocate([request], {0: terminal}, make_snapshot([1.0]), 0)
        assert len(decision.allocations) == 1
        assert decision.allocations[0].throughput == MODEM.mode_table[0].throughput

    def test_validation(self):
        with pytest.raises(ValueError):
            CSIRankedAllocator(MODEM, 0)
        with pytest.raises(ValueError):
            CSIRankedAllocator(MODEM, 4, defer_deadline_margin=-1)


class TestCSIPoller:
    def _poller(self, slots=2, validity=2):
        estimator = CSIEstimator(validity_frames=validity, perfect=True,
                                 rng=np.random.default_rng(0))
        return CSIPoller(estimator, slots)

    def _stale_request(self, tid, stale_frame=0):
        return Request(
            terminal_id=tid, kind=TrafficKind.DATA, arrival_frame=stale_frame,
            csi=CSIEstimate(amplitude=0.5, frame_index=stale_frame),
        )

    def test_refreshes_stale_estimates(self):
        poller = self._poller(slots=2)
        requests = [self._stale_request(0), self._stale_request(1)]
        snapshot = make_snapshot([2.0, 3.0], frame_index=10)
        refreshed = poller.refresh(requests, snapshot, 10)
        assert refreshed == 2
        assert requests[0].csi.amplitude == pytest.approx(2.0)
        assert requests[1].csi.frame_index == 10

    def test_capacity_limits_refreshes(self):
        poller = self._poller(slots=1)
        requests = [self._stale_request(i) for i in range(4)]
        refreshed = poller.refresh(requests, make_snapshot([1.0] * 4, 10), 10)
        assert refreshed == 1
        assert poller.polls_sent == 1

    def test_fresh_estimates_not_polled(self):
        poller = self._poller(slots=4, validity=4)
        fresh = Request(
            terminal_id=0, kind=TrafficKind.DATA, arrival_frame=9,
            csi=CSIEstimate(amplitude=0.5, frame_index=9, validity_frames=4),
        )
        assert poller.refresh([fresh], make_snapshot([2.0], 10), 10) == 0
        assert fresh.csi.amplitude == 0.5

    def test_priority_key_selects_most_important(self):
        poller = self._poller(slots=1)
        requests = [self._stale_request(0), self._stale_request(1)]
        snapshot = make_snapshot([2.0, 3.0], frame_index=10)
        poller.refresh(requests, snapshot, 10, priority_key=lambda r: r.terminal_id)
        # terminal 1 has the higher key, so it gets the single polling slot
        assert requests[1].csi.frame_index == 10
        assert requests[0].csi.frame_index == 0

    def test_missing_csi_counts_as_stale(self):
        poller = self._poller(slots=1)
        request = Request(terminal_id=0, kind=TrafficKind.DATA, arrival_frame=0)
        assert poller.stale_requests([request], 0) == [request]

    def test_validation(self):
        with pytest.raises(ValueError):
            CSIPoller(CSIEstimator(), 0)
