"""Tests for the CHARISMA priority metric."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import PriorityWeights, SimulationParameters
from repro.core.priority import PriorityCalculator
from repro.mac.registry import build_modem
from repro.mac.requests import Request
from repro.phy.csi import CSIEstimate
from repro.traffic.packets import TrafficKind

PARAMS = SimulationParameters()
MODEM = build_modem("charisma", PARAMS)


def calc(weights=None):
    return PriorityCalculator(weights or PARAMS.priority, MODEM)


def voice_request(csi_amplitude=1.0, deadline_frame=8, arrival=0):
    csi = CSIEstimate(amplitude=csi_amplitude, frame_index=arrival)
    return Request(terminal_id=0, kind=TrafficKind.VOICE, arrival_frame=arrival,
                   csi=csi, deadline_frame=deadline_frame)


def data_request(csi_amplitude=1.0, arrival=0):
    csi = CSIEstimate(amplitude=csi_amplitude, frame_index=arrival)
    return Request(terminal_id=1, kind=TrafficKind.DATA, arrival_frame=arrival, csi=csi)


class TestChannelTerm:
    def test_better_channel_higher_term(self):
        c = calc()
        assert c.channel_term(voice_request(3.0)) > c.channel_term(voice_request(0.3))

    def test_outage_channel_gives_zero(self):
        c = calc()
        assert c.channel_term(voice_request(1e-4)) == 0.0

    def test_missing_csi_gives_zero(self):
        c = calc()
        request = Request(terminal_id=0, kind=TrafficKind.DATA, arrival_frame=0)
        assert c.channel_term(request) == 0.0

    def test_bounded_by_top_mode(self):
        c = calc()
        assert c.channel_term(voice_request(100.0)) <= MODEM.mode_table.max_throughput


class TestUrgencyTerm:
    def test_voice_urgency_grows_towards_deadline(self):
        c = calc()
        request = voice_request(deadline_frame=8)
        early = c.urgency_term(request, current_frame=0)
        late = c.urgency_term(request, current_frame=7)
        assert late > early

    def test_voice_urgency_maximal_at_deadline(self):
        c = calc()
        request = voice_request(deadline_frame=8)
        at_deadline = c.urgency_term(request, current_frame=8)
        assert at_deadline == pytest.approx(PARAMS.priority.urgency_weight_voice)

    def test_data_urgency_grows_with_waiting_time(self):
        c = calc()
        request = data_request(arrival=0)
        assert c.urgency_term(request, 50) > c.urgency_term(request, 1)
        assert c.urgency_term(request, 0) == pytest.approx(0.0)

    def test_data_urgency_bounded(self):
        c = calc()
        request = data_request(arrival=0)
        assert c.urgency_term(request, 10_000) <= PARAMS.priority.urgency_weight_data


class TestPriority:
    def test_voice_outranks_data_at_equal_channel(self):
        c = calc()
        assert c.priority(voice_request(1.0), 0) > c.priority(data_request(1.0), 0)

    def test_good_channel_voice_outranks_bad_channel_voice(self):
        c = calc()
        good = voice_request(3.0, deadline_frame=8)
        bad = voice_request(0.05, deadline_frame=8)
        assert c.priority(good, 0) > c.priority(bad, 0)

    def test_imminent_deadline_overcomes_channel_disadvantage(self):
        """Fairness: a voice request about to expire outranks a fresh one in a
        much better channel."""
        c = calc()
        urgent_bad_channel = voice_request(0.05, deadline_frame=1)
        relaxed_good_channel = voice_request(3.0, deadline_frame=8)
        assert c.priority(urgent_bad_channel, 0) > c.priority(relaxed_good_channel, 0)

    def test_rank_orders_descending(self):
        c = calc()
        requests = [data_request(0.2), voice_request(1.0), data_request(3.0)]
        ranked = c.rank(requests, 0)
        priorities = [c.priority(r, 0) for r in ranked]
        assert priorities == sorted(priorities, reverse=True)
        assert ranked[0].kind.is_voice

    def test_alpha_zero_disables_channel_preference(self):
        weights = PriorityWeights(alpha_voice=0.0, alpha_data=0.0)
        c = calc(weights)
        good = data_request(3.0)
        bad = data_request(0.05)
        assert c.priority(good, 0) == pytest.approx(c.priority(bad, 0))

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=0.01, max_value=5.0),
        st.floats(min_value=0.01, max_value=5.0),
        st.integers(min_value=0, max_value=8),
    )
    def test_priority_monotone_in_channel_quality(self, amp_low, amp_high, frames_left):
        lo, hi = sorted((amp_low, amp_high))
        c = calc()
        request_lo = voice_request(lo, deadline_frame=frames_left)
        request_hi = voice_request(hi, deadline_frame=frames_left)
        assert c.priority(request_hi, 0) >= c.priority(request_lo, 0)


class TestBatchedPriorities:
    """The vectorised path must agree with the scalar term helpers."""

    def test_priorities_match_scalar_term_composition(self):
        c = calc()
        w = PARAMS.priority
        requests = [
            voice_request(3.0, deadline_frame=4),
            voice_request(0.05, deadline_frame=10),
            data_request(2.0, arrival=0),
            data_request(0.4, arrival=3),
            Request(terminal_id=5, kind=TrafficKind.DATA, arrival_frame=0),  # no CSI
        ]
        frame = 6
        batch = c.priorities(requests, frame)
        for request, value in zip(requests, batch):
            channel = c.channel_term(request)
            urgency = c.urgency_term(request, frame)
            if request.kind.is_voice:
                expected = w.alpha_voice * channel + urgency + w.voice_offset
            else:
                expected = w.alpha_data * channel + urgency
            assert value == pytest.approx(expected, rel=1e-12)
            assert c.priority(request, frame) == value

    def test_rank_matches_sort_by_priority(self):
        c = calc()
        requests = [voice_request(a, deadline_frame=8 + i)
                    for i, a in enumerate((0.2, 3.0, 1.0))]
        requests += [data_request(a, arrival=i) for i, a in enumerate((0.5, 2.5))]
        ranked = c.rank(requests, current_frame=5)
        values = [c.priority(r, 5) for r in ranked]
        assert values == sorted(values, reverse=True)
        assert sorted(map(id, ranked)) == sorted(map(id, requests))

    def test_priorities_empty(self):
        assert calc().priorities([], 0).shape == (0,)
