"""Frame-level behavioural tests of the CHARISMA protocol."""

import numpy as np
import pytest

from repro.core.charisma import CharismaProtocol
from repro.mac.registry import build_modem, create_protocol
from repro.phy.csi import CSIEstimator
from repro.phy.fixed import FixedRateModem
from tests.utils import (
    PARAMS,
    data_terminal_with_packets,
    make_snapshot,
    population_snapshot,
    voice_terminal_with_packet,
)

EAGER = PARAMS.with_overrides(
    voice_permission_probability=1.0, data_permission_probability=1.0
)


def charisma(use_queue=False, params=EAGER, seed=0, **kwargs):
    modem = build_modem("charisma", params)
    return CharismaProtocol(
        params, modem, np.random.default_rng(seed),
        use_request_queue=use_queue,
        csi_estimator=CSIEstimator(perfect=True, rng=np.random.default_rng(seed)),
        **kwargs,
    )


class TestConstruction:
    def test_requires_adaptive_phy(self):
        with pytest.raises(ValueError):
            CharismaProtocol(EAGER, FixedRateModem(), np.random.default_rng(0))

    def test_registry_builds_charisma(self):
        protocol = create_protocol("charisma", EAGER, np.random.default_rng(0))
        assert isinstance(protocol, CharismaProtocol)
        assert protocol.uses_csi_scheduling

    def test_frame_structure_has_pilot_subframe(self):
        assert charisma().frame_structure.pilot_minislots == EAGER.n_pilot_slots


class TestRequestAndAllocation:
    def test_single_voice_request_served_and_reserved(self):
        protocol = charisma()
        terminal = voice_terminal_with_packet(0, params=EAGER)
        outcome = protocol.run_frame(0, [terminal], population_snapshot([terminal], 1.0))
        assert outcome.n_successful_requests == 1
        assert len(outcome.allocations) == 1
        assert protocol.reservations.has(0)

    def test_good_channel_user_preferred_over_deep_fade_user(self):
        """The CSI-dependent scheduling: with one slot and two pending data
        requests, the good-channel user gets it and the faded user waits."""
        params = EAGER.with_overrides(n_info_slots=1)
        protocol = charisma(params=params, use_queue=True)
        good = data_terminal_with_packets(0, 3, params=params)
        faded = data_terminal_with_packets(1, 3, params=params, seed=1)
        # Both requests already survived contention in an earlier frame.
        protocol.request_queue.push(protocol.make_request(faded, 0))
        protocol.request_queue.push(protocol.make_request(good, 0))
        snapshot = make_snapshot([2.5, 0.02], frame_index=1)
        outcome = protocol.run_frame(1, [good, faded], snapshot)
        allocated = {a.terminal_id for a in outcome.allocations}
        assert allocated == {0}

    def test_deep_fade_voice_deferred_not_transmitted(self):
        """A reserved voice user in outage with frames to spare is deferred."""
        protocol = charisma()
        terminal = voice_terminal_with_packet(0, params=EAGER)
        protocol.reservations.grant(0, 0)
        snapshot = make_snapshot([1e-4])
        outcome = protocol.run_frame(0, [terminal], snapshot)
        assert outcome.allocations == []

    def test_deep_fade_voice_served_near_deadline(self):
        protocol = charisma()
        frame = 6  # packet created at frame 0 expires at frame 8
        terminal = voice_terminal_with_packet(0, frame=0, params=EAGER)
        protocol.reservations.grant(0, 0)
        snapshot = make_snapshot([1e-4], frame_index=frame)
        outcome = protocol.run_frame(frame, [terminal], snapshot)
        assert len(outcome.allocations) == 1

    def test_slot_budget_never_exceeded(self):
        protocol = charisma()
        terminals = [data_terminal_with_packets(i, 50, params=EAGER, seed=i)
                     for i in range(12)]
        outcome = protocol.run_frame(
            0, terminals, population_snapshot(terminals, 1.5)
        )
        assert outcome.n_allocated_slots <= protocol.frame_structure.info_slots

    def test_adaptive_capacity_announced(self):
        protocol = charisma()
        terminal = data_terminal_with_packets(0, 50, params=EAGER)
        outcome = protocol.run_frame(0, [terminal], population_snapshot([terminal], 3.0))
        assert outcome.allocations[0].packet_capacity > outcome.allocations[0].n_slots


class TestRequestQueueBehaviour:
    def test_unserved_requests_queued(self):
        params = EAGER.with_overrides(n_info_slots=1)
        protocol = charisma(use_queue=True, params=params)
        terminals = [data_terminal_with_packets(i, 10, params=params, seed=i)
                     for i in range(2)]
        # Only one can win contention per minislot with p=1? Two contenders
        # always collide; grant one a queued request directly instead.
        protocol.request_queue.push(protocol.make_request(terminals[1], 0))
        reserved_voice = voice_terminal_with_packet(2, params=params)
        protocol.reservations.grant(2, 0)
        snapshot = make_snapshot([1.0, 1.0, 1.0])
        outcome = protocol.run_frame(0, terminals + [reserved_voice], snapshot)
        # the single slot goes to the (higher priority) voice reservation; the
        # queued data request stays queued
        assert outcome.queued_requests >= 1

    def test_queued_terminal_does_not_recontend(self):
        protocol = charisma(use_queue=True)
        terminal = data_terminal_with_packets(0, 10, params=EAGER)
        protocol.request_queue.push(protocol.make_request(terminal, 0))
        assert protocol.contention_candidates([terminal]) == []

    def test_without_queue_leftovers_are_dropped(self):
        params = EAGER.with_overrides(n_info_slots=1)
        protocol = charisma(use_queue=False, params=params)
        assert protocol.request_queue is None
        terminals = [data_terminal_with_packets(i, 10, params=params, seed=i)
                     for i in range(1)]
        outcome = protocol.run_frame(0, terminals, population_snapshot(terminals, 1.0))
        assert outcome.queued_requests == 0

    def test_queue_pruned_of_empty_terminals(self):
        protocol = charisma(use_queue=True)
        terminal = data_terminal_with_packets(0, 0, params=EAGER)
        request = protocol.make_request(terminal, 0)
        protocol.request_queue.push(request)
        protocol.run_frame(1, [terminal], population_snapshot([terminal], 1.0))
        assert not protocol.request_queue.contains_terminal(0)


class TestReservationLifecycle:
    def test_reservation_released_after_talkspurt(self):
        protocol = charisma()
        terminal = voice_terminal_with_packet(0, params=EAGER, in_talkspurt=False)
        terminal._buffer.clear()
        protocol.reservations.grant(0, 0)
        protocol.run_frame(1, [terminal], population_snapshot([terminal], 1.0))
        assert not protocol.reservations.has(0)

    def test_reserved_voice_served_every_frame_it_has_packets(self):
        protocol = charisma()
        terminal = voice_terminal_with_packet(0, params=EAGER)
        protocol.reservations.grant(0, 0)
        outcome = protocol.run_frame(0, [terminal], population_snapshot([terminal], 1.5))
        assert len(outcome.allocations) == 1
        assert outcome.contention_attempts == 0


class TestCSIPollingIntegration:
    def test_polling_refreshes_backlog_before_allocation(self):
        params = EAGER.with_overrides(n_info_slots=1)
        protocol = charisma(use_queue=True, params=params)
        terminal = data_terminal_with_packets(0, 10, params=params)
        stale = protocol.make_request(terminal, 0)
        stale.csi = protocol.csi_estimator.estimate(0.01, 0)  # stale, bad estimate
        protocol.request_queue.push(stale)
        # several frames later the channel is excellent; polling must notice
        snapshot = make_snapshot([3.0], frame_index=5)
        outcome = protocol.run_frame(5, [terminal], snapshot)
        assert len(outcome.allocations) == 1
        assert outcome.allocations[0].packet_capacity >= 5

    def test_polling_can_be_disabled(self):
        protocol = charisma(use_queue=True, enable_csi_polling=False)
        assert protocol.enable_csi_polling is False
