"""Tests for the SQLite lease-based WorkService."""

import time

import pytest

from repro.api import ExperimentSpec, SweepAxis
from repro.config import SimulationParameters
from repro.fleet import (
    WorkService,
    params_to_payload,
    payload_to_params,
    payload_to_point,
    point_to_payload,
)
from repro.sim.scenario import Scenario

PARAMS = SimulationParameters()
BASE = Scenario(protocol="charisma", n_voice=0, n_data=1,
                duration_s=0.3, warmup_s=0.1)


def spec():
    return ExperimentSpec(
        protocols=("charisma", "rama"),
        base_scenario=BASE,
        axes=(SweepAxis("n_voice", (2, 4)),),
        params=PARAMS,
        seeds=(0,),
        name="fleet-service",
    )


@pytest.fixture()
def points():
    return spec().expand()


@pytest.fixture()
def service(tmp_path):
    service = WorkService(tmp_path / "fleet.db", lease_ttl_s=0.2,
                          max_attempts=3)
    yield service
    service.close()


class TestSerialization:
    def test_point_payload_round_trip_preserves_run_hash(self, points):
        for point in points:
            rebuilt = payload_to_point(point_to_payload(point))
            assert rebuilt == point
            assert rebuilt.run_hash() == point.run_hash()

    def test_params_payload_round_trip(self):
        rebuilt = payload_to_params(params_to_payload(PARAMS))
        assert rebuilt == PARAMS


class TestQueueLifecycle:
    def test_enqueue_is_idempotent(self, service, points):
        assert service.enqueue(points) == len(points)
        assert service.enqueue(points) == 0
        assert service.counts()["pending"] == len(points)

    def test_claim_walks_positions_in_order(self, service, points):
        service.enqueue(points)
        first = service.claim("w1")
        second = service.claim("w2")
        assert (first.position, second.position) == (0, 1)
        assert first.attempts == 1
        assert service.counts()["leased"] == 2

    def test_complete_requires_the_lease(self, service, points):
        service.enqueue(points)
        item = service.claim("w1")
        run_hash = item.point.run_hash()
        assert service.complete("thief", run_hash, executed=True) is False
        assert service.complete("w1", run_hash, executed=True) is True
        counts = service.counts()
        assert counts["done"] == 1
        assert counts["executions"] == 1
        assert counts["completions"] == 1

    def test_dedup_completion_counts_no_execution(self, service, points):
        service.enqueue(points)
        item = service.claim("w1")
        service.complete("w1", item.point.run_hash(), executed=False)
        counts = service.counts()
        assert counts["completions"] == 1
        assert counts["executions"] == 0

    def test_fail_parks_the_point(self, service, points):
        service.enqueue(points)
        item = service.claim("w1")
        run_hash = item.point.run_hash()
        assert service.fail("w1", run_hash, "ValueError: poison") is True
        rows = service.failed_rows()
        assert [(r[1], r[2]) for r in rows] == [(run_hash,
                                                 "ValueError: poison")]
        assert service.unfinished() == len(points) - 1

    def test_claim_exhaustion_returns_none(self, service, points):
        service.enqueue(points)
        claimed = [service.claim(f"w{i}") for i in range(len(points) + 1)]
        assert claimed[-1] is None
        assert all(item is not None for item in claimed[:-1])


class TestLeases:
    def test_heartbeat_extends_the_lease(self, service, points):
        service.enqueue(points)
        item = service.claim("w1")
        run_hash = item.point.run_hash()
        for _ in range(4):
            time.sleep(0.1)
            assert service.heartbeat("w1", run_hash,
                                     {"status": "computing"}) is True
            assert service.reap() == 0
        # well past the 0.2 s TTL, still leased thanks to the beats
        assert service.counts()["leased"] == 1
        snapshot = {row["run_hash"]: row for row in service.snapshot()}
        assert snapshot[run_hash]["heartbeat"] == {"status": "computing"}

    def test_expired_lease_is_reclaimed(self, service, points):
        service.enqueue(points)
        item = service.claim("w1")
        time.sleep(0.3)  # past the TTL with no heartbeat
        assert service.reap() == 1
        assert service.counts()["leased"] == 0
        # the point is claimable again, with the attempt recorded
        again = service.claim("w2")
        assert again.point.run_hash() == item.point.run_hash()
        assert again.attempts == 2

    def test_lost_lease_heartbeat_returns_false(self, service, points):
        service.enqueue(points)
        item = service.claim("w1")
        time.sleep(0.3)
        service.reap()
        assert service.heartbeat("w1", item.point.run_hash(), None) is False

    def test_poison_point_parks_after_max_attempts(self, service, points):
        service.enqueue(points)
        run_hash = None
        for _ in range(service.max_attempts):
            item = service.claim("w1")
            run_hash = item.point.run_hash()
            time.sleep(0.3)  # die without completing, every time
            service.reap()
        # attempts exhausted: parked as failed, not re-queued
        rows = service.failed_rows()
        assert [r[1] for r in rows] == [run_hash]
        assert "lease expired" in rows[0][2]
        assert service.claim("w1").point.run_hash() != run_hash

    def test_reap_emits_lease_metrics(self, service, points):
        from repro.obs import metrics as _metrics

        service.enqueue(points)
        with _metrics.recording() as registry:
            service.claim("w1")
            time.sleep(0.3)
            service.reap()
        counters = registry.snapshot()["counters"]
        assert counters["lease.expired"] == 1
        assert counters["lease.reclaimed"] == 1


class TestMeta:
    def test_meta_round_trip(self, service):
        service.set_meta("params", params_to_payload(PARAMS))
        assert payload_to_params(service.get_meta("params")) == PARAMS
        assert service.get_meta("absent") is None

    def test_counts_and_repr_on_empty_queue(self, service):
        counts = service.counts()
        assert counts["total"] == 0
        assert "pending=0" in repr(service)
