"""Fleet end-to-end: multi-process runs, SIGKILL survival, degradation.

The PR's second acceptance criterion lives here: a fleet of two workers,
one of which is SIGKILLed mid-grid, must still finish the run through
lease reclamation — with zero lost points and zero duplicated executions —
and match the serial run byte for byte.
"""

import os
import signal
import time

import pytest

from repro.api import ExperimentSpec, SerialExecutor, SweepAxis, run
from repro.config import SimulationParameters
from repro.fleet import FleetError, FleetWorker, WorkService, run_fleet, spawn_worker
from repro.fleet.service import params_to_payload
from repro.sim.scenario import Scenario
from repro.store import ResultStore

PARAMS = SimulationParameters()
BASE = Scenario(protocol="charisma", n_voice=0, n_data=1,
                duration_s=0.3, warmup_s=0.1)


def fleet_spec():
    return ExperimentSpec(
        protocols=("charisma", "rama"),
        base_scenario=BASE,
        axes=(SweepAxis("n_voice", (2, 4)),),
        params=PARAMS,
        seeds=(0, 1),
        name="fleet-acceptance",
    )


def serial_reference(spec):
    return run(spec, executor=SerialExecutor()).to_records()


class TestRunFleet:
    def test_two_workers_match_serial_byte_for_byte(self, tmp_path):
        spec = fleet_spec()
        results = run_fleet(spec, tmp_path / "store", n_workers=2,
                            lease_ttl_s=5.0, deadline_s=120.0)
        assert not results.errors()
        assert results.to_records() == serial_reference(spec)
        # zero duplicated executions: every point simulated exactly once
        service = WorkService(tmp_path / "store" / "fleet.db")
        counts = service.counts()
        service.close()
        assert counts["done"] == spec.n_runs
        assert counts["executions"] == spec.n_runs
        assert counts["completions"] == spec.n_runs

    def test_rerun_resumes_from_the_store_without_simulating(self, tmp_path):
        spec = fleet_spec()
        run_fleet(spec, tmp_path / "store", n_workers=2,
                  lease_ttl_s=5.0, deadline_s=120.0)
        again = run_fleet(spec, tmp_path / "store", n_workers=1,
                          db_path=tmp_path / "second.db",
                          lease_ttl_s=5.0, deadline_s=120.0)
        assert again.to_records() == serial_reference(spec)
        service = WorkService(tmp_path / "second.db")
        counts = service.counts()
        service.close()
        # all completions were store-dedupe hits — nothing re-simulated
        assert counts["completions"] == spec.n_runs
        assert counts["executions"] == 0

    def test_failed_points_become_error_records(self, tmp_path):
        spec = fleet_spec()
        victim = spec.expand()[1].run_hash()
        results = run_fleet(
            spec, tmp_path / "store", n_workers=1,
            lease_ttl_s=5.0, deadline_s=120.0,
            faults=f"crash_points={victim},crash_point_attempts=99",
        )
        errors = results.errors()
        assert [e.run_hash for e in errors] == [victim]
        assert errors[0].error_type == "InjectedFault"
        assert len(results.completed()) == spec.n_runs - 1

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            run_fleet(fleet_spec(), tmp_path / "store", n_workers=0)

    def test_deadline_raises_fleet_error(self, tmp_path):
        spec = fleet_spec()
        # hang every point attempt far past the driver's deadline
        with pytest.raises(FleetError, match="did not finish"):
            run_fleet(spec, tmp_path / "store", n_workers=1,
                      lease_ttl_s=0.5, deadline_s=0.6, poll_s=0.05,
                      faults="hang_every=1,hang_s=30")


class TestWorkerLoop:
    def test_in_process_worker_drains_the_queue(self, tmp_path):
        spec = fleet_spec()
        service = WorkService(tmp_path / "fleet.db", lease_ttl_s=5.0)
        service.set_meta("params", params_to_payload(spec.params))
        service.enqueue(spec.expand())
        store = ResultStore(tmp_path / "store")
        worker = FleetWorker(service, store, worker_id="solo")
        assert worker.run() == spec.n_runs
        assert worker.dedup_hits == 0
        assert service.counts()["done"] == spec.n_runs
        service.close()

    def test_prefilled_store_dedupes_without_simulating(self, tmp_path):
        spec = fleet_spec()
        points = spec.expand()
        store = ResultStore(tmp_path / "store")
        # one point's result is already paid for (an earlier run)
        done = points[0]
        result = run(spec, executor=SerialExecutor())[0].result
        store.put(done.run_hash(), result, coords=done.coords_dict())

        service = WorkService(tmp_path / "fleet.db", lease_ttl_s=5.0)
        service.set_meta("params", params_to_payload(spec.params))
        service.enqueue(points)
        worker = FleetWorker(service, store, worker_id="solo")
        assert worker.run() == spec.n_runs
        assert worker.dedup_hits == 1
        counts = service.counts()
        assert counts["executions"] == spec.n_runs - 1
        assert counts["completions"] == spec.n_runs
        service.close()


class TestSigkillSurvival:
    """Acceptance: one of two workers SIGKILLed mid-grid; the fleet still
    finishes with zero lost and zero duplicated points."""

    def test_sigkill_mid_grid_zero_lost_zero_duplicated(self, tmp_path):
        spec = fleet_spec()
        points = spec.expand()
        reference = serial_reference(spec)

        db_path = tmp_path / "fleet.db"
        store_path = tmp_path / "store"
        lease_ttl_s = 2.0
        service = WorkService(db_path, lease_ttl_s=lease_ttl_s,
                              max_attempts=10)
        service.set_meta("spec_hash", spec.spec_hash())
        service.set_meta("params", params_to_payload(spec.params))
        service.enqueue(points)

        victim = spawn_worker(db_path, store_path, worker_id="victim",
                              lease_ttl_s=lease_ttl_s)
        survivor = spawn_worker(db_path, store_path, worker_id="survivor",
                                lease_ttl_s=lease_ttl_s)
        try:
            # Wait until the victim actually holds a lease, then SIGKILL it
            # mid-point: the harshest crash there is — no cleanup, no
            # release, just a dangling lease.
            deadline = time.time() + 60.0
            while time.time() < deadline:
                leased = [row for row in service.snapshot()
                          if row["state"] == "leased"
                          and row["owner"] == "victim"]
                if leased:
                    break
                time.sleep(0.02)
            assert leased, "victim never claimed a point"
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10.0)
            assert not victim.is_alive()

            # The survivor (plus reaping) must finish the whole grid.
            deadline = time.time() + 120.0
            while service.unfinished() > 0:
                assert time.time() < deadline, service.counts()
                service.reap()
                if not survivor.is_alive() and service.unfinished() > 0:
                    survivor = spawn_worker(db_path, store_path,
                                            worker_id="respawn",
                                            lease_ttl_s=lease_ttl_s)
                time.sleep(0.05)
            survivor.join(timeout=10.0)
        finally:
            for process in (victim, survivor):
                if process.is_alive():
                    process.terminate()

        counts = service.counts()
        # zero lost: every point finished; none parked as failed
        assert counts["done"] == spec.n_runs
        assert counts["failed"] == 0
        # zero duplicated: each point's result was computed exactly once
        # (the victim died mid-execution, so its in-flight point was
        # re-executed by the survivor — but never *also* completed by the
        # victim) and completed exactly once.
        assert counts["completions"] == spec.n_runs
        assert counts["executions"] == spec.n_runs
        service.close()

        # and the reclaimed run is bit-identical to the serial one
        store = ResultStore(store_path)
        from repro.api.resultset import ResultSet, RunRecord

        records = []
        for point in points:
            result = store.get(point.run_hash())
            assert result is not None, "a point's result went missing"
            records.append(RunRecord(point=point, result=result))
        assert ResultSet(records,
                         name=spec.name).to_records() == reference
