"""Tests for the work-stealing scheduler and the AsyncExecutor."""

import pytest

from repro.api import ExperimentSpec, SerialExecutor, SweepAxis, run
from repro.config import SimulationParameters
from repro.sim.scenario import Scenario
from repro.store import AsyncExecutor, ExecutionCancelled, WorkStealingScheduler

PARAMS = SimulationParameters()
BASE = Scenario(protocol="charisma", n_voice=0, n_data=1,
                duration_s=0.4, warmup_s=0.2)


def _small_spec():
    return ExperimentSpec(
        protocols=("charisma", "dtdma_fr"),
        base_scenario=BASE,
        axes=(SweepAxis("n_voice", (2, 4)),),
        params=PARAMS,
        seeds=(0, 1),
    )


def _heterogeneous_spec():
    """Point costs vary by an order of magnitude across the axis."""
    return ExperimentSpec(
        protocols=("charisma",),
        base_scenario=BASE,
        axes=(SweepAxis("n_voice", (1, 2, 3, 30)),),
        params=PARAMS,
        seeds=(0,),
    )


class TestWorkStealingScheduler:
    def test_every_task_dispatched_exactly_once(self):
        tasks = [(f"t{i}", float(i + 1)) for i in range(10)]
        scheduler = WorkStealingScheduler(3, tasks)
        seen = []
        turn = 0
        while True:
            # next_for returns None only once the whole grid is drained
            # (an idle worker steals before giving up).
            task = scheduler.next_for(turn % 3)
            turn += 1
            if task is None:
                break
            seen.append(task)
        assert sorted(seen) == sorted(t for t, _ in tasks)
        assert scheduler.dispatched == 10
        assert len(scheduler) == 0

    def test_lpt_assignment_balances_costs(self):
        # Two workers, costs {8, 7, 3, 2}: LPT puts 8+2 and 7+3 together.
        scheduler = WorkStealingScheduler(2, [("a", 8), ("b", 7), ("c", 3), ("d", 2)])
        loads = [scheduler.remaining_load(w) for w in range(2)]
        assert sorted(loads) == [10.0, 10.0]

    def test_owner_consumes_most_expensive_first(self):
        scheduler = WorkStealingScheduler(1, [("cheap", 1), ("dear", 9), ("mid", 5)])
        order = [scheduler.next_for(0) for _ in range(3)]
        assert order == ["dear", "mid", "cheap"]

    def test_idle_worker_steals_from_loaded_victim(self):
        scheduler = WorkStealingScheduler(2, [("a", 8), ("b", 7), ("c", 3), ("d", 2)])
        # Worker 0 drains everything: two of the four must be steals.
        drained = []
        while True:
            task = scheduler.next_for(0)
            if task is None:
                break
            drained.append(task)
        assert len(drained) == 4
        assert scheduler.steals == 2
        # Worker 1 then finds nothing.
        assert scheduler.next_for(1) is None

    def test_thief_takes_cheapest_from_victim_tail(self):
        scheduler = WorkStealingScheduler(2, [("a", 8), ("b", 7), ("c", 3), ("d", 2)])
        first_steal = None
        scheduler.next_for(0)  # own front
        scheduler.next_for(0)  # own tail
        first_steal = scheduler.next_for(0)  # must come from worker 1's tail
        assert first_steal in ("c", "d")  # the cheap end, not the 7-cost front

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkStealingScheduler(0, [])
        scheduler = WorkStealingScheduler(1, [])
        with pytest.raises(ValueError):
            scheduler.next_for(5)


class TestAsyncExecutor:
    def test_matches_serial_byte_for_byte(self):
        spec = _small_spec()
        serial = run(spec, executor=SerialExecutor())
        fanned = run(spec, executor=AsyncExecutor(n_workers=2))
        assert fanned.to_records() == serial.to_records()

    def test_heterogeneous_grid_matches_serial(self):
        spec = _heterogeneous_spec()
        serial = run(spec, executor=SerialExecutor())
        fanned = run(spec, executor=AsyncExecutor(n_workers=2))
        assert fanned.to_records() == serial.to_records()

    def test_progress_counts_every_point(self):
        spec = _small_spec()
        calls = []
        run(spec, executor=AsyncExecutor(n_workers=2),
            progress=lambda done, total: calls.append((done, total)))
        assert [c[0] for c in calls] == list(range(1, spec.n_runs + 1))
        assert all(total == spec.n_runs for _, total in calls)

    def test_single_worker_path_matches_serial(self):
        spec = _small_spec()
        serial = run(spec, executor=SerialExecutor())
        single = run(spec, executor=AsyncExecutor(n_workers=1))
        assert single.to_records() == serial.to_records()

    def test_cancellation_keeps_partial_results(self):
        spec = _small_spec()
        executor = AsyncExecutor(n_workers=1)
        seen = []

        def sink(position, point, result):
            seen.append(position)
            if len(seen) == 3:
                executor.cancel()

        with pytest.raises(ExecutionCancelled) as excinfo:
            executor.execute_with_sink(spec.expand(), spec.params, sink=sink)
        assert excinfo.value.completed == 3
        assert excinfo.value.total == spec.n_runs
        assert sum(r is not None for r in excinfo.value.results) == 3
        assert executor.cancelled

    def test_validation(self):
        with pytest.raises(ValueError):
            AsyncExecutor(n_workers=0)


class TestCancellationFinalization:
    """A cancelled grid must deliver its final progress state and flush the
    trace sink *before* ExecutionCancelled propagates (satellite of the
    observability PR: a --trace file and a progress bar must both end in a
    consistent state even on cancellation)."""

    def test_pre_cancelled_serial_run_reports_zero_progress(self):
        import threading

        spec = _small_spec()
        event = threading.Event()
        event.set()
        executor = AsyncExecutor(n_workers=1, cancel_event=event)
        calls = []
        with pytest.raises(ExecutionCancelled) as excinfo:
            executor.execute_with_sink(
                spec.expand(), spec.params,
                progress=lambda done, total: calls.append((done, total)),
            )
        assert excinfo.value.completed == 0
        assert calls == [(0, spec.n_runs)]

    def test_sink_cancellation_delivers_final_progress(self):
        spec = _small_spec()
        executor = AsyncExecutor(n_workers=1)
        calls = []

        def sink(position, point, result):
            if len(calls) == 2:
                executor.cancel()

        with pytest.raises(ExecutionCancelled) as excinfo:
            executor.execute_with_sink(
                spec.expand(), spec.params,
                progress=lambda done, total: calls.append((done, total)),
                sink=sink,
            )
        completed = excinfo.value.completed
        # The very last progress call re-states the definitive (done, total).
        assert calls[-1] == (completed, spec.n_runs)

    def test_worker_exception_recorded_with_final_progress(self):
        """Regression (fault-tolerance PR): a raising point must not strand
        the grid — the failure lands in ``last_errors``, surviving points
        drain, the final progress state is delivered, and the original
        exception type re-raises only after the wind-down."""
        from repro.faults import FaultPlan, InjectedFault, injecting

        spec = _small_spec()
        executor = AsyncExecutor(n_workers=1)
        calls = []
        delivered = []
        with injecting(FaultPlan(crash_every=3)):
            with pytest.raises(InjectedFault):
                executor.execute_with_sink(
                    spec.expand(), spec.params,
                    progress=lambda done, total: calls.append((done, total)),
                    sink=lambda p, pt, r: delivered.append(p),
                )
        n_failed = len(executor.last_errors)
        assert n_failed == spec.n_runs // 3
        assert all(isinstance(e, InjectedFault)
                   for _, e in executor.last_errors)
        # the survivors all executed and reached the sink
        assert len(delivered) == spec.n_runs - n_failed
        # the very last progress call states the definitive (done, total)
        assert calls[-1] == (spec.n_runs - n_failed, spec.n_runs)

    def test_worker_exception_recorded_on_pool_path(self):
        from repro.faults import FaultPlan, InjectedFault, injecting

        spec = _small_spec()
        executor = AsyncExecutor(n_workers=2)
        delivered = []
        with injecting(FaultPlan(crash_points=(
            spec.expand()[0].run_hash(),
        ), crash_point_attempts=99)):
            with pytest.raises(InjectedFault):
                executor.execute_with_sink(
                    spec.expand(), spec.params,
                    sink=lambda p, pt, r: delivered.append(p),
                )
        assert [p for p, _ in executor.last_errors] == [0]
        assert len(delivered) == spec.n_runs - 1

    def test_worker_errors_counted_in_metrics(self):
        from repro.faults import FaultPlan, injecting
        from repro.obs import metrics as _metrics

        spec = _small_spec()
        executor = AsyncExecutor(n_workers=1)
        with _metrics.recording() as registry:
            with injecting(FaultPlan(crash_every=4)):
                with pytest.raises(Exception):
                    executor.execute_with_sink(spec.expand(), spec.params)
        counters = registry.snapshot()["counters"]
        assert counters["executor.worker_errors"] == spec.n_runs // 4

    def test_retry_policy_recovers_injected_crashes(self):
        from repro.faults import FaultPlan, RetryPolicy, injecting

        spec = _small_spec()
        serial = run(spec, executor=SerialExecutor())
        executor = AsyncExecutor(n_workers=2)
        with injecting(FaultPlan(crash_every=2, seed=3)):
            fanned = run(spec, executor=executor,
                         retry=RetryPolicy(max_attempts=4))
        assert not executor.last_errors
        assert fanned.to_records() == serial.to_records()

    def test_cancellation_flushes_the_installed_tracer(self):
        from repro.obs.trace import (
            ListTraceSink, install_tracer, uninstall_tracer,
        )

        spec = _small_spec()
        executor = AsyncExecutor(n_workers=1)
        sink = ListTraceSink()
        install_tracer(sink)
        try:
            def cancel_after_one(position, point, result):
                executor.cancel()

            with pytest.raises(ExecutionCancelled):
                executor.execute_with_sink(
                    spec.expand(), spec.params, sink=cancel_after_one,
                )
            assert sink.flushes >= 1
            assert any(
                r.get("name") == "point.run" for r in sink.records
            )
        finally:
            uninstall_tracer()
