"""Tests for CachingExecutor: hit/miss parity, resumability, facade wiring."""

import pytest

from repro.api import (
    ExperimentSpec,
    ParallelExecutor,
    SerialExecutor,
    SweepAxis,
    run,
)
from repro.config import SimulationParameters
from repro.sim.scenario import Scenario
from repro.store import AsyncExecutor, CachingExecutor, ResultStore

PARAMS = SimulationParameters()
BASE = Scenario(protocol="charisma", n_voice=0, n_data=1,
                duration_s=0.4, warmup_s=0.2)


def _spec():
    return ExperimentSpec(
        protocols=("charisma", "dtdma_fr"),
        base_scenario=BASE,
        axes=(SweepAxis("n_voice", (2, 4)),),
        params=PARAMS,
        seeds=(0, 1),
        name="caching-test",
    )


class CountingExecutor:
    """Serial executor that records how many points it was asked to run."""

    def __init__(self):
        self.calls = 0
        self.points_executed = 0
        self._inner = SerialExecutor()

    def execute(self, points, params, progress=None):
        return self.execute_with_sink(points, params, progress)

    def execute_with_sink(self, points, params, progress=None, sink=None):
        self.calls += 1
        self.points_executed += len(points)
        return self._inner.execute_with_sink(points, params, progress, sink)


class InterruptedError_(RuntimeError):
    pass


class DyingExecutor(CountingExecutor):
    """Simulates a kill: dies after ``die_after`` completed points."""

    def __init__(self, die_after):
        super().__init__()
        self.die_after = die_after

    def execute_with_sink(self, points, params, progress=None, sink=None):
        self.calls += 1
        completed = 0

        def counting_sink(position, point, result):
            nonlocal completed
            if sink is not None:
                sink(position, point, result)
            completed += 1
            if completed >= self.die_after:
                raise InterruptedError_("killed mid-sweep")

        return self._inner.execute_with_sink(
            points, params, progress, counting_sink
        )


class TestCacheHitMissParity:
    def test_identical_spec_executes_zero_simulations(self, tmp_path):
        """Acceptance: a re-run with cache_dir set is 100% cache hits."""
        spec = _spec()
        store = ResultStore(tmp_path / "cache")

        cold_inner = CountingExecutor()
        cold = CachingExecutor(store, cold_inner)
        cold_results = run(spec, executor=cold)
        assert cold_inner.points_executed == spec.n_runs
        assert (cold.hits, cold.misses) == (0, spec.n_runs)

        warm_inner = CountingExecutor()
        warm = CachingExecutor(store, warm_inner)
        warm_results = run(spec, executor=warm)
        assert warm_inner.calls == 0            # inner executor never invoked
        assert warm_inner.points_executed == 0  # zero simulations executed
        assert (warm.hits, warm.misses) == (spec.n_runs, 0)
        assert warm_results.to_records() == cold_results.to_records()

    def test_serial_cached_and_work_stealing_agree(self, tmp_path):
        spec = _spec()
        serial = run(spec, executor=SerialExecutor())
        cached = run(spec, cache_dir=str(tmp_path / "c1"))
        stealing = run(spec, executor=AsyncExecutor(n_workers=2))
        cached_stealing = run(
            spec,
            executor=CachingExecutor(ResultStore(tmp_path / "c2"),
                                     AsyncExecutor(n_workers=2)),
        )
        reference = serial.to_records()
        assert cached.to_records() == reference
        assert stealing.to_records() == reference
        assert cached_stealing.to_records() == reference

    def test_parallel_inner_persists_incrementally(self, tmp_path):
        spec = _spec()
        store = ResultStore(tmp_path / "cache")
        caching = CachingExecutor(
            store, ParallelExecutor(n_workers=2, chunk_size=2)
        )
        results = run(spec, executor=caching)
        assert caching.misses == spec.n_runs
        assert len(store) == spec.n_runs
        again = CachingExecutor(store, SerialExecutor())
        assert run(spec, executor=again).to_records() == results.to_records()
        assert again.misses == 0

    def test_sink_fires_for_hits_and_misses(self, tmp_path):
        # The sink contract is "once per available result": layered caches
        # (an outer CachingExecutor around a warm inner one) break if hits
        # are silent.
        spec = _spec()
        store = ResultStore(tmp_path / "inner")
        run(spec, executor=CachingExecutor(store, SerialExecutor()))  # warm

        seen = []
        warm = CachingExecutor(store, SerialExecutor())
        warm.execute_with_sink(
            spec.expand(), spec.params,
            sink=lambda pos, point, result: seen.append(pos),
        )
        assert sorted(seen) == list(range(spec.n_runs))

        outer = CachingExecutor(ResultStore(tmp_path / "outer"),
                                CachingExecutor(store, SerialExecutor()))
        results = run(spec, executor=outer)
        assert outer.misses == spec.n_runs  # outer store was cold...
        assert results.to_records() == \
            run(spec, executor=SerialExecutor()).to_records()
        rewarmed = CachingExecutor(ResultStore(tmp_path / "outer"),
                                   SerialExecutor())
        run(spec, executor=rewarmed)        # ...and is now fully populated
        assert rewarmed.hits == spec.n_runs

    def test_facade_rejects_store_on_caching_executor(self, tmp_path):
        spec = _spec()
        executor = CachingExecutor(ResultStore(tmp_path / "a"), SerialExecutor())
        with pytest.raises(ValueError, match="not both"):
            run(spec, executor=executor, cache_dir=str(tmp_path / "b"))

    def test_progress_spans_hits_and_misses(self, tmp_path):
        spec = _spec()
        store = ResultStore(tmp_path / "cache")
        run(spec, executor=CachingExecutor(store, SerialExecutor()))
        # Warm a *subset* by invalidating half the entries.
        points = spec.expand()
        for point in points[: spec.n_runs // 2]:
            store.invalidate(point.run_hash())
        calls = []
        run(spec, executor=CachingExecutor(store, SerialExecutor()),
            progress=lambda done, total: calls.append((done, total)))
        assert calls[0] == (spec.n_runs // 2, spec.n_runs)  # hits first
        assert calls[-1] == (spec.n_runs, spec.n_runs)
        assert [c[0] for c in calls] == sorted(c[0] for c in calls)


class TestResume:
    def test_killed_then_resumed_completes_only_missing_points(self, tmp_path):
        """Acceptance: resume after a kill runs only the missing points and
        the final results equal a cold serial run."""
        spec = _spec()
        cold_reference = run(spec, executor=SerialExecutor()).to_records()

        store = ResultStore(tmp_path / "cache")
        die_after = 3
        dying = CachingExecutor(store, DyingExecutor(die_after))
        with pytest.raises(InterruptedError_):
            run(spec, executor=dying)
        # Everything finished before the kill was already persisted.
        assert len(store) == die_after

        resume_inner = CountingExecutor()
        resumed = CachingExecutor(store, resume_inner)
        resumed_results = run(spec, executor=resumed)
        assert resumed.hits == die_after
        assert resumed.misses == spec.n_runs - die_after
        assert resume_inner.points_executed == spec.n_runs - die_after
        assert resumed_results.to_records() == cold_reference

    def test_resume_through_facade_cache_dir(self, tmp_path):
        spec = _spec()
        cache_dir = str(tmp_path / "cache")
        store = ResultStore(cache_dir)
        with pytest.raises(InterruptedError_):
            run(spec, executor=CachingExecutor(store, DyingExecutor(2)))
        results = run(spec, cache_dir=cache_dir)
        assert results.to_records() == \
            run(spec, executor=SerialExecutor()).to_records()


class TestHashStability:
    def test_same_spec_same_keys_across_expansions(self, tmp_path):
        spec = _spec()
        first = [p.run_hash() for p in spec.expand()]
        second = [p.run_hash() for p in _spec().expand()]
        assert first == second
        # and the store is keyed by exactly those hashes
        store = ResultStore(tmp_path / "cache")
        run(spec, executor=CachingExecutor(store, SerialExecutor()))
        for run_hash in first:
            assert run_hash in store

    def test_different_params_never_collide(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        spec_a = _spec()
        spec_b = ExperimentSpec(
            protocols=spec_a.protocols,
            base_scenario=spec_a.base_scenario,
            axes=spec_a.axes,
            params=PARAMS.with_overrides(mean_snr_db=20.0),
            seeds=spec_a.seeds,
        )
        hashes_a = {p.run_hash() for p in spec_a.expand()}
        hashes_b = {p.run_hash() for p in spec_b.expand()}
        assert not hashes_a & hashes_b

    def test_legacy_points_get_params_digest_filled_in(self):
        from repro.api.spec import RunPoint

        point = RunPoint(index=0, scenario=BASE)  # no params_digest
        key_a = CachingExecutor.key_for(point, PARAMS)
        key_b = CachingExecutor.key_for(
            point, PARAMS.with_overrides(mean_snr_db=20.0)
        )
        assert key_a != key_b
