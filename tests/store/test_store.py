"""Tests for the content-addressed on-disk ResultStore."""

import json

import pytest

from repro.config import SimulationParameters
from repro.sim.runner import run_simulation
from repro.sim.scenario import Scenario
from repro.store import ResultStore
from repro.store import serialization

PARAMS = SimulationParameters()


def make_result(seed=0, n_voice=2):
    scenario = Scenario(protocol="charisma", n_voice=n_voice, n_data=1,
                        duration_s=0.3, warmup_s=0.1, seed=seed)
    return run_simulation(scenario, PARAMS)


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


HASH_A = "ab" + "0" * 14
HASH_B = "cd" + "1" * 14


class TestBasics:
    def test_miss_then_hit_round_trip(self, store):
        assert store.get(HASH_A) is None
        result = make_result()
        store.put(HASH_A, result, coords={"protocol": "charisma", "seed": 0})
        assert store.get(HASH_A) == result
        assert HASH_A in store
        assert len(store) == 1

    def test_persistence_across_instances(self, store):
        result = make_result()
        store.put(HASH_A, result)
        reopened = ResultStore(store.path)
        assert reopened.get(HASH_A) == result

    def test_last_write_wins(self, store):
        first, second = make_result(seed=0), make_result(seed=1)
        store.put(HASH_A, first)
        store.put(HASH_A, second)
        assert store.get(HASH_A) == second
        assert len(store) == 1

    def test_sharding_by_hash_prefix(self, store):
        store.put(HASH_A, make_result())
        store.put(HASH_B, make_result(seed=1))
        shard_names = sorted(p.name for p in (store.path / "shards").iterdir())
        assert shard_names == ["ab.jsonl", "cd.jsonl"]

    def test_empty_store_is_truthy(self, store):
        # Regression: __len__ made empty stores falsy, which silently
        # disabled caching behind ``store if store else None`` guards.
        assert len(store) == 0
        assert bool(store) is True

    def test_bad_hash_rejected(self, store):
        with pytest.raises(ValueError):
            store.get("not-a-hash!")
        with pytest.raises(ValueError):
            store.put("XYZ", make_result())

    def test_invalidate_and_clear(self, store):
        store.put(HASH_A, make_result())
        store.put(HASH_B, make_result(seed=1))
        assert store.invalidate(HASH_A) is True
        assert store.invalidate(HASH_A) is False
        assert store.get(HASH_A) is None
        assert store.clear() == 1
        assert len(store) == 0

    def test_get_many(self, store):
        result = make_result()
        store.put(HASH_A, result)
        found = store.get_many([HASH_A, HASH_B])
        assert set(found) == {HASH_A}
        assert found[HASH_A] == result


class TestSchemaVersioning:
    def test_stale_schema_records_are_misses(self, store, monkeypatch):
        store.put(HASH_A, make_result())
        assert store.get(HASH_A) is not None
        monkeypatch.setattr(serialization, "SCHEMA_VERSION",
                            serialization.SCHEMA_VERSION + 1)
        fresh = ResultStore(store.path)
        assert fresh.get(HASH_A) is None
        stats = fresh.stats()
        assert stats.n_results == 0
        assert stats.n_stale == 1

    def test_gc_drops_stale_records(self, store, monkeypatch):
        store.put(HASH_A, make_result())
        monkeypatch.setattr(serialization, "SCHEMA_VERSION",
                            serialization.SCHEMA_VERSION + 1)
        fresh = ResultStore(store.path)
        fresh.put(HASH_B, make_result(seed=1))
        collected = fresh.gc()
        assert collected.dropped_stale == 1
        assert fresh.stats().n_stale == 0
        assert fresh.get(HASH_B) is not None

    def test_gc_compacts_duplicates(self, store):
        store.put(HASH_A, make_result(seed=0))
        store.put(HASH_A, make_result(seed=1))
        collected = store.gc()
        assert collected.dropped_duplicates == 1
        assert collected.reclaimed_bytes > 0
        assert len(store) == 1


class TestCorruptionQuarantine:
    def test_torn_final_line_salvaged_without_quarantine(self, store):
        # A partial trailing line is the signature of a mid-append kill:
        # expected wear, truncated away in place — no quarantine detour.
        good = make_result()
        store.put(HASH_A, good)
        shard = store.path / "shards" / "ab.jsonl"
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write('{"torn": ')  # a write cut off mid-record
        fresh = ResultStore(store.path)
        assert fresh.get(HASH_A) == good  # salvaged
        assert list((store.path / "quarantine").iterdir()) == []
        assert fresh.stats().n_quarantined == 0
        # the shard itself was repaired: a re-read parses cleanly
        assert ResultStore(store.path).get(HASH_A) == good
        assert shard.read_text().count("\n") == 1

    def test_interior_corruption_still_quarantined(self, store):
        good = make_result()
        store.put(HASH_A, good)
        shard = store.path / "shards" / "ab.jsonl"
        original = shard.read_text()
        shard.write_text('{"garbage": \n' + original)  # damage mid-file
        fresh = ResultStore(store.path)
        assert fresh.get(HASH_A) == good  # neighbours survive
        quarantined = list((store.path / "quarantine").iterdir())
        assert len(quarantined) == 1
        assert quarantined[0].name.startswith("ab.jsonl")
        assert fresh.stats().n_quarantined == 1

    def test_fully_garbage_shard_quarantined(self, store):
        shard = store.path / "shards" / "ab.jsonl"
        shard.write_bytes(b"\x00\xff not json at all")
        fresh = ResultStore(store.path)
        assert fresh.get(HASH_A) is None
        assert not shard.exists() or shard.read_text() == ""
        assert fresh.stats().n_quarantined == 1

    def test_undeserialisable_payload_quarantined_on_get(self, store):
        store.put(HASH_A, make_result())
        shard = store.path / "shards" / "ab.jsonl"
        record = json.loads(shard.read_text().splitlines()[0])
        record["result"]["voice"]["generated"] = -5  # valid JSON, bad value
        shard.write_text(json.dumps(record) + "\n")
        fresh = ResultStore(store.path)
        assert fresh.get(HASH_A) is None
        bad = store.path / "quarantine" / "bad-records.jsonl"
        assert bad.exists()
        # and the poisoned entry is gone from the shard
        assert fresh.get(HASH_A) is None
        assert len(ResultStore(store.path)) == 0


class TestCrashSafety:
    def test_fsync_put_round_trips(self, tmp_path):
        store = ResultStore(tmp_path / "cache", fsync=True)
        result = make_result()
        store.put(HASH_A, result)
        assert ResultStore(store.path).get(HASH_A) == result

    def test_injected_torn_append_is_salvaged_not_quarantined(self, tmp_path):
        from repro.faults import FaultPlan, injecting

        store = ResultStore(tmp_path / "cache")
        good, lost = make_result(seed=0), make_result(seed=1)
        with injecting(FaultPlan(store_torn_every=2)):
            store.put(HASH_A, good)  # 1st append: intact
            store.put(HASH_B, lost)  # 2nd append: torn mid-line
        # the in-memory cache must not claim the torn record landed
        assert store.get(HASH_B) is None
        assert store.get(HASH_A) == good
        fresh = ResultStore(store.path)
        assert fresh.get(HASH_A) == good
        assert fresh.get(HASH_B) is None
        # expected wear, not corruption: nothing was quarantined
        assert list((store.path / "quarantine").iterdir()) == []
        # re-putting the lost record heals the store
        store.put(HASH_B, lost)
        assert ResultStore(store.path).get(HASH_B) == lost

    def test_torn_tail_salvage_is_counted(self, tmp_path):
        from repro.obs import metrics as _metrics

        store = ResultStore(tmp_path / "cache")
        store.put(HASH_A, make_result())
        shard = store.path / "shards" / "ab.jsonl"
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write('{"torn": ')
        with _metrics.recording() as registry:
            assert ResultStore(store.path).get(HASH_A) is not None
        counters = registry.snapshot()["counters"]
        assert counters["store.torn_tail_salvaged"] == 1


class TestStatsAndArtifacts:
    def test_stats_counts(self, store):
        store.put(HASH_A, make_result())
        store.put(HASH_B, make_result(seed=1))
        stats = store.stats()
        assert stats.n_results == 2
        assert stats.n_shards == 2
        assert stats.total_bytes > 0
        assert stats.schema_version == serialization.SCHEMA_VERSION
        assert set(stats.as_dict()) >= {"path", "n_results", "n_stale"}

    def test_artifact_round_trip(self, store):
        payload = {"wall_s": 1.25, "records": [{"a": 1}]}
        store.put_artifact("bench_fig11a", payload)
        assert store.get_artifact("bench_fig11a") == payload
        assert store.list_artifacts() == ["bench_fig11a"]
        assert store.stats().n_artifacts == 1
        assert store.get_artifact("absent") is None

    def test_artifact_name_validated(self, store):
        with pytest.raises(ValueError):
            store.put_artifact("../escape", {})

    def test_foreign_directory_rejected(self, tmp_path):
        (tmp_path / "manifest.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError, match="not a result store"):
            ResultStore(tmp_path)
