"""Round-trip tests for the result wire format."""

import json

import pytest

from repro.config import SimulationParameters
from repro.sim.runner import run_simulation
from repro.sim.scenario import Scenario
from repro.store import (
    SerializationError,
    payload_to_result,
    result_to_payload,
)

PARAMS = SimulationParameters()


@pytest.fixture(scope="module")
def result():
    scenario = Scenario(protocol="charisma", n_voice=4, n_data=2,
                        duration_s=0.4, warmup_s=0.2, seed=3)
    return run_simulation(scenario, PARAMS)


class TestRoundTrip:
    def test_result_survives_json_round_trip(self, result):
        payload = json.loads(json.dumps(result_to_payload(result)))
        restored = payload_to_result(payload)
        assert restored == result
        assert restored.summary() == result.summary()
        assert restored.scenario == result.scenario
        assert restored.data.delay_frames == result.data.delay_frames

    def test_derived_metrics_agree(self, result):
        restored = payload_to_result(result_to_payload(result))
        assert restored.voice.loss_rate == result.voice.loss_rate
        assert restored.data.mean_delay_s == result.data.mean_delay_s
        assert restored.mac.slot_utilisation == result.mac.slot_utilisation

    def test_optional_speed_field_round_trips(self):
        scenario = Scenario(protocol="charisma", n_voice=1, n_data=0,
                            duration_s=0.3, warmup_s=0.1,
                            mobile_speed_kmh=72.5)
        result = run_simulation(scenario, PARAMS)
        restored = payload_to_result(result_to_payload(result))
        assert restored.scenario.mobile_speed_kmh == 72.5


class TestValidation:
    def test_missing_section_rejected(self, result):
        payload = result_to_payload(result)
        payload.pop("voice")
        with pytest.raises(SerializationError, match="missing"):
            payload_to_result(payload)

    def test_unknown_field_rejected(self, result):
        payload = result_to_payload(result)
        payload["voice"]["bogus"] = 1
        with pytest.raises(SerializationError):
            payload_to_result(payload)

    def test_invalid_value_rejected(self, result):
        payload = result_to_payload(result)
        payload["voice"]["generated"] = -1
        with pytest.raises(SerializationError):
            payload_to_result(payload)

    def test_non_dict_rejected(self):
        with pytest.raises(SerializationError):
            payload_to_result("not a dict")
