"""Engine instrumentation: parity, span structure, phase-split equivalence.

Parity assertions compare ``(voice, data, mac)`` — the embedded ``scenario``
legitimately differs across ``macro_frames`` configurations.
"""

import pytest

from repro.obs import metrics
from repro.obs.trace import PHASES, ListTraceSink, install_tracer, uninstall_tracer
from repro.sim.runner import run_simulation
from repro.sim.scenario import Scenario


def _scenario(**overrides):
    base = dict(protocol="rmav", n_voice=8, n_data=3, use_request_queue=True,
                duration_s=0.4, warmup_s=0.2, seed=13)
    base.update(overrides)
    return Scenario(**base)


def _metrics_of(result):
    return (result.voice, result.data, result.mac)


@pytest.fixture
def sink():
    sink = ListTraceSink()
    install_tracer(sink)
    yield sink
    uninstall_tracer()


class TestTracedParity:
    @pytest.mark.parametrize("macro_frames", [1, 16])
    def test_tracing_is_bit_identical(self, macro_frames):
        scenario = _scenario(macro_frames=macro_frames)
        plain = run_simulation(scenario)
        sink = ListTraceSink()
        install_tracer(sink)
        try:
            traced = run_simulation(scenario)
        finally:
            uninstall_tracer()
        assert _metrics_of(traced) == _metrics_of(plain)
        assert any(r.get("name") == "engine.run" for r in sink.records)

    def test_metrics_recording_is_bit_identical(self):
        scenario = _scenario(protocol="charisma", macro_frames=16)
        plain = run_simulation(scenario)
        with metrics.recording() as registry:
            recorded = run_simulation(scenario)
        assert _metrics_of(recorded) == _metrics_of(plain)
        assert registry.counter("contention.rounds") > 0

    def test_untraced_run_after_uninstall_is_clean(self):
        scenario = _scenario()
        sink = ListTraceSink()
        install_tracer(sink)
        try:
            run_simulation(scenario)
        finally:
            uninstall_tracer()
        written = len(sink.records)
        # A fresh run after uninstall must not touch the dead sink.
        run_simulation(scenario)
        assert len(sink.records) == written


class TestSpanStructure:
    @pytest.mark.parametrize("macro_frames", [1, 16])
    def test_phase_spans_nest_under_engine_run(self, sink, macro_frames):
        run_simulation(_scenario(macro_frames=macro_frames))
        spans = [r for r in sink.records if r.get("record") == "span"]
        by_name = {}
        for record in spans:
            by_name.setdefault(record["name"], []).append(record)
        (engine_run,) = by_name["engine.run"]
        phase_names = {
            name for name in by_name if name.startswith("phase.")
        }
        assert phase_names == {f"phase.{p}" for p in PHASES}
        for name in phase_names:
            for record in by_name[name]:
                assert record["parent"] == engine_run["id"]

    def test_phase_spans_follow_engine_phase_order(self, sink):
        run_simulation(_scenario(macro_frames=1))
        # Reconstruct start order (file order is completion order).
        phase_starts = sorted(
            (r["start_s"], r["name"])
            for r in sink.records
            if r.get("record") == "span" and r["name"].startswith("phase.")
        )
        first_cycle = [name[len("phase."):] for _, name in phase_starts[:3]]
        assert first_cycle == list(PHASES)[:3]

    def test_mac_batch_spans_nest_inside_phase_mac(self, sink):
        run_simulation(_scenario(protocol="drma", macro_frames=1))
        spans = {r["id"]: r for r in sink.records if r.get("record") == "span"}
        batches = [r for r in spans.values()
                   if r["name"] == "mac.drma.batch"]
        assert batches, "per-frame MAC batches must be traced"
        for record in batches:
            assert spans[record["parent"]]["name"] == "phase.mac"

    def test_macro_events_present_when_macro_stepping(self, sink):
        run_simulation(_scenario(protocol="charisma", macro_frames=16))
        events = {r["name"] for r in sink.records if r.get("record") == "event"}
        assert "macro.plan" in events


class TestPhaseTimingMigration:
    def test_enable_phase_timing_still_returns_phase_dict(self):
        from repro.config import SimulationParameters
        from repro.sim.engine import UplinkSimulationEngine

        engine = UplinkSimulationEngine(_scenario(), SimulationParameters())
        phases = engine.enable_phase_timing()
        engine.run()
        assert set(phases) == set(PHASES)
        assert sum(phases.values()) > 0.0

    def test_traced_split_matches_phase_timer_split(self, sink):
        """The trace's per-phase totals are the same accumulation the
        ``enable_phase_timing`` dict reports (one PhaseRecorder feeds both)."""
        from repro.config import SimulationParameters
        from repro.obs.summary import summarize_trace
        from repro.obs.trace import JsonLinesTraceSink  # noqa: F401

        uninstall_tracer()  # replace the fixture's sink with a file sink
        import os
        import tempfile

        from repro.obs.trace import tracing

        from repro.sim.engine import UplinkSimulationEngine

        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "t.jsonl")
            engine = UplinkSimulationEngine(
                _scenario(), SimulationParameters()
            )
            with tracing(path):
                phases = engine.enable_phase_timing()
                engine.run()
            traced = summarize_trace(path).phase_seconds()
        assert set(traced) == set(phases)
        for name, seconds in phases.items():
            # Identical accumulation up to the span-bracket overhead.
            assert traced[name] == pytest.approx(seconds, rel=0.5, abs=5e-3)

    def test_dispatch_counter_installs_and_restores(self):
        from repro.config import SimulationParameters
        from repro.accel import contention_round_scan as before
        from repro.sim.engine import UplinkSimulationEngine

        engine = UplinkSimulationEngine(
            _scenario(protocol="charisma"), SimulationParameters()
        )
        engine.enable_phase_timing(count_dispatches=True)
        engine.run_frames(40)
        counts = dict(engine.dispatch_counts or {})
        engine.disable_phase_timing()
        assert sum(counts.values()) > 0
        assert counts.get("traffic", 0) > 0
        from repro.accel import contention_round_scan as after

        assert after is before  # uninstall restored the live binding

    def test_dispatch_counter_feeds_metrics_registry(self):
        from repro.config import SimulationParameters
        from repro.sim.engine import UplinkSimulationEngine

        with metrics.recording() as registry:
            engine = UplinkSimulationEngine(
                _scenario(), SimulationParameters()
            )
            engine.enable_phase_timing(count_dispatches=True)
            try:
                engine.run_frames(40)
            finally:
                engine.disable_phase_timing()
        assert registry.counter("kernel.dispatches") > 0
