"""Opt-in guard: disabled observability must stay off the hot path.

The metrics/tracing call sites compiled into the engine's per-frame loop
cost one module-attribute load and a branch when nothing is recording.
This guard enforces the 2 % fps budget for that disabled state, plus an
absolute tripwire against the committed ``BENCH_engine.json`` record.

Methodology — why the 2 % budget is enforced *in-session*
---------------------------------------------------------
Absolute fps on this class of machine drifts by tens of percent between
process invocations (CPU frequency phases; see the module docstring of
``benchmarks/test_bench_hotpath.py``), so a fresh measurement cannot be
compared to a committed number at 2 % resolution.  Instead the budget test
measures, side by side in one session:

* the engine's per-frame cost on the reference rmav workload (everything
  disabled — the state the committed record was taken in), and
* the cost of one disabled hot site (the exact ``TRACER is None`` /
  ``METRICS.enabled`` patterns the instrumented code runs), times the
  number of hot-site executions a frame actually performs (counted by
  running the same workload briefly with a list sink + recording registry
  installed, plus a generous constant bound for metric-only sites).

The ratio of the two is machine-drift-free: both sides move with CPU
frequency together.  If someone accidentally does real work on the
disabled path (allocation, dict writes, span brackets), the per-site cost
explodes and the guard trips.

At recording time the budget was also validated against ground truth: the
pre-obs tree (no call sites at all) and this tree were timed interleaved
across 12 process pairs; the obs tree's mean fps was *higher* (within
noise), i.e. the disabled overhead is below measurement resolution.

The absolute test mirrors ``benchmarks/test_bench_guard.py``: a 25 %
drift margin against the committed record, the tripwire for gross
regressions that survive machine drift.

Opt-in like the other bench guards (wall-clock assertions are machine
dependent):

    REPRO_BENCH_GUARD=1 python -m pytest tests/obs/test_obs_overhead.py -m bench
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.config import SimulationParameters
from repro.obs import clock as _obs_clock
from repro.obs import metrics as _metrics
from repro.obs import trace as _obs_trace
from repro.obs.trace import ListTraceSink, install_tracer, uninstall_tracer
from repro.sim.engine import UplinkSimulationEngine
from repro.sim.scenario import Scenario

pytestmark = [pytest.mark.slow, pytest.mark.bench]

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_engine.json"

#: The ISSUE budget: disabled observability may cost at most 2 % fps.
ALLOWED_DROP = 0.02
#: Drift margin for the absolute comparison against the committed record —
#: matches benchmarks/test_bench_guard.py (absolute fps moves by tens of
#: percent between sessions on this machine; 2 % is only resolvable
#: in-session, see module docstring).
DRIFT_ALLOWED_DROP = 0.25
REPETITIONS = 4

#: Disabled metric checks a frame may run beyond the span/event sites the
#: trace pass counts (``run_contention_ids`` and friends run roughly one
#: ``METRICS.enabled`` check per frame; eight is a generous bound).
METRIC_SITES_PER_FRAME_BOUND = 8

#: Iterations for the per-site microbenchmark.
MICRO_ITERATIONS = 200_000

PARAMS = SimulationParameters()


def _guard_enabled() -> bool:
    return os.environ.get("REPRO_BENCH_GUARD", "") == "1"


def _workload() -> dict:
    if not RECORD_PATH.exists():
        pytest.skip("no committed BENCH_engine.json to guard against")
    latest = json.loads(RECORD_PATH.read_text()).get("latest", {})
    workload = latest.get("workload", {})
    row = latest.get("protocols", {}).get("rmav")
    if not row or not workload:
        pytest.skip("committed BENCH_engine.json has no rmav record")
    return {**workload, "committed_fps": row["columnar_fps"]}


def _build_engine(workload: dict) -> UplinkSimulationEngine:
    scenario = Scenario(
        protocol="rmav",
        n_voice=workload["n_voice"],
        n_data=workload["n_data"],
        duration_s=workload["measured_s"],
        warmup_s=workload["warmup_s"],
        seed=workload["seed"],
        engine_backend="columnar",
    )
    return UplinkSimulationEngine(scenario, PARAMS)


def _rmav_run(workload: dict) -> tuple:
    """Run the reference workload once; return (frames, cpu_seconds)."""
    engine = _build_engine(workload)
    start = _obs_clock.cpu_now()
    engine.run()
    return engine.frame_index, _obs_clock.cpu_now() - start


def _disabled_site_seconds() -> float:
    """CPU seconds per disabled hot-site check (the real patterns)."""
    n = MICRO_ITERATIONS
    start = _obs_clock.cpu_now()
    for _ in range(n):
        # The two patterns every instrumented call site compiles down to
        # when nothing is recording (see repro.obs.trace / repro.obs.metrics
        # module docstrings): one module-attribute load plus one branch.
        if _obs_trace.TRACER is not None:  # pragma: no cover
            raise AssertionError("tracer installed during microbenchmark")
        m = _metrics.METRICS
        if m.enabled:  # pragma: no cover
            raise AssertionError("metrics recording during microbenchmark")
    elapsed = _obs_clock.cpu_now() - start
    # Each iteration ran both patterns; charge per single site.
    return elapsed / (2 * n)


def _sites_per_frame(workload: dict) -> float:
    """Hot-site executions per frame, counted with everything enabled.

    Every span and event a traced run emits corresponds to one disabled
    check on the untraced path; metric-only sites (no span) are covered by
    the constant bound added on top.
    """
    engine = _build_engine(workload)
    sink = ListTraceSink()
    install_tracer(sink)
    try:
        with _metrics.recording():
            engine.run_frames(256)
    finally:
        uninstall_tracer()
    emitted = sum(
        1 for r in sink.records if r.get("record") in ("span", "event")
    )
    return emitted / 256 + METRIC_SITES_PER_FRAME_BOUND


@pytest.mark.skipif(
    not _guard_enabled(),
    reason="overhead guard is opt-in: set REPRO_BENCH_GUARD=1 on the "
           "machine that produced BENCH_engine.json",
)
def test_disabled_observability_costs_under_two_percent():
    workload = _workload()

    # Everything disabled — the state the committed record was taken in.
    assert not _metrics.METRICS.enabled
    assert _obs_trace.TRACER is None

    best_frame_seconds = float("inf")
    site_seconds = float("inf")
    for _ in range(REPETITIONS):
        frames, elapsed = _rmav_run(workload)
        best_frame_seconds = min(best_frame_seconds, elapsed / frames)
        site_seconds = min(site_seconds, _disabled_site_seconds())

    overhead = _sites_per_frame(workload) * site_seconds
    fraction = overhead / best_frame_seconds
    assert fraction < ALLOWED_DROP, (
        f"disabled observability overhead: {overhead * 1e9:.0f} ns/frame "
        f"of {best_frame_seconds * 1e6:.1f} us/frame = {fraction:.2%} "
        f"(budget {ALLOWED_DROP:.0%}) — something is doing real work on "
        f"the disabled path"
    )


@pytest.mark.skipif(
    not _guard_enabled(),
    reason="overhead guard is opt-in: set REPRO_BENCH_GUARD=1 on the "
           "machine that produced BENCH_engine.json",
)
def test_rmav_fps_not_regressed_vs_committed_record():
    workload = _workload()

    assert not _metrics.METRICS.enabled
    assert _obs_trace.TRACER is None

    best = 0.0
    for _ in range(REPETITIONS):
        frames, elapsed = _rmav_run(workload)
        best = max(best, frames / elapsed)

    floor = workload["committed_fps"] * (1.0 - DRIFT_ALLOWED_DROP)
    assert best >= floor, (
        f"rmav columnar fps regressed: measured {best:.1f}, committed "
        f"{workload['committed_fps']:.1f}, floor {floor:.1f} "
        f"(> {DRIFT_ALLOWED_DROP:.0%} drop)"
    )
