"""Metrics registry: recording semantics and the no-op default."""

import threading

import pytest

from repro.obs import metrics


class TestRegistry:
    def test_counters_gauges_histograms(self):
        reg = metrics.MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 2)
        reg.gauge("g", 7.5)
        reg.gauge("g", 2.5)
        reg.observe("h", 1.0)
        reg.observe("h", 3.0)
        snap = reg.snapshot()
        assert snap["counters"]["a"] == 3
        assert snap["gauges"]["g"] == 2.5  # last write wins
        hist = snap["histograms"]["h"]
        assert hist["count"] == 2
        assert hist["sum"] == 4.0
        assert hist["min"] == 1.0 and hist["max"] == 3.0
        assert reg.counter("a") == 3
        assert reg.counter("nope") == 0

    def test_reset_empties_everything(self):
        reg = metrics.MetricsRegistry()
        reg.inc("a")
        reg.gauge("g", 1.0)
        reg.observe("h", 1.0)
        reg.reset()
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_snapshot_is_a_copy(self):
        reg = metrics.MetricsRegistry()
        reg.inc("a")
        snap = reg.snapshot()
        snap["counters"]["a"] = 999
        assert reg.counter("a") == 1

    def test_thread_safety_of_inc(self):
        reg = metrics.MetricsRegistry()

        def bump():
            for _ in range(1000):
                reg.inc("n")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n") == 4000


class TestNullDefault:
    def test_default_is_disabled_and_inert(self):
        assert metrics.METRICS is metrics.NULL
        assert not metrics.METRICS.enabled
        metrics.METRICS.inc("x")
        metrics.METRICS.gauge("g", 1.0)
        metrics.METRICS.observe("h", 1.0)
        snap = metrics.METRICS.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_install_uninstall_rebinds_module_global(self):
        reg = metrics.MetricsRegistry()
        metrics.install(reg)
        try:
            assert metrics.METRICS is reg
            assert metrics.METRICS.enabled
        finally:
            metrics.uninstall()
        assert metrics.METRICS is metrics.NULL

    def test_recording_context_restores_previous(self):
        with metrics.recording() as outer:
            outer.inc("outer")
            with metrics.recording() as inner:
                inner.inc("inner")
                assert metrics.METRICS is inner
            assert metrics.METRICS is outer
            assert outer.counter("inner") == 0
        assert metrics.METRICS is metrics.NULL

    def test_recording_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with metrics.recording():
                raise RuntimeError("boom")
        assert metrics.METRICS is metrics.NULL

    def test_hot_site_pattern_records_only_when_enabled(self):
        # The pattern every instrumented call site uses.
        def hot_site():
            m = metrics.METRICS
            if m.enabled:
                m.inc("hits")

        hot_site()
        with metrics.recording() as reg:
            hot_site()
            hot_site()
        hot_site()
        assert reg.counter("hits") == 2
