"""Tracer: JSON-lines round-trip, schema versioning, span nesting."""

import json

import pytest

from repro.obs.summary import format_summary, load_trace, summarize_trace
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    JsonLinesTraceSink,
    ListTraceSink,
    Tracer,
    install_tracer,
    span,
    tracing,
    uninstall_tracer,
)


class TestTracerCore:
    def test_header_written_first_with_schema_version(self):
        sink = ListTraceSink()
        Tracer(sink, meta={"command": "test"})
        (header,) = sink.records
        assert header["record"] == "header"
        assert header["schema_version"] == TRACE_SCHEMA_VERSION
        assert header["clock"] == "perf_counter"
        assert header["command"] == "test"

    def test_nesting_is_reconstructed_from_parent_ids(self):
        sink = ListTraceSink()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                tracer.event("tick", n=1)
        spans = {r["name"]: r for r in sink.records if r["record"] == "span"}
        events = [r for r in sink.records if r["record"] == "event"]
        outer = spans["outer"]
        assert spans["inner.a"]["parent"] == outer["id"]
        assert spans["inner.b"]["parent"] == outer["id"]
        assert outer["parent"] is None
        assert events[0]["parent"] == spans["inner.b"]["id"]
        # File order is completion order: children close before the parent.
        names = [r["name"] for r in sink.records if r["record"] == "span"]
        assert names == ["inner.a", "inner.b", "outer"]

    def test_span_durations_are_nonnegative_and_attrs_survive(self):
        sink = ListTraceSink()
        tracer = Tracer(sink)
        with tracer.span("work", frames=16, protocol="rmav"):
            pass
        (record,) = [r for r in sink.records if r["record"] == "span"]
        assert record["duration_s"] >= 0.0
        assert record["attrs"] == {"frames": 16, "protocol": "rmav"}

    def test_close_ends_open_spans(self):
        sink = ListTraceSink()
        tracer = Tracer(sink)
        tracer.begin("dangling")
        tracer.close()
        names = [r["name"] for r in sink.records if r["record"] == "span"]
        assert names == ["dangling"]
        assert tracer.depth == 0


class TestJsonLinesRoundTrip:
    def test_round_trip_preserves_every_record(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with tracing(path, meta={"command": "round-trip"}):
            with span("outer", k=1):
                with span("phase.mac"):
                    pass
        header, records = load_trace(path)
        assert header["schema_version"] == TRACE_SCHEMA_VERSION
        assert header["command"] == "round-trip"
        assert [r["name"] for r in records] == ["phase.mac", "outer"]
        summary = summarize_trace(path)
        assert summary.n_spans == 2
        assert summary.by_name("outer").count == 1
        assert "phase.mac" in format_summary(summary)

    def test_write_after_close_raises(self, tmp_path):
        sink = JsonLinesTraceSink(tmp_path / "t.jsonl")
        sink.write({"record": "header"})
        sink.close()
        with pytest.raises(ValueError):
            sink.write({"record": "span"})

    def test_newer_schema_version_is_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({
            "record": "header",
            "schema_version": TRACE_SCHEMA_VERSION + 1,
        }) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match="newer than supported"):
            load_trace(path)

    def test_corrupt_line_and_missing_header_are_rejected(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"record": "header", "schema_version": 1}\n{oops\n',
                       encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt trace line"):
            load_trace(bad)
        headless = tmp_path / "headless.jsonl"
        headless.write_text('{"record": "span", "name": "x"}\n',
                            encoding="utf-8")
        with pytest.raises(ValueError, match="header"):
            load_trace(headless)


class TestModuleLevelTracer:
    def test_span_is_noop_without_installed_tracer(self):
        with span("nobody.listening"):
            pass  # must not raise

    def test_install_replaces_and_uninstall_clears(self):
        first, second = ListTraceSink(), ListTraceSink()
        install_tracer(first)
        try:
            with span("one"):
                pass
            install_tracer(second)
            with span("two"):
                pass
        finally:
            uninstall_tracer()
        assert [r["name"] for r in first.records
                if r["record"] == "span"] == ["one"]
        assert [r["name"] for r in second.records
                if r["record"] == "span"] == ["two"]
        with span("three"):
            pass  # no tracer installed: no-op
