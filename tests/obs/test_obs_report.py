"""Run telemetry: report round-trip and threading through the executors."""

import pytest

from repro.api import ExperimentSpec, SerialExecutor, SweepAxis, run
from repro.config import SimulationParameters
from repro.obs.report import (
    RUN_REPORT_SCHEMA_VERSION,
    PointReport,
    RunReport,
    RunTelemetry,
)
from repro.sim.scenario import Scenario

PARAMS = SimulationParameters()
BASE = Scenario(protocol="charisma", n_voice=0, n_data=1,
                duration_s=0.4, warmup_s=0.2)


def _spec(name="obs-report"):
    return ExperimentSpec(
        protocols=("charisma", "dtdma_fr"),
        base_scenario=BASE,
        axes=(SweepAxis("n_voice", (2, 4)),),
        params=PARAMS,
        seeds=(0,),
        name=name,
    )


class TestReportRoundTrip:
    def test_point_and_run_report_payloads(self):
        point = PointReport(position=3, run_hash="abc123", protocol="rmav",
                            coords={"n_voice": 8}, wall_s=0.5, cache="miss",
                            worker="pid:42", frames=100,
                            phase_seconds={"mac": 0.2})
        report = RunReport(spec_name="s", spec_hash="deadbeef", n_points=4,
                           wall_s=1.0, points=[point],
                           metrics={"counters": {}})
        payload = report.to_payload()
        back = RunReport.from_payload(payload)
        assert back == report
        assert payload["schema_version"] == RUN_REPORT_SCHEMA_VERSION

    def test_newer_schema_version_rejected(self):
        report = RunReport(spec_name="s", spec_hash="d", n_points=0,
                           wall_s=0.0, points=[], metrics={})
        payload = report.to_payload()
        payload["schema_version"] = RUN_REPORT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            RunReport.from_payload(payload)

    def test_report_reductions(self):
        points = [
            PointReport(position=i, run_hash=f"h{i}", protocol="rmav",
                        coords={}, wall_s=float(i + 1),
                        cache="hit" if i % 2 else "miss",
                        phase_seconds={"mac": 0.1 * (i + 1)})
            for i in range(4)
        ]
        report = RunReport(spec_name="s", spec_hash="d", n_points=4,
                           wall_s=10.0, points=points, metrics={})
        assert [p.position for p in report.slowest(2)] == [3, 2]
        assert report.cache_counts() == {"hit": 2, "miss": 2}
        assert report.phase_totals()["mac"] == pytest.approx(1.0)


class TestRunTelemetry:
    def test_child_absorb_remaps_positions_and_cache(self):
        parent = RunTelemetry()
        parent.start()
        parent.record_point(0, run_hash="a", protocol="p", coords={},
                            cache="hit")
        child = parent.child()
        child.record_point(0, run_hash="b", protocol="p", coords={})
        child.record_point(1, run_hash="c", protocol="p", coords={})
        parent.absorb(child, positions=[2, 5], cache="miss")
        report = parent.report(spec_name="s", spec_hash="d", n_points=3)
        assert [p.position for p in report.points] == [0, 2, 5]
        assert [p.cache for p in report.points] == ["hit", "miss", "miss"]
        assert report.wall_s >= 0.0


class TestExecutorThreading:
    def test_serial_executor_records_every_point(self):
        spec = _spec()
        telemetry = RunTelemetry()
        telemetry.start()
        points = spec.expand()
        SerialExecutor().execute_with_sink(points, spec.params,
                                           telemetry=telemetry)
        report = telemetry.report(spec_name=spec.name,
                                  spec_hash=spec.spec_hash(),
                                  n_points=len(points))
        assert len(report.points) == len(points)
        assert all(p.wall_s > 0 for p in report.points)
        assert all(p.cache == "computed" for p in report.points)
        assert all(p.worker and p.worker.startswith("pid:")
                   for p in report.points)

    def test_async_executor_records_busy_metrics(self):
        from repro.obs import metrics
        from repro.store import AsyncExecutor

        spec = _spec()
        telemetry = RunTelemetry()
        telemetry.start()
        with metrics.recording() as registry:
            AsyncExecutor(n_workers=2).execute_with_sink(
                spec.expand(), spec.params, telemetry=telemetry,
            )
        report = telemetry.report(spec_name=spec.name,
                                  spec_hash=spec.spec_hash(),
                                  n_points=spec.n_runs)
        assert len(report.points) == spec.n_runs
        assert registry.counter("executor.worker_busy_seconds") > 0.0

    def test_phase_split_rides_along(self):
        spec = _spec()
        telemetry = RunTelemetry(phase_split=True)
        telemetry.start()
        points = spec.expand()
        SerialExecutor().execute_with_sink(points, spec.params,
                                           telemetry=telemetry)
        report = telemetry.report(spec_name=spec.name,
                                  spec_hash=spec.spec_hash(),
                                  n_points=len(points))
        assert all(p.phase_seconds for p in report.points)
        assert report.phase_totals()["mac"] >= 0.0


class TestFacadeIntegration:
    def test_run_without_store_has_no_telemetry_by_default(self):
        assert run(_spec()).telemetry is None

    def test_run_with_telemetry_true_attaches_report(self):
        results = run(_spec(), telemetry=True)
        report = results.telemetry
        assert report is not None
        assert report.n_points == len(results)
        assert report.spec_hash == _spec().spec_hash()

    def test_cached_run_labels_misses_then_hits_and_persists(self, tmp_path):
        from repro.store import ResultStore

        spec = _spec()
        cold = run(spec, cache_dir=str(tmp_path))
        assert cold.telemetry is not None
        assert cold.telemetry.cache_counts() == {"miss": spec.n_runs}
        warm = run(spec, cache_dir=str(tmp_path))
        assert warm.telemetry.cache_counts() == {"hit": spec.n_runs}
        assert [r.result for r in cold.records] == \
            [r.result for r in warm.records]
        artifact = ResultStore(str(tmp_path)).get_artifact(
            f"telemetry-{spec.spec_hash()}"
        )
        assert artifact is not None
        persisted = RunReport.from_payload(artifact)
        # Last run wins: the warm (all-hit) report is the persisted one.
        assert persisted.cache_counts() == {"hit": spec.n_runs}

    def test_metric_snapshot_lands_in_report_when_recording(self, tmp_path):
        from repro.obs import metrics

        spec = _spec()
        with metrics.recording():
            results = run(spec, cache_dir=str(tmp_path))
        counters = results.telemetry.metrics.get("counters", {})
        assert counters.get("store.cache_miss") == spec.n_runs

    def test_telemetry_false_disables_even_with_store(self, tmp_path):
        assert run(_spec(), cache_dir=str(tmp_path),
                   telemetry=False).telemetry is None
