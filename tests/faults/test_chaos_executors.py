"""Chaos suite: every executor must survive injected faults bit-identically.

The tentpole acceptance: a grid executed under a fault plan that crashes
every Kth point attempt — with a retry policy absorbing the crashes — must
produce byte-for-byte the same records as the fault-free run, on the
serial, process-pool and async executors alike.
"""

import pytest

from repro.api import (
    ExperimentSpec,
    ParallelExecutor,
    SerialExecutor,
    SweepAxis,
    run,
)
from repro.config import SimulationParameters
from repro.faults import FaultPlan, RetryPolicy, injecting, uninstall
from repro.sim.scenario import Scenario
from repro.store import AsyncExecutor, CachingExecutor, ResultStore

PARAMS = SimulationParameters()
BASE = Scenario(protocol="charisma", n_voice=0, n_data=1,
                duration_s=0.3, warmup_s=0.1)


def small_spec():
    return ExperimentSpec(
        protocols=("charisma", "rama"),
        base_scenario=BASE,
        axes=(SweepAxis("n_voice", (2, 4)),),
        params=PARAMS,
        seeds=(0, 1),
        name="chaos",
    )


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    yield
    uninstall()


RECOVERING = RetryPolicy(max_attempts=4, on_error="record")


class TestBitIdenticalUnderInjectedCrashes:
    """Acceptance: crashes every Kth attempt, retried, identical results."""

    @pytest.fixture(scope="class")
    def reference(self):
        return run(small_spec(), executor=SerialExecutor()).to_records()

    def test_serial(self, reference):
        results = run(small_spec(), executor=SerialExecutor(),
                      retry=RECOVERING, faults="crash_every=2,seed=3")
        assert not results.errors()
        assert results.to_records() == reference

    def test_parallel(self, reference):
        executor = ParallelExecutor(n_workers=2, chunk_size=2)
        results = run(small_spec(), executor=executor,
                      retry=RECOVERING, faults="crash_every=2,seed=3")
        assert not results.errors()
        assert results.to_records() == reference

    def test_async(self, reference):
        results = run(small_spec(), executor=AsyncExecutor(n_workers=2),
                      retry=RECOVERING, faults="crash_every=2,seed=3")
        assert not results.errors()
        assert results.to_records() == reference


class TestGracefulDegradation:
    def test_targeted_crash_degrades_one_point_only(self):
        spec = small_spec()
        victim = spec.expand()[2].run_hash()
        # the victim fails on more attempts than the policy allows
        plan = FaultPlan(crash_points=(victim,), crash_point_attempts=99)
        results = run(spec, executor=SerialExecutor(),
                      retry=RetryPolicy(max_attempts=2, on_error="record"),
                      faults=plan)
        errors = results.errors()
        assert [e.run_hash for e in errors] == [victim]
        assert errors[0].error_type == "InjectedFault"
        assert errors[0].attempts == 2
        assert len(results.completed()) == spec.n_runs - 1
        # aggregation keeps working over the survivors
        assert results.aggregate(["voice_loss_rate"], by=("protocol",))

    def test_raise_mode_aborts_the_grid(self):
        from repro.faults import PointFailed

        spec = small_spec()
        victim = spec.expand()[0].run_hash()
        plan = FaultPlan(crash_points=(victim,), crash_point_attempts=99)
        with pytest.raises(PointFailed):
            run(spec, executor=SerialExecutor(),
                retry=RetryPolicy(max_attempts=2), faults=plan)

    def test_env_var_configures_the_plan(self, monkeypatch):
        from repro.faults import FAULTS_ENV_VAR
        from repro.obs import metrics as _metrics

        monkeypatch.setenv(FAULTS_ENV_VAR, "crash_every=2,seed=3")
        with _metrics.recording() as registry:
            results = run(small_spec(), executor=SerialExecutor(),
                          retry=RECOVERING)
        assert not results.errors()
        snapshot = registry.snapshot()
        assert snapshot["counters"]["faults.injected"] > 0
        assert snapshot["counters"]["retry.attempts"] > 0


class TestCachingKillResume:
    """Satellite: chaos kill-resume — a caching run interrupted by injected
    crashes resumes with zero re-executions of the finished points and ends
    bit-identical to the fault-free run."""

    def test_kill_resume_zero_reexecutions(self, tmp_path):
        spec = small_spec()
        reference = run(spec, executor=SerialExecutor()).to_records()

        # First pass: no retries, so every injected crash loses its point.
        cold = CachingExecutor(ResultStore(tmp_path / "cache"),
                               SerialExecutor())
        crashed = run(spec, executor=cold,
                      retry=RetryPolicy(max_attempts=1, on_error="record"),
                      faults="crash_every=3,seed=1")
        n_failed = len(crashed.errors())
        assert 0 < n_failed < spec.n_runs  # the chaos actually bit
        assert cold.misses == spec.n_runs

        # Restart, faults gone: only the lost points execute again.
        warm = CachingExecutor(ResultStore(tmp_path / "cache"),
                               SerialExecutor())
        resumed = run(spec, executor=warm)
        assert warm.hits == spec.n_runs - n_failed
        assert warm.misses == n_failed
        assert resumed.to_records() == reference

    def test_injected_sink_failure_surfaces(self, tmp_path):
        spec = small_spec()
        executor = CachingExecutor(ResultStore(tmp_path / "cache"),
                                   SerialExecutor())
        with injecting(FaultPlan(sink_fail_every=3)):
            with pytest.raises(Exception):
                run(spec, executor=executor)
