"""Tests for RetryPolicy, FailedPoint and the attempt loop."""

import pytest

from repro.faults import (
    FailedPoint,
    FatalPointError,
    InjectedFault,
    PointFailed,
    PointTimeout,
    RetryPolicy,
    TransientPointError,
    run_point_attempts,
)

HASH = "ab" + "0" * 14


class TestClassification:
    @pytest.mark.parametrize("error", [
        TransientPointError("x"),
        InjectedFault("point", 1),
        PointTimeout("x"),
        TimeoutError("x"),
        ConnectionError("x"),
        OSError("x"),
    ])
    def test_transient_families(self, error):
        assert RetryPolicy.classify(error) is True

    @pytest.mark.parametrize("error", [
        FatalPointError("x"),
        ValueError("x"),
        KeyError("x"),
        RuntimeError("x"),
    ])
    def test_fatal_families(self, error):
        assert RetryPolicy.classify(error) is False


class TestBackoff:
    def test_no_backoff_configured_means_zero(self):
        policy = RetryPolicy(backoff_s=0.0)
        assert policy.backoff_for(HASH, 2) == 0.0

    def test_first_attempt_never_sleeps(self):
        policy = RetryPolicy(backoff_s=1.0)
        assert policy.backoff_for(HASH, 1) == 0.0

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(max_attempts=9, backoff_s=1.0,
                             backoff_factor=2.0, max_backoff_s=5.0,
                             jitter=0.0)
        waits = [policy.backoff_for(HASH, a) for a in (2, 3, 4, 5, 6)]
        assert waits == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_s=1.0, jitter=0.5, jitter_seed=3)
        first = policy.backoff_for(HASH, 2)
        assert first == policy.backoff_for(HASH, 2)  # replayable
        assert 0.5 <= first <= 1.5
        # different (point, attempt) keys de-synchronise the sleeps
        assert first != policy.backoff_for("cd" + "1" * 14, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(on_error="ignore")


class TestAttemptLoop:
    def test_no_policy_is_a_single_bare_call(self):
        calls = []

        def attempt(n):
            calls.append(n)
            raise ValueError("boom")

        with pytest.raises(ValueError):
            run_point_attempts(None, HASH, attempt)
        assert calls == [1]

    def test_transient_error_retries_to_success(self):
        calls = []

        def attempt(n):
            calls.append(n)
            if n < 3:
                raise InjectedFault("point", n)
            return "ok"

        policy = RetryPolicy(max_attempts=4)
        assert run_point_attempts(policy, HASH, attempt) == "ok"
        assert calls == [1, 2, 3]

    def test_fatal_error_never_retries(self):
        calls = []

        def attempt(n):
            calls.append(n)
            raise ValueError("deterministic bug")

        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(PointFailed) as excinfo:
            run_point_attempts(policy, HASH, attempt)
        assert calls == [1]
        failed = excinfo.value.failed
        assert failed.error_type == "ValueError"
        assert failed.attempts == 1
        assert failed.transient is False
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_exhausted_attempts_raise_pointfailed(self):
        def attempt(n):
            raise InjectedFault("point", n)

        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(PointFailed) as excinfo:
            run_point_attempts(policy, HASH, attempt)
        assert excinfo.value.failed.attempts == 3
        assert excinfo.value.failed.transient is True

    def test_record_mode_returns_failedpoint(self):
        def attempt(n):
            raise InjectedFault("point", n)

        policy = RetryPolicy(max_attempts=2, on_error="record")
        outcome = run_point_attempts(policy, HASH, attempt)
        assert isinstance(outcome, FailedPoint)
        assert outcome.run_hash == HASH
        assert outcome.error_type == "InjectedFault"
        assert outcome.attempts == 2

    def test_cooperative_timeout_is_transient(self, monkeypatch):
        from repro.obs import clock as _clock

        ticks = iter([0.0, 10.0, 20.0, 20.1])
        monkeypatch.setattr(_clock, "now", lambda: next(ticks))

        def attempt(n):
            return f"slow-result-{n}"

        policy = RetryPolicy(max_attempts=2, timeout_s=1.0,
                             on_error="record")
        outcome = run_point_attempts(policy, HASH, attempt)
        # attempt 1 blows the budget (t: 0 -> 10), attempt 2 lands in it
        assert outcome == "slow-result-2"

    def test_timeout_exhaustion_records_pointtimeout(self, monkeypatch):
        from repro.obs import clock as _clock

        ticks = iter([0.0, 10.0, 20.0, 30.0])
        monkeypatch.setattr(_clock, "now", lambda: next(ticks))
        policy = RetryPolicy(max_attempts=2, timeout_s=1.0,
                             on_error="record")
        outcome = run_point_attempts(policy, HASH, lambda n: "discarded")
        assert isinstance(outcome, FailedPoint)
        assert outcome.error_type == "PointTimeout"


class TestFailedPoint:
    def test_payload_round_trip(self):
        failed = FailedPoint(run_hash=HASH, error_type="InjectedFault",
                             message="injected", attempts=3, transient=True)
        assert FailedPoint.from_payload(failed.to_payload()) == failed

    def test_from_error(self):
        failed = FailedPoint.from_error(HASH, ValueError("nope"), 2, False)
        assert failed.error_type == "ValueError"
        assert failed.message == "nope"
        assert failed.attempts == 2
