"""Tests for FaultPlan spec syntax and the deterministic injector."""

import pytest

from repro.faults import (
    FAULTS_ENV_VAR,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    active_plan,
    injecting,
    install,
    uninstall,
)
from repro.faults import injector as injector_mod


class TestPlanSpec:
    def test_spec_round_trip(self):
        plan = FaultPlan(seed=7, crash_every=3, crash_rate=0.25,
                         crash_points=("ab", "cd"), hang_every=5, hang_s=0.2)
        assert FaultPlan.from_spec(plan.to_spec()) == plan

    def test_default_plan_is_inactive_and_empty_spec(self):
        plan = FaultPlan()
        assert not plan.active
        assert plan.to_spec() == ""

    def test_from_spec_ignores_whitespace_and_empty_entries(self):
        plan = FaultPlan.from_spec(" crash_every = 2 , , seed=3 ")
        assert plan.crash_every == 2
        assert plan.seed == 3

    def test_unknown_key_rejected_with_valid_list(self):
        with pytest.raises(ValueError, match="crash_every"):
            FaultPlan.from_spec("explode=1")

    def test_not_key_value_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            FaultPlan.from_spec("crash_every")

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_every=-1)
        with pytest.raises(ValueError):
            FaultPlan(crash_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(hang_s=-0.1)

    def test_from_env(self):
        assert FaultPlan.from_env({}) is None
        plan = FaultPlan.from_env({FAULTS_ENV_VAR: "crash_every=4"})
        assert plan == FaultPlan(crash_every=4)

    def test_resolve(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        assert FaultPlan.resolve(None) is None
        assert FaultPlan.resolve("crash_every=2") == FaultPlan(crash_every=2)
        # an inactive plan resolves to None (nothing to install)
        assert FaultPlan.resolve(FaultPlan()) is None
        monkeypatch.setenv(FAULTS_ENV_VAR, "crash_every=9")
        assert FaultPlan.resolve(None) == FaultPlan(crash_every=9)


class TestInjectorTriggers:
    def test_periodic_point_crashes(self):
        injector = FaultInjector(FaultPlan(crash_every=3))
        fired = 0
        for _ in range(9):
            try:
                injector.point_attempt("aa" + "0" * 14)
            except InjectedFault:
                fired += 1
        assert fired == 3
        assert injector.counts()["injected"]["point"] == 3
        assert injector.counts()["occurrences"]["point"] == 9

    def test_probabilistic_is_deterministic_per_seed(self):
        def firing_pattern(seed):
            injector = FaultInjector(FaultPlan(crash_rate=0.5, seed=seed))
            pattern = []
            for _ in range(32):
                try:
                    injector.point_attempt("aa" + "0" * 14)
                    pattern.append(False)
                except InjectedFault:
                    pattern.append(True)
            return pattern

        assert firing_pattern(1) == firing_pattern(1)
        assert firing_pattern(1) != firing_pattern(2)
        assert any(firing_pattern(1))  # rate 0.5 over 32 draws must fire

    def test_crash_limit_caps_injections(self):
        injector = FaultInjector(FaultPlan(crash_every=1, crash_limit=2))
        fired = 0
        for _ in range(10):
            try:
                injector.point_attempt("aa" + "0" * 14)
            except InjectedFault:
                fired += 1
        assert fired == 2

    def test_targeted_crash_points_fire_by_prefix_and_attempt(self):
        injector = FaultInjector(
            FaultPlan(crash_points=("ab",), crash_point_attempts=1)
        )
        victim, bystander = "ab" + "0" * 14, "cd" + "0" * 14
        with pytest.raises(InjectedFault):
            injector.point_attempt(victim, attempt=1)
        # retry (attempt 2) is allowed through; other points never fire
        injector.point_attempt(victim, attempt=2)
        injector.point_attempt(bystander, attempt=1)

    def test_torn_append_truncates_every_nth_line(self):
        injector = FaultInjector(FaultPlan(store_torn_every=2))
        line = '{"payload": "0123456789"}'
        assert injector.torn_append(line) == line
        maimed = injector.torn_append(line)
        assert maimed != line
        assert line.startswith(maimed)

    def test_lease_heartbeat_drops_every_nth(self):
        injector = FaultInjector(FaultPlan(lease_drop_every=3))
        beats = [injector.lease_heartbeat("w") for _ in range(6)]
        assert beats == [True, True, False, True, True, False]


class TestInstallation:
    def teardown_method(self):
        uninstall()

    def test_install_uninstall_cycle(self):
        plan = FaultPlan(crash_every=2)
        install(plan)
        assert injector_mod.INJECTOR is not None
        assert active_plan() == plan
        uninstall()
        assert injector_mod.INJECTOR is None
        assert active_plan() is None

    def test_injecting_scopes_and_restores(self):
        outer = install(FaultPlan(crash_every=9))
        with injecting(FaultPlan(crash_every=2)) as inner:
            assert injector_mod.INJECTOR is inner
            assert active_plan() == FaultPlan(crash_every=2)
        assert injector_mod.INJECTOR is outer
