"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.protocol == "charisma"
        assert args.n_voice == 60

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--protocol", "bogus"])

    def test_compare_protocol_list(self):
        args = build_parser().parse_args(["compare", "--protocols", "charisma", "rama"])
        assert args.protocols == ["charisma", "rama"]


class TestCommands:
    def test_experiments_lists_registry(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig11a" in out and "table1" in out and "benchmarks/" in out

    def test_run_small_scenario(self, capsys):
        code = main([
            "run", "--protocol", "charisma", "--n-voice", "4", "--n-data", "1",
            "--duration", "0.5", "--warmup", "0.25", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "voice_loss_rate" in out
        assert "data_throughput_per_frame" in out

    def test_compare_two_protocols(self, capsys):
        code = main([
            "compare", "--protocols", "charisma", "dtdma_fr",
            "--n-voice", "4", "--n-data", "1",
            "--duration", "0.5", "--warmup", "0.25",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "charisma" in out and "dtdma_fr" in out
        assert "[voice_loss_rate]" in out

    def test_capacity_small_search(self, capsys):
        code = main([
            "capacity", "--protocol", "charisma",
            "--lower", "4", "--upper", "8", "--step", "4",
            "--duration", "0.5", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "voice capacity" in out

    def test_run_with_speed_override(self, capsys):
        code = main([
            "run", "--n-voice", "2", "--n-data", "0", "--duration", "0.5",
            "--warmup", "0.25", "--speed", "80",
        ])
        assert code == 0

    def test_run_with_cache_dir_hits_on_rerun(self, capsys, tmp_path):
        from repro.store import ResultStore

        cache_dir = str(tmp_path / "cache")
        argv = ["run", "--n-voice", "2", "--n-data", "0",
                "--duration", "0.4", "--warmup", "0.2", "--cache", cache_dir]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert len(ResultStore(cache_dir)) == 1
        assert main(argv) == 0  # second run served from the store
        assert capsys.readouterr().out == first

    def test_cache_stats_gc_clear(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "--n-voice", "2", "--n-data", "0",
                     "--duration", "0.4", "--warmup", "0.2",
                     "--cache", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "n_results" in out and "1" in out
        assert main(["cache", "gc", "--cache-dir", cache_dir]) == 0
        assert "reclaimed" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_cache_requires_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "stats"])

    def test_run_with_faults_and_retries_recovers(self, capsys):
        code = main([
            "run", "--protocol", "rama", "--n-voice", "4", "--n-data", "1",
            "--duration", "0.4", "--warmup", "0.2",
            "--faults", "crash_every=1,crash_limit=2,seed=5",
            "--retries", "4",
        ])
        assert code == 0
        assert "voice_loss_rate" in capsys.readouterr().out

    def test_run_reports_unrecovered_failure(self, capsys):
        code = main([
            "run", "--protocol", "rama", "--n-voice", "4", "--n-data", "1",
            "--duration", "0.4", "--warmup", "0.2",
            # every attempt crashes and the budget is too small to recover
            "--faults", "crash_every=1", "--retries", "2",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "failed" in out
        assert "InjectedFault" in out

    def test_fleet_run_and_status(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        code = main([
            "fleet", "run", "--protocols", "rama", "--n-voice", "4",
            "--n-data", "1", "--duration", "0.4", "--warmup", "0.2",
            "--store", store, "--workers", "2", "--ttl", "5",
            "--deadline", "120",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "1/1 points completed" in out
        assert "voice_loss_rate" in out
        assert main(["fleet", "status", "--db", store + "/fleet.db"]) == 0
        out = capsys.readouterr().out
        assert "done" in out
        code = main(["fleet", "status", "--db", store + "/fleet.db",
                     "--json"])
        assert code == 0
        import json

        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counts"]["done"] == 1
        assert snapshot["points"][0]["state"] == "done"

    def test_selftest_runs_every_executor(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "SerialExecutor" in out
        assert "ParallelExecutor" in out
        assert "AsyncExecutor" in out
        assert "ResultStore" in out
        assert "selftest passed" in out

    def test_selftest_flag_spelling(self, capsys):
        assert main(["--selftest"]) == 0
        assert "selftest passed" in capsys.readouterr().out

    def test_selftest_flag_only_aliased_in_first_position(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--selftest"])
        assert "selftest passed" not in capsys.readouterr().out
