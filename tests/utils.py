"""Shared helpers for the test-suite: synthetic terminals, snapshots, protocols."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.channel.manager import ChannelSnapshot
from repro.config import SimulationParameters
from repro.mac.registry import create_protocol
from repro.traffic.packets import Packet, TrafficKind
from repro.traffic.terminal import DataTerminal, Terminal, VoiceTerminal

PARAMS = SimulationParameters()


def make_snapshot(amplitudes: Sequence[float], frame_index: int = 0,
                  mean_snr_db: float = PARAMS.mean_snr_db) -> ChannelSnapshot:
    """Build a channel snapshot with explicitly chosen per-user amplitudes."""
    amplitude = np.asarray(list(amplitudes), dtype=float)
    with np.errstate(divide="ignore"):
        snr_db = mean_snr_db + 20.0 * np.log10(amplitude)
    return ChannelSnapshot(amplitude=amplitude, snr_db=snr_db, frame_index=frame_index)


def voice_terminal_with_packet(
    terminal_id: int,
    frame: int = 0,
    params: SimulationParameters = PARAMS,
    seed: int = 0,
    in_talkspurt: bool = True,
) -> VoiceTerminal:
    """A voice terminal holding exactly one fresh packet (forced state)."""
    terminal = VoiceTerminal(terminal_id, params, np.random.default_rng(seed),
                             start_silent=not in_talkspurt)
    terminal._buffer.append(
        Packet(
            kind=TrafficKind.VOICE,
            terminal_id=terminal_id,
            created_frame=frame,
            deadline_frame=frame + params.voice_deadline_frames,
        )
    )
    terminal.stats.voice_generated += 1
    if in_talkspurt:
        # Force the source into a talkspurt so contention eligibility holds.
        terminal._source._state = terminal._source._state.__class__.TALKSPURT
    return terminal


def data_terminal_with_packets(
    terminal_id: int,
    n_packets: int,
    frame: int = 0,
    params: SimulationParameters = PARAMS,
    seed: int = 0,
) -> DataTerminal:
    """A data terminal holding ``n_packets`` buffered packets (forced state)."""
    terminal = DataTerminal(terminal_id, params, np.random.default_rng(seed))
    for _ in range(n_packets):
        terminal._buffer.append(
            Packet(kind=TrafficKind.DATA, terminal_id=terminal_id, created_frame=frame)
        )
    terminal.stats.data_generated += n_packets
    return terminal


def build_protocol(name: str, use_request_queue: bool = False,
                   params: SimulationParameters = PARAMS, seed: int = 0):
    """Construct a protocol (and its modem) for unit tests."""
    return create_protocol(name, params, np.random.default_rng(seed),
                           use_request_queue=use_request_queue)


def population_snapshot(terminals: List[Terminal], amplitude: float = 1.0,
                        frame_index: int = 0) -> ChannelSnapshot:
    """A snapshot giving every terminal the same channel amplitude."""
    n = max((t.terminal_id for t in terminals), default=-1) + 1
    return make_snapshot([amplitude] * n, frame_index=frame_index)
