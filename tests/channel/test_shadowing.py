"""Tests for the log-normal shadowing process."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.shadowing import LogNormalShadowing


def make(seed=0, **kw):
    kw.setdefault("rng", np.random.default_rng(seed))
    return LogNormalShadowing(**kw)


class TestLogNormalShadowing:
    def test_gain_positive(self):
        shadow = make()
        for _ in range(200):
            assert shadow.advance() > 0.0

    def test_db_statistics_match_parameters(self):
        shadow = make(seed=1, mean_db=-3.0, std_db=6.0, decorrelation_time_s=0.05)
        trace = shadow.trace_db(40000)
        assert np.mean(trace) == pytest.approx(-3.0, abs=0.5)
        assert np.std(trace) == pytest.approx(6.0, rel=0.12)

    def test_zero_std_is_deterministic(self):
        shadow = make(seed=2, mean_db=2.0, std_db=0.0)
        trace = shadow.trace_db(100)
        np.testing.assert_allclose(trace, 2.0)

    def test_gain_is_db_conversion_of_level(self):
        shadow = make(seed=3)
        shadow.advance()
        assert shadow.gain == pytest.approx(10.0 ** (shadow.level_db / 20.0))

    def test_slow_decorrelation_high_persistence(self):
        """With tau = 1 s and dt = 2.5 ms successive samples barely move."""
        shadow = make(seed=4, std_db=6.0, decorrelation_time_s=1.0,
                      sample_interval_s=0.0025)
        trace = shadow.trace_db(2000)
        steps = np.abs(np.diff(trace))
        assert np.mean(steps) < 0.6  # dB per frame

    def test_decorrelates_over_long_horizon(self):
        shadow = make(seed=5, std_db=6.0, decorrelation_time_s=0.1,
                      sample_interval_s=0.0025)
        trace = shadow.trace_db(60000)
        lag = int(1.0 / 0.0025)  # 1 second apart, 10 decorrelation times
        x, y = trace[:-lag], trace[lag:]
        corr = np.corrcoef(x, y)[0, 1]
        assert abs(corr) < 0.15

    def test_reproducible_with_same_seed(self):
        a = make(seed=6).trace_db(64)
        b = make(seed=6).trace_db(64)
        np.testing.assert_allclose(a, b)

    def test_reset_redraws(self):
        shadow = make(seed=7, std_db=8.0)
        before = shadow.level_db
        shadow.reset()
        assert shadow.level_db != before

    def test_custom_dt(self):
        shadow = make(seed=8)
        assert shadow.advance(dt=1.0) > 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            make(std_db=-1.0)
        with pytest.raises(ValueError):
            make(decorrelation_time_s=0.0)
        with pytest.raises(ValueError):
            make(sample_interval_s=0.0)
        with pytest.raises(ValueError):
            make().advance(dt=-1.0)
        with pytest.raises(ValueError):
            make().trace_db(-1)

    def test_properties_expose_parameters(self):
        shadow = make(mean_db=-2.0, std_db=5.0, decorrelation_time_s=0.7)
        assert shadow.mean_db == -2.0
        assert shadow.std_db == 5.0
        assert shadow.decorrelation_time_s == 0.7

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.1, max_value=12.0))
    def test_stationary_spread_bounded(self, std_db):
        """dB trace stays within a generous multiple of the requested spread."""
        shadow = make(seed=11, std_db=std_db, decorrelation_time_s=0.05)
        trace = shadow.trace_db(2000)
        assert np.all(np.abs(trace) < 8.0 * std_db + 1.0)
