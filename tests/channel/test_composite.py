"""Tests for the composite channel and dB helpers."""

import numpy as np
import pytest

from repro.channel.composite import CompositeChannel, amplitude_to_db, db_to_amplitude
from repro.channel.doppler import DopplerModel


class TestDbHelpers:
    def test_roundtrip(self):
        assert db_to_amplitude(amplitude_to_db(0.37)) == pytest.approx(0.37)

    def test_unity_is_zero_db(self):
        assert amplitude_to_db(1.0) == pytest.approx(0.0)

    def test_zero_amplitude_is_minus_infinity(self):
        assert amplitude_to_db(0.0) == float("-inf")

    def test_db_to_amplitude_examples(self):
        assert db_to_amplitude(20.0) == pytest.approx(10.0)
        assert db_to_amplitude(-20.0) == pytest.approx(0.1)


class TestCompositeChannel:
    def _make(self, seed=0, **kw):
        return CompositeChannel(
            DopplerModel(speed_kmh=50.0),
            rng=np.random.default_rng(seed),
            **kw,
        )

    def test_amplitude_is_product_of_components(self):
        chan = self._make(seed=1)
        chan.advance()
        assert chan.amplitude == pytest.approx(
            chan.fast_fading.envelope * chan.shadowing.gain
        )

    def test_amplitude_positive(self):
        chan = self._make(seed=2)
        trace = chan.trace(500)
        assert np.all(trace > 0.0)

    def test_snr_tracks_amplitude(self):
        chan = self._make(seed=3, mean_snr_db=20.0)
        chan.advance()
        expected = 20.0 + chan.amplitude_db
        assert chan.snr_db == pytest.approx(expected)

    def test_mean_power_roughly_shadowing_scaled(self):
        """With 0 dB mean shadowing the average composite power stays near the
        log-normal power correction factor exp((sigma ln10/20)^2 / 2)^2."""
        chan = self._make(seed=4, shadow_std_db=4.0, shadow_decorrelation_s=0.05)
        trace = chan.trace(40000)
        mean_power = np.mean(trace**2)
        sigma_ln = 4.0 * np.log(10.0) / 20.0
        expected = np.exp(2.0 * sigma_ln**2)  # E[c_l^2] for 0 dB-mean log-normal
        assert mean_power == pytest.approx(expected, rel=0.25)

    def test_reproducible(self):
        a = self._make(seed=5).trace(64)
        b = self._make(seed=5).trace(64)
        np.testing.assert_allclose(a, b)

    def test_reset_changes_state(self):
        chan = self._make(seed=6)
        before = chan.amplitude
        chan.reset()
        assert chan.amplitude != before

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            self._make().trace(-5)

    def test_exposes_doppler(self):
        chan = self._make()
        assert chan.doppler.speed_kmh == 50.0
        assert chan.mean_snr_db == 20.0
