"""Tests for Doppler spread and coherence-time helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.channel.doppler import (
    DEFAULT_CARRIER_HZ,
    DopplerModel,
    coherence_time,
    doppler_spread,
    speed_to_mps,
)


class TestSpeedConversion:
    def test_50_kmh(self):
        assert speed_to_mps(50.0) == pytest.approx(13.888, rel=1e-3)

    def test_zero(self):
        assert speed_to_mps(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            speed_to_mps(-1.0)

    @given(st.floats(min_value=0.0, max_value=1000.0))
    def test_monotone_and_nonnegative(self, speed):
        assert speed_to_mps(speed) >= 0.0


class TestDopplerSpread:
    def test_paper_operating_point(self):
        """50 km/h at the default carrier reproduces the paper's ~100 Hz."""
        fd = doppler_spread(50.0)
        assert fd == pytest.approx(100.0, rel=0.02)

    def test_scales_linearly_with_speed(self):
        assert doppler_spread(100.0) == pytest.approx(2 * doppler_spread(50.0))

    def test_scales_linearly_with_carrier(self):
        assert doppler_spread(50.0, 2 * DEFAULT_CARRIER_HZ) == pytest.approx(
            2 * doppler_spread(50.0, DEFAULT_CARRIER_HZ)
        )

    def test_zero_speed_gives_zero(self):
        assert doppler_spread(0.0) == 0.0

    def test_invalid_carrier_rejected(self):
        with pytest.raises(ValueError):
            doppler_spread(50.0, 0.0)


class TestCoherenceTime:
    def test_paper_operating_point(self):
        """~100 Hz Doppler gives the paper's ~10 ms coherence time."""
        assert coherence_time(100.0) == pytest.approx(0.010)

    def test_zero_doppler_is_infinite(self):
        assert coherence_time(0.0) == float("inf")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            coherence_time(-1.0)

    @given(st.floats(min_value=1.0, max_value=1e4))
    def test_inverse_relationship(self, fd):
        assert coherence_time(fd) == pytest.approx(1.0 / fd)


class TestDopplerModel:
    def test_defaults_match_paper(self):
        model = DopplerModel()
        assert model.speed_kmh == 50.0
        assert model.doppler_hz == pytest.approx(100.0, rel=0.02)
        assert model.coherence_time_s == pytest.approx(0.010, rel=0.02)

    def test_frames_per_coherence(self):
        model = DopplerModel(speed_kmh=50.0)
        # ~10 ms coherence / 2.5 ms frames ~ 4 frames.
        assert model.frames_per_coherence(0.0025) == pytest.approx(4.0, rel=0.05)

    def test_frames_per_coherence_static_user(self):
        model = DopplerModel(speed_kmh=0.0)
        assert model.frames_per_coherence(0.0025) == float("inf")

    def test_frames_per_coherence_invalid_frame(self):
        with pytest.raises(ValueError):
            DopplerModel().frames_per_coherence(0.0)

    def test_with_speed_copies_carrier(self):
        base = DopplerModel(speed_kmh=50.0, carrier_hz=1.9e9)
        fast = base.with_speed(80.0)
        assert fast.speed_kmh == 80.0
        assert fast.carrier_hz == 1.9e9

    def test_invalid_speed_rejected(self):
        with pytest.raises(ValueError):
            DopplerModel(speed_kmh=-5.0)

    def test_invalid_carrier_rejected(self):
        with pytest.raises(ValueError):
            DopplerModel(carrier_hz=-1.0)

    def test_higher_speed_shorter_coherence(self):
        slow = DopplerModel(speed_kmh=10.0)
        fast = DopplerModel(speed_kmh=80.0)
        assert fast.coherence_time_s < slow.coherence_time_s
