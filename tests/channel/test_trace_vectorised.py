"""Equivalence of the vectorised trace paths against per-step advancing.

The Fig. 5 trace generators used to loop ``advance()`` sample by sample;
they now draw their noise in one batch (same draw order, hence identical
random-stream consumption) and evaluate the AR(1) recursions as linear
filters.  These tests pin the equivalence with the loop implementation.
"""

import numpy as np
import pytest

from repro.channel.composite import CompositeChannel
from repro.channel.doppler import DopplerModel
from repro.channel.fading import RayleighFading
from repro.channel.manager import ChannelManager
from repro.channel.shadowing import LogNormalShadowing

DOPPLER = DopplerModel(speed_kmh=50.0)


def loop_trace(process, n, dt=None):
    return np.array([process.advance(dt) for _ in range(n)])


class TestRayleighTrace:
    def test_matches_advance_loop(self):
        vec = RayleighFading(100.0, 0.0025, np.random.default_rng(5))
        loop = RayleighFading(100.0, 0.0025, np.random.default_rng(5))
        np.testing.assert_allclose(
            vec.trace(2000), loop_trace(loop, 2000), rtol=1e-10, atol=1e-13
        )
        # Both paths leave the generator and the gain in the same state.
        assert vec.complex_gain == loop.complex_gain
        assert vec._rng.bit_generator.state == loop._rng.bit_generator.state

    def test_custom_dt_matches_loop(self):
        vec = RayleighFading(100.0, 0.0025, np.random.default_rng(6))
        loop = RayleighFading(100.0, 0.0025, np.random.default_rng(6))
        np.testing.assert_allclose(
            vec.trace(500, dt=0.001), loop_trace(loop, 500, dt=0.001),
            rtol=1e-10, atol=1e-13,
        )

    def test_trace_continues_from_current_state(self):
        fading = RayleighFading(100.0, 0.0025, np.random.default_rng(7))
        first = fading.trace(10)
        second = fading.trace(10)
        assert not np.array_equal(first, second)

    def test_empty_and_invalid(self):
        fading = RayleighFading(100.0, 0.0025, np.random.default_rng(0))
        assert fading.trace(0).shape == (0,)
        with pytest.raises(ValueError):
            fading.trace(-1)
        with pytest.raises(ValueError):
            fading.trace(5, dt=-0.1)


class TestShadowingTrace:
    def test_matches_advance_loop(self):
        vec = LogNormalShadowing(rng=np.random.default_rng(8))
        loop = LogNormalShadowing(rng=np.random.default_rng(8))
        levels = []
        for _ in range(2000):
            loop.advance()
            levels.append(loop.level_db)
        np.testing.assert_allclose(
            vec.trace_db(2000), np.array(levels), rtol=1e-9, atol=1e-9
        )
        assert vec._rng.bit_generator.state == loop._rng.bit_generator.state

    def test_zero_std_is_constant_without_draws(self):
        shadowing = LogNormalShadowing(std_db=0.0, mean_db=-1.5,
                                       rng=np.random.default_rng(9))
        state = shadowing._rng.bit_generator.state
        trace = shadowing.trace_db(50)
        assert np.all(trace == -1.5)
        assert shadowing._rng.bit_generator.state == state


class TestCompositeTrace:
    def test_matches_advance_loop(self):
        vec = CompositeChannel(DOPPLER, rng=np.random.default_rng(10))
        loop = CompositeChannel(DOPPLER, rng=np.random.default_rng(10))
        np.testing.assert_allclose(
            vec.trace(2000), loop_trace(loop, 2000), rtol=1e-9, atol=1e-12
        )
        # Subsequent advancing agrees too: the trace left both sub-process
        # states and the shared generator in the loop path's state.
        np.testing.assert_allclose(
            [vec.advance() for _ in range(5)],
            [loop.advance() for _ in range(5)],
            rtol=1e-9,
        )

    def test_zero_shadow_std_matches_loop_exactly(self):
        vec = CompositeChannel(DOPPLER, rng=np.random.default_rng(11),
                               shadow_std_db=0.0)
        loop = CompositeChannel(DOPPLER, rng=np.random.default_rng(11),
                                shadow_std_db=0.0)
        np.testing.assert_allclose(
            vec.trace(500), loop_trace(loop, 500), rtol=1e-12
        )


class TestManagerBlockAdvance:
    @pytest.mark.parametrize("shadow_std", [4.0, 0.0])
    def test_block_bit_identical_to_per_frame(self, shadow_std):
        per_frame = ChannelManager(40, DOPPLER, rng=np.random.default_rng(3),
                                   shadow_std_db=shadow_std)
        blocked = ChannelManager(40, DOPPLER, rng=np.random.default_rng(3),
                                 shadow_std_db=shadow_std)
        singles = [per_frame.advance_frame() for _ in range(70)]
        blocks = (
            blocked.advance_block(32)
            + blocked.advance_block(32)
            + blocked.advance_block(6)
        )
        for single, block in zip(singles, blocks):
            assert single.frame_index == block.frame_index
            assert np.array_equal(single.amplitude, block.amplitude)
            assert np.array_equal(single.snr_db, block.snr_db)
        # The states (and streams) continue identically after the block.
        follow_a = per_frame.advance_frame()
        follow_b = blocked.advance_frame()
        assert np.array_equal(follow_a.amplitude, follow_b.amplitude)

    def test_block_validates_and_handles_empty(self):
        manager = ChannelManager(4, DOPPLER, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            manager.advance_block(-1)
        assert manager.advance_block(0) == []

    def test_mixed_speed_population_falls_back(self):
        dopplers = [DopplerModel(speed_kmh=30.0), DopplerModel(speed_kmh=80.0)]
        blocked = ChannelManager(2, dopplers, rng=np.random.default_rng(4))
        per_frame = ChannelManager(2, dopplers, rng=np.random.default_rng(4))
        blocks = blocked.advance_block(10)
        singles = [per_frame.advance_frame() for _ in range(10)]
        for single, block in zip(singles, blocks):
            assert np.array_equal(single.amplitude, block.amplitude)
