"""Tests for the short-term fading samplers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.fading import JakesFading, RayleighFading, clarke_correlation


class TestClarkeCorrelation:
    def test_zero_lag_is_unity(self):
        assert clarke_correlation(100.0, 0.0) == pytest.approx(1.0, abs=1e-9)

    def test_decreases_initially_with_lag(self):
        r1 = clarke_correlation(100.0, 0.001)
        r2 = clarke_correlation(100.0, 0.003)
        assert r1 > r2

    def test_clamped_to_nonnegative(self):
        # Far beyond the first Bessel zero the raw J0 goes negative; we clamp.
        assert clarke_correlation(100.0, 1.0) >= 0.0

    def test_clamped_below_one(self):
        assert clarke_correlation(0.0, 0.0025) < 1.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            clarke_correlation(-1.0, 0.001)
        with pytest.raises(ValueError):
            clarke_correlation(100.0, -0.001)

    @given(
        st.floats(min_value=0.0, max_value=500.0),
        st.floats(min_value=0.0, max_value=0.1),
    )
    def test_always_in_unit_interval(self, fd, dt):
        rho = clarke_correlation(fd, dt)
        assert 0.0 <= rho < 1.0


class TestRayleighFading:
    def _make(self, seed=0, fd=100.0, dt=0.0025, **kw):
        return RayleighFading(fd, dt, np.random.default_rng(seed), **kw)

    def test_envelope_positive(self):
        fading = self._make()
        for _ in range(100):
            assert fading.advance() > 0.0

    def test_mean_square_close_to_unity(self):
        """The paper normalises E[c_s^2] = 1."""
        fading = self._make(seed=1)
        samples = fading.trace(20000)
        assert np.mean(samples**2) == pytest.approx(1.0, rel=0.1)

    def test_mean_square_scaling(self):
        fading = self._make(seed=2, mean_square=4.0)
        samples = fading.trace(20000)
        assert np.mean(samples**2) == pytest.approx(4.0, rel=0.15)

    def test_envelope_rayleigh_median(self):
        """Median of a Rayleigh envelope with E[x^2]=1 is sigma*sqrt(2 ln 2)."""
        fading = self._make(seed=3)
        samples = fading.trace(40000)
        expected_median = math.sqrt(0.5) * math.sqrt(2.0 * math.log(2.0))
        assert np.median(samples) == pytest.approx(expected_median, rel=0.1)

    def test_correlation_follows_clarke(self):
        fading = self._make(seed=4, fd=100.0, dt=0.0025)
        assert fading.correlation == pytest.approx(
            clarke_correlation(100.0, 0.0025), abs=1e-12
        )

    def test_faster_doppler_decorelates_faster(self):
        slow = self._make(seed=5, fd=20.0)
        fast = self._make(seed=5, fd=200.0)
        assert fast.correlation < slow.correlation

    def test_reproducible_with_same_seed(self):
        a = self._make(seed=7).trace(50)
        b = self._make(seed=7).trace(50)
        np.testing.assert_allclose(a, b)

    def test_different_seeds_differ(self):
        a = self._make(seed=8).trace(50)
        b = self._make(seed=9).trace(50)
        assert not np.allclose(a, b)

    def test_reset_redraws_state(self):
        fading = self._make(seed=10)
        before = fading.envelope
        fading.reset()
        # The probability of drawing the exact same complex gain is zero.
        assert fading.envelope != pytest.approx(before, abs=0.0)

    def test_custom_dt_advance(self):
        fading = self._make(seed=11)
        value = fading.advance(dt=0.010)
        assert value > 0.0

    def test_invalid_dt_rejected(self):
        fading = self._make()
        with pytest.raises(ValueError):
            fading.advance(dt=0.0)

    def test_invalid_constructor_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            RayleighFading(100.0, 0.0, rng)
        with pytest.raises(ValueError):
            RayleighFading(100.0, 0.0025, rng, mean_square=0.0)

    def test_trace_length(self):
        fading = self._make()
        assert fading.trace(17).shape == (17,)
        assert fading.trace(0).shape == (0,)

    def test_trace_negative_rejected(self):
        with pytest.raises(ValueError):
            self._make().trace(-1)

    def test_power_is_envelope_squared(self):
        fading = self._make(seed=12)
        assert fading.power == pytest.approx(fading.envelope**2)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_envelope_never_negative_property(self, seed):
        fading = self._make(seed=seed)
        assert np.all(fading.trace(32) >= 0.0)


class TestJakesFading:
    def test_mean_square_close_to_unity(self):
        gen = JakesFading(100.0, n_oscillators=32, rng=np.random.default_rng(0))
        trace = gen.trace(duration_s=2.0, sample_interval_s=0.0005)
        assert np.mean(trace**2) == pytest.approx(1.0, rel=0.2)

    def test_trace_shape(self):
        gen = JakesFading(100.0, rng=np.random.default_rng(1))
        trace = gen.trace(duration_s=1.0, sample_interval_s=0.001)
        assert trace.shape == (1000,)

    def test_exhibits_deep_fades(self):
        """A Rayleigh trace over many coherence times must dip well below its mean."""
        gen = JakesFading(100.0, n_oscillators=32, rng=np.random.default_rng(2))
        trace = gen.trace(duration_s=2.0, sample_interval_s=0.0005)
        assert trace.min() < 0.2 * trace.mean()

    def test_continuity(self):
        """Adjacent samples (well inside the coherence time) stay close."""
        gen = JakesFading(50.0, rng=np.random.default_rng(3))
        trace = gen.trace(duration_s=0.5, sample_interval_s=1e-4)
        steps = np.abs(np.diff(trace))
        assert steps.max() < 0.5

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            JakesFading(0.0)
        with pytest.raises(ValueError):
            JakesFading(100.0, n_oscillators=0)
        with pytest.raises(ValueError):
            JakesFading(100.0, mean_square=0.0)
        with pytest.raises(ValueError):
            JakesFading(100.0).trace(0.0, 0.001)

    def test_envelope_at_accepts_array(self):
        gen = JakesFading(100.0, rng=np.random.default_rng(4))
        values = gen.envelope_at(np.array([0.0, 0.01, 0.02]))
        assert values.shape == (3,)
        assert np.all(values >= 0.0)
