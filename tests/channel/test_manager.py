"""Tests for the vectorised channel manager."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.doppler import DopplerModel
from repro.channel.manager import ChannelManager, ChannelSnapshot


def make(n_users=8, seed=0, **kw):
    kw.setdefault("rng", np.random.default_rng(seed))
    return ChannelManager(n_users, DopplerModel(speed_kmh=50.0), **kw)


class TestChannelManager:
    def test_snapshot_shapes(self):
        mgr = make(n_users=5)
        snap = mgr.advance_frame()
        assert isinstance(snap, ChannelSnapshot)
        assert snap.amplitude.shape == (5,)
        assert snap.snr_db.shape == (5,)
        assert snap.n_users == 5

    def test_amplitudes_positive(self):
        mgr = make(n_users=16, seed=1)
        for _ in range(50):
            snap = mgr.advance_frame()
            assert np.all(snap.amplitude > 0.0)

    def test_frame_counter_increments(self):
        mgr = make()
        assert mgr.frame_index == 0
        mgr.advance_frame()
        mgr.advance_frame()
        assert mgr.frame_index == 2

    def test_zero_users_is_legal(self):
        mgr = make(n_users=0)
        snap = mgr.advance_frame()
        assert snap.amplitude.shape == (0,)

    def test_users_fade_independently(self):
        """Different users' amplitude traces should be essentially uncorrelated."""
        mgr = make(n_users=2, seed=2, shadow_std_db=0.0)
        trace = np.array([mgr.advance_frame().amplitude for _ in range(4000)])
        corr = np.corrcoef(trace[:, 0], trace[:, 1])[0, 1]
        assert abs(corr) < 0.12

    def test_mean_square_near_unity_without_shadowing(self):
        mgr = make(n_users=4, seed=3, shadow_std_db=0.0)
        trace = np.array([mgr.advance_frame().amplitude for _ in range(8000)])
        assert np.mean(trace**2) == pytest.approx(1.0, rel=0.1)

    def test_snr_is_mean_snr_plus_amplitude_db(self):
        mgr = make(n_users=3, seed=4, mean_snr_db=15.0)
        snap = mgr.advance_frame()
        expected = 15.0 + 20.0 * np.log10(snap.amplitude)
        np.testing.assert_allclose(snap.snr_db, expected)

    def test_reproducible_with_same_seed(self):
        a = make(seed=5).advance_frame().amplitude
        b = make(seed=5).advance_frame().amplitude
        np.testing.assert_allclose(a, b)

    def test_reset_restores_frame_counter(self):
        mgr = make(seed=6)
        mgr.advance_frame()
        mgr.reset()
        assert mgr.frame_index == 0

    def test_per_user_doppler_list(self):
        dopplers = [DopplerModel(speed_kmh=10.0), DopplerModel(speed_kmh=80.0)]
        mgr = ChannelManager(2, dopplers, rng=np.random.default_rng(0))
        assert mgr.dopplers[0].speed_kmh == 10.0
        assert mgr.dopplers[1].speed_kmh == 80.0

    def test_mismatched_doppler_list_rejected(self):
        with pytest.raises(ValueError):
            ChannelManager(3, [DopplerModel()] * 2)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ChannelManager(-1, DopplerModel())
        with pytest.raises(ValueError):
            ChannelManager(1, DopplerModel(), frame_duration_s=0.0)
        with pytest.raises(ValueError):
            ChannelManager(1, DopplerModel(), shadow_std_db=-1.0)
        with pytest.raises(ValueError):
            ChannelManager(1, DopplerModel(), shadow_decorrelation_s=0.0)

    def test_snapshot_accessors(self):
        mgr = make(n_users=4, seed=7)
        snap = mgr.advance_frame()
        assert snap.amplitude_of(2) == pytest.approx(snap.amplitude[2])
        assert snap.snr_db_of(2) == pytest.approx(snap.snr_db[2])

    def test_higher_speed_decorrelates_faster(self):
        slow = ChannelManager(1, DopplerModel(speed_kmh=5.0),
                              rng=np.random.default_rng(8), shadow_std_db=0.0)
        fast = ChannelManager(1, DopplerModel(speed_kmh=80.0),
                              rng=np.random.default_rng(8), shadow_std_db=0.0)
        slow_trace = np.array([slow.advance_frame().amplitude[0] for _ in range(3000)])
        fast_trace = np.array([fast.advance_frame().amplitude[0] for _ in range(3000)])

        def lag1(x):
            return np.corrcoef(x[:-1], x[1:])[0, 1]

        assert lag1(slow_trace) > lag1(fast_trace)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=40))
    def test_snapshot_shape_property(self, n_users):
        mgr = make(n_users=n_users, seed=9)
        snap = mgr.advance_frame()
        assert snap.amplitude.shape == (n_users,)
        assert np.all(np.isfinite(snap.amplitude))
