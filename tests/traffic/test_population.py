"""Unit tests of the struct-of-arrays terminal population.

The population's kernels must mirror the per-object ``Terminal`` semantics
*and* its RNG consumption exactly — the backend parity suite checks the end
result, these tests check the state machine step by step against a twin
object population driven from an identically seeded generator.
"""

import numpy as np
import pytest

from repro.config import SimulationParameters
from repro.traffic.generator import build_population
from repro.traffic.population import TerminalPopulation
from repro.traffic.terminal import Terminal

PARAMS = SimulationParameters()


def make_pair(n_voice=6, n_data=3, seed=42):
    objects = build_population(PARAMS, n_voice, n_data, np.random.default_rng(seed))
    population = TerminalPopulation(
        PARAMS, n_voice, n_data, np.random.default_rng(seed)
    )
    return objects, population


def advance_both(objects, population, frame):
    for terminal in objects:
        terminal.advance_frame(frame)
        terminal.drop_expired(frame)
    population.advance_frame(frame)
    population.drop_expired(frame)


class TestStateMirrorsObjects:
    def test_generation_and_drops_match_object_terminals(self):
        objects, population = make_pair()
        for frame in range(3000):
            advance_both(objects, population, frame)
        for index, terminal in enumerate(objects):
            view = population.views[index]
            assert view.buffer_occupancy == terminal.buffer_occupancy
            stats, ostats = view.stats, terminal.stats
            assert stats.voice_generated == ostats.voice_generated
            assert stats.voice_dropped == ostats.voice_dropped
            assert stats.data_generated == ostats.data_generated
            if terminal.is_voice:
                assert view.in_talkspurt == terminal.in_talkspurt

    def test_talkspurt_started_matches(self):
        objects, population = make_pair(n_voice=5, n_data=0, seed=3)
        for frame in range(2000):
            advance_both(objects, population, frame)
            for index, terminal in enumerate(objects):
                assert (
                    population.views[index].talkspurt_started()
                    == terminal.talkspurt_started()
                )

    def test_head_deadlines_match(self):
        objects, population = make_pair(seed=11)
        for frame in range(500):
            advance_both(objects, population, frame)
            for index, terminal in enumerate(objects):
                view = population.views[index]
                assert view.head_deadline_frames(frame) == terminal.head_deadline_frames(frame)
                assert view.head_waiting_frames(frame) == terminal.head_waiting_frames(frame)


class TestTransmit:
    def test_voice_transmit_outcomes(self):
        _, population = make_pair(n_voice=1, n_data=0, seed=1)
        frame = 0
        while population.occupancy[0] == 0:
            population.advance_frame(frame)
            frame += 1
        taken = population.transmit(0, max_packets=3, n_delivered=0, current_frame=frame)
        assert taken == 1  # voice buffers hold at most the head-of-line packet
        assert population.voice_errored[0] == 1
        assert population.voice_loss_total == 1
        assert population.occupancy[0] == 0
        assert population.head_created[0] == -1

    def test_data_transmit_records_delays_and_retransmissions(self):
        _, population = make_pair(n_voice=0, n_data=1, seed=5)
        frame = 0
        while population.occupancy[0] == 0:
            population.advance_frame(frame)
            frame += 1
        burst_frame = frame - 1  # the loop increments past the burst frame
        occupancy = int(population.occupancy[0])
        # Deliver two of four transmitted packets three frames later.
        later = burst_frame + 3
        n_transmitted = min(4, occupancy)
        taken = population.transmit(
            0, max_packets=4, n_delivered=2, current_frame=later
        )
        assert taken == 2  # data pops only delivered packets
        assert population.data_delivered[0] == 2
        assert population.data_retransmissions[0] == n_transmitted - 2
        assert population.data_delays(0) == [3, 3]
        assert population.occupancy[0] == occupancy - 2

    def test_transmit_validates_arguments(self):
        _, population = make_pair(n_voice=1, n_data=0)
        with pytest.raises(ValueError):
            population.transmit(0, max_packets=-1, n_delivered=0, current_frame=0)
        with pytest.raises(ValueError):
            population.transmit(0, max_packets=2, n_delivered=5, current_frame=0)


class TestMeasurementWindow:
    def test_pre_window_packets_excluded_from_outcomes(self):
        _, population = make_pair(n_voice=0, n_data=1, seed=5)
        frame = 0
        while population.occupancy[0] == 0:
            population.advance_frame(frame)
            frame += 1
        backlog = int(population.occupancy[0])
        population.begin_measurement(frame + 1)
        assert population.data_generated[0] == 0
        delivered = min(3, backlog)
        population.transmit(
            0, max_packets=delivered, n_delivered=delivered,
            current_frame=frame + 2,
        )
        # The backlog predates the window: nothing is counted.
        assert population.data_delivered[0] == 0
        assert population.data_delays(0) == []
        assert population.occupancy[0] == backlog - delivered

    def test_pre_window_voice_drops_not_counted(self):
        _, population = make_pair(n_voice=1, n_data=0, seed=1)
        frame = 0
        while population.occupancy[0] == 0:
            population.advance_frame(frame)
            frame += 1
        population.begin_measurement(frame + 1)
        dropped = population.drop_expired(frame + PARAMS.voice_deadline_frames)
        assert dropped == 1  # removed from the buffer...
        assert population.voice_dropped[0] == 0  # ...but not counted
        assert population.voice_loss_total == 0


class TestViews:
    def test_views_expose_terminal_api(self):
        _, population = make_pair()
        views = population.views
        assert views.dense_ids
        assert views.population is population
        assert len(views) == len(population)
        voice = views[0]
        data = views[population.n_voice]
        assert voice.is_voice and not voice.is_data
        assert data.is_data and not data.is_voice
        assert voice.kind.is_voice and data.kind.is_data
        assert [v.terminal_id for v in views] == list(range(len(population)))
        assert isinstance(voice, type(views[0]))

    def test_views_refuse_per_index_advance(self):
        _, population = make_pair()
        view = population.views[0]
        with pytest.raises(RuntimeError):
            view.advance_frame(0)
        with pytest.raises(RuntimeError):
            view.drop_expired(0)
        with pytest.raises(RuntimeError):
            view.begin_measurement(0)

    def test_peek_packets_materialises_buffer(self):
        _, population = make_pair(n_voice=0, n_data=1, seed=5)
        frame = 0
        while population.occupancy[0] == 0:
            population.advance_frame(frame)
            frame += 1
        view = population.views[0]
        packets = view.peek_packets(2)
        assert len(packets) == min(2, view.buffer_occupancy)
        assert all(p.kind.is_data for p in packets)
        assert all(p.terminal_id == 0 for p in packets)

    def test_view_stats_are_terminal_stats(self):
        from repro.traffic.terminal import TerminalStats

        _, population = make_pair()
        assert isinstance(population.views[0].stats, TerminalStats)


class TestConstruction:
    def test_rng_consumption_matches_build_population(self):
        """Construction draws leave the generator in the object layout's state."""
        rng_a = np.random.default_rng(77)
        rng_b = np.random.default_rng(77)
        build_population(PARAMS, 4, 3, rng_a)
        TerminalPopulation(PARAMS, 4, 3, rng_b)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_rejects_negative_sizes(self):
        with pytest.raises(ValueError):
            TerminalPopulation(PARAMS, -1, 0, np.random.default_rng(0))
