"""Tests for the voice and data traffic sources."""

import numpy as np
import pytest

from repro.config import SimulationParameters
from repro.traffic.data import DataSource
from repro.traffic.voice import VoiceActivity, VoiceSource

PARAMS = SimulationParameters()


def run_voice(seed=0, frames=40000, start_silent=True):
    source = VoiceSource(PARAMS, np.random.default_rng(seed), terminal_id=3,
                         start_silent=start_silent)
    packets, talkspurt_frames, starts = [], 0, 0
    for f in range(frames):
        generated = source.advance_frame(f)
        packets.extend(generated)
        if source.in_talkspurt:
            talkspurt_frames += 1
        if source.talkspurt_started():
            starts += 1
    return source, packets, talkspurt_frames, starts


class TestVoiceSource:
    def test_activity_factor_matches_means(self):
        source = VoiceSource(PARAMS, np.random.default_rng(0))
        assert source.activity_factor == pytest.approx(1.0 / 2.35, rel=1e-6)

    def test_long_run_activity_fraction(self):
        _, _, talkspurt_frames, _ = run_voice(seed=1, frames=80000)
        fraction = talkspurt_frames / 80000
        assert fraction == pytest.approx(1.0 / 2.35, abs=0.06)

    def test_packet_rate_during_talkspurt(self):
        """One packet per 20 ms, i.e. one packet every 8 frames of talkspurt."""
        source, packets, talkspurt_frames, _ = run_voice(seed=2, frames=40000)
        expected = talkspurt_frames / PARAMS.frames_per_voice_period
        assert len(packets) == pytest.approx(expected, rel=0.05)
        assert source.packets_generated == len(packets)

    def test_packets_carry_deadline(self):
        _, packets, _, _ = run_voice(seed=3, frames=5000)
        assert packets, "expected at least one packet"
        for p in packets[:50]:
            assert p.deadline_frame == p.created_frame + PARAMS.voice_deadline_frames
            assert p.terminal_id == 3

    def test_talkspurt_start_events_counted(self):
        _, _, _, starts = run_voice(seed=4, frames=80000)
        # 80000 frames = 200 s; one on/off cycle lasts ~2.35 s on average.
        assert 40 <= starts <= 140

    def test_initial_talkspurt_flagged(self):
        source = VoiceSource(PARAMS, np.random.default_rng(5), start_silent=False)
        source.advance_frame(0)
        assert source.talkspurt_started() or source.in_talkspurt

    def test_silence_generates_nothing(self):
        source = VoiceSource(PARAMS, np.random.default_rng(6), start_silent=True)
        generated = source.advance_frame(0)
        if source.activity is VoiceActivity.SILENCE:
            assert generated == []

    def test_negative_frame_rejected(self):
        source = VoiceSource(PARAMS, np.random.default_rng(7))
        with pytest.raises(ValueError):
            source.advance_frame(-1)

    def test_reproducible(self):
        a = run_voice(seed=8, frames=2000)[1]
        b = run_voice(seed=8, frames=2000)[1]
        assert [p.created_frame for p in a] == [p.created_frame for p in b]


class TestDataSource:
    def run(self, seed=0, frames=400000):
        source = DataSource(PARAMS, np.random.default_rng(seed), terminal_id=9)
        packets = []
        for f in range(frames):
            packets.extend(source.advance_frame(f))
        return source, packets

    def test_offered_load(self):
        source = DataSource(PARAMS, np.random.default_rng(0))
        # 100 packets per second on average = 0.25 packets per 2.5 ms frame.
        assert source.offered_load_packets_per_frame == pytest.approx(0.25)

    def test_long_run_rate_matches_offered_load(self):
        source, packets = self.run(seed=1, frames=400000)
        rate = len(packets) / 400000
        assert rate == pytest.approx(0.25, rel=0.25)
        assert source.packets_generated == len(packets)

    def test_burst_sizes_exponential_mean(self):
        source, packets = self.run(seed=2, frames=400000)
        assert source.bursts_generated > 0
        mean_burst = len(packets) / source.bursts_generated
        assert mean_burst == pytest.approx(PARAMS.mean_data_burst_packets, rel=0.3)

    def test_packets_have_no_deadline(self):
        _, packets = self.run(seed=3, frames=20000)
        assert packets
        assert all(p.deadline_frame is None for p in packets[:50])
        assert all(p.terminal_id == 9 for p in packets[:50])

    def test_bursts_arrive_on_frame_boundaries(self):
        _, packets = self.run(seed=4, frames=20000)
        # All packets of the same burst share a creation frame.
        frames = {}
        for p in packets:
            frames.setdefault(p.created_frame, 0)
            frames[p.created_frame] += 1
        assert all(count >= 1 for count in frames.values())

    def test_negative_frame_rejected(self):
        source = DataSource(PARAMS, np.random.default_rng(5))
        with pytest.raises(ValueError):
            source.advance_frame(-2)

    def test_reproducible(self):
        a = self.run(seed=6, frames=20000)[1]
        b = self.run(seed=6, frames=20000)[1]
        assert [p.created_frame for p in a] == [p.created_frame for p in b]
