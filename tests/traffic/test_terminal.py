"""Tests for terminals, permission gating and the population factory."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SimulationParameters
from repro.traffic.generator import build_population
from repro.traffic.packets import Packet, TrafficKind
from repro.traffic.permission import PermissionPolicy
from repro.traffic.terminal import DataTerminal, VoiceTerminal

PARAMS = SimulationParameters()


class TestVoiceTerminal:
    def _run_until_packet(self, term, max_frames=20000):
        for f in range(max_frames):
            term.advance_frame(f)
            if term.has_pending_packets:
                return f
        pytest.fail("voice terminal never generated a packet")

    def test_identity(self):
        term = VoiceTerminal(4, PARAMS, np.random.default_rng(0))
        assert term.terminal_id == 4
        assert term.is_voice and not term.is_data
        assert term.kind is TrafficKind.VOICE

    def test_generates_packets_and_counts_them(self):
        term = VoiceTerminal(0, PARAMS, np.random.default_rng(1), start_silent=False)
        self._run_until_packet(term)
        assert term.stats.voice_generated >= 1
        assert term.buffer_occupancy >= 1

    def test_drop_expired(self):
        term = VoiceTerminal(0, PARAMS, np.random.default_rng(2), start_silent=False)
        frame = self._run_until_packet(term)
        dropped = term.drop_expired(frame + PARAMS.voice_deadline_frames + 1)
        assert dropped >= 1
        assert term.stats.voice_dropped == dropped
        assert term.buffer_occupancy == 0

    def test_transmit_success_and_error_accounting(self):
        term = VoiceTerminal(0, PARAMS, np.random.default_rng(3), start_silent=False)
        frame = self._run_until_packet(term)
        # force two packets in the buffer for the accounting check
        term._buffer.append(Packet(kind=TrafficKind.VOICE, terminal_id=0,
                                   created_frame=frame, deadline_frame=frame + 8))
        taken = term.transmit(max_packets=2, n_delivered=1, current_frame=frame)
        assert taken == 2
        assert term.stats.voice_delivered == 1
        assert term.stats.voice_errored == 1
        assert term.buffer_occupancy == 0

    def test_transmit_validation(self):
        term = VoiceTerminal(0, PARAMS, np.random.default_rng(4))
        with pytest.raises(ValueError):
            term.transmit(max_packets=-1, n_delivered=0, current_frame=0)
        with pytest.raises(ValueError):
            term.transmit(max_packets=1, n_delivered=1, current_frame=0)  # empty buffer

    def test_head_deadline(self):
        term = VoiceTerminal(0, PARAMS, np.random.default_rng(5), start_silent=False)
        frame = self._run_until_packet(term)
        assert term.head_deadline_frames(frame) == PARAMS.voice_deadline_frames
        assert term.head_waiting_frames(frame) == 0

    def test_invalid_id(self):
        with pytest.raises(ValueError):
            VoiceTerminal(-1, PARAMS, np.random.default_rng(0))


class TestDataTerminal:
    def _run_until_packet(self, term, max_frames=20000):
        for f in range(max_frames):
            term.advance_frame(f)
            if term.has_pending_packets:
                return f
        pytest.fail("data terminal never generated a burst")

    def test_identity(self):
        term = DataTerminal(7, PARAMS, np.random.default_rng(0))
        assert term.is_data and not term.is_voice

    def test_data_never_expires(self):
        term = DataTerminal(0, PARAMS, np.random.default_rng(1))
        frame = self._run_until_packet(term)
        assert term.drop_expired(frame + 100000) == 0

    def test_failed_data_packets_stay_buffered(self):
        term = DataTerminal(0, PARAMS, np.random.default_rng(2))
        frame = self._run_until_packet(term)
        before = term.buffer_occupancy
        delivered = term.transmit(max_packets=min(3, before), n_delivered=0,
                                  current_frame=frame + 4)
        assert delivered == 0
        assert term.buffer_occupancy == before
        assert term.stats.data_retransmissions == min(3, before)

    def test_delivered_data_records_delay(self):
        term = DataTerminal(0, PARAMS, np.random.default_rng(3))
        frame = self._run_until_packet(term)
        n = min(2, term.buffer_occupancy)
        term.transmit(max_packets=n, n_delivered=n, current_frame=frame + 6)
        assert term.stats.data_delivered == n
        assert all(d == 6 for d in term.stats.data_delay_frames)
        assert term.stats.mean_data_delay_frames == pytest.approx(6.0)

    def test_peek_does_not_remove(self):
        term = DataTerminal(0, PARAMS, np.random.default_rng(4))
        self._run_until_packet(term)
        before = term.buffer_occupancy
        peeked = term.peek_packets(min(5, before))
        assert len(peeked) == min(5, before)
        assert term.buffer_occupancy == before
        with pytest.raises(ValueError):
            term.peek_packets(-1)


class TestPermissionPolicy:
    def test_probability_lookup(self):
        policy = PermissionPolicy(0.5, 0.25, np.random.default_rng(0))
        assert policy.probability_for(TrafficKind.VOICE) == 0.5
        assert policy.probability_for(TrafficKind.DATA) == 0.25

    def test_empirical_rates(self):
        policy = PermissionPolicy(0.5, 0.25, np.random.default_rng(1))
        voice_rate = np.mean([policy.permits(TrafficKind.VOICE) for _ in range(4000)])
        data_rate = np.mean([policy.permits(TrafficKind.DATA) for _ in range(4000)])
        assert voice_rate == pytest.approx(0.5, abs=0.05)
        assert data_rate == pytest.approx(0.25, abs=0.05)

    def test_unity_probability_always_permits(self):
        policy = PermissionPolicy(1.0, 1.0, np.random.default_rng(2))
        assert all(policy.permits(TrafficKind.VOICE) for _ in range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            PermissionPolicy(0.0, 0.5, np.random.default_rng(0))
        with pytest.raises(ValueError):
            PermissionPolicy(0.5, 1.5, np.random.default_rng(0))


class TestBuildPopulation:
    def test_counts_and_ordering(self):
        pop = build_population(PARAMS, 3, 2, np.random.default_rng(0))
        assert len(pop) == 5
        assert all(t.is_voice for t in pop[:3])
        assert all(t.is_data for t in pop[3:])
        assert [t.terminal_id for t in pop] == [0, 1, 2, 3, 4]

    def test_empty_population(self):
        assert build_population(PARAMS, 0, 0, np.random.default_rng(0)) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            build_population(PARAMS, -1, 0, np.random.default_rng(0))

    def test_voice_terminals_start_silent(self):
        """Calls begin in silence so the protocols never face a synchronised
        cold-start burst of contention (talkspurts ramp up during warm-up)."""
        pop = build_population(PARAMS, 50, 0, np.random.default_rng(1))
        assert all(not t.in_talkspurt for t in pop)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=30))
    def test_population_size_property(self, nv, nd):
        pop = build_population(PARAMS, nv, nd, np.random.default_rng(2))
        assert len(pop) == nv + nd
        assert sum(t.is_voice for t in pop) == nv
