"""Tests for packet and traffic-kind definitions."""

import pytest

from repro.traffic.packets import Packet, TrafficKind


class TestTrafficKind:
    def test_voice_flags(self):
        assert TrafficKind.VOICE.is_voice
        assert not TrafficKind.VOICE.is_data

    def test_data_flags(self):
        assert TrafficKind.DATA.is_data
        assert not TrafficKind.DATA.is_voice


class TestPacket:
    def test_voice_requires_deadline(self):
        with pytest.raises(ValueError):
            Packet(kind=TrafficKind.VOICE, terminal_id=0, created_frame=0)

    def test_deadline_must_follow_creation(self):
        with pytest.raises(ValueError):
            Packet(kind=TrafficKind.VOICE, terminal_id=0, created_frame=5,
                   deadline_frame=5)

    def test_negative_created_frame_rejected(self):
        with pytest.raises(ValueError):
            Packet(kind=TrafficKind.DATA, terminal_id=0, created_frame=-1)

    def test_voice_expiry(self):
        p = Packet(kind=TrafficKind.VOICE, terminal_id=0, created_frame=10,
                   deadline_frame=18)
        assert not p.is_expired(17)
        assert p.is_expired(18)
        assert p.frames_to_deadline(12) == 6
        assert p.frames_to_deadline(30) == 0

    def test_data_never_expires(self):
        p = Packet(kind=TrafficKind.DATA, terminal_id=1, created_frame=0)
        assert not p.is_expired(10_000)
        assert p.frames_to_deadline(10_000) is None

    def test_waiting_frames(self):
        p = Packet(kind=TrafficKind.DATA, terminal_id=1, created_frame=7)
        assert p.waiting_frames(7) == 0
        assert p.waiting_frames(20) == 13

    def test_sequence_monotone(self):
        a = Packet(kind=TrafficKind.DATA, terminal_id=0, created_frame=0)
        b = Packet(kind=TrafficKind.DATA, terminal_id=0, created_frame=0)
        assert b.sequence > a.sequence
