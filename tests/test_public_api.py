"""Tests for the top-level public API surface."""

import importlib

import pytest

import repro


class TestLazyTopLevelApi:
    def test_version_available(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_lazy_attributes_resolve(self):
        assert repro.SimulationParameters is not None
        assert repro.Scenario is not None
        assert callable(repro.run_simulation)
        assert callable(repro.sweep_spec)
        assert callable(repro.create_protocol)
        assert repro.SimulationResult is not None

    def test_experiment_api_exposed_lazily(self):
        assert repro.ExperimentSpec is not None
        assert repro.SweepAxis is not None
        assert repro.ResultSet is not None
        assert callable(repro.run_experiment)
        assert repro.SerialExecutor is not None
        assert repro.ParallelExecutor is not None

    def test_store_api_exposed_lazily(self):
        assert repro.ResultStore is not None
        assert repro.CachingExecutor is not None
        assert repro.AsyncExecutor is not None

    def test_legacy_sweep_shims_removed(self):
        with pytest.raises(AttributeError):
            repro.run_sweep
        from repro.sim import runner
        for name in ("run_many", "run_sweep", "run_protocol_comparison"):
            assert not hasattr(runner, name)

    def test_available_protocols_exposed(self):
        assert "charisma" in repro.available_protocols()

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_symbol

    def test_lazy_attribute_cached(self):
        first = repro.SimulationParameters
        second = repro.SimulationParameters
        assert first is second

    def test_end_to_end_through_public_api(self):
        params = repro.SimulationParameters()
        scenario = repro.Scenario(protocol="charisma", n_voice=3, n_data=1,
                                  duration_s=0.5, warmup_s=0.25, seed=1)
        result = repro.run_simulation(scenario, params)
        assert 0.0 <= result.voice.loss_rate <= 1.0


class TestSubpackageImports:
    @pytest.mark.parametrize("module", [
        "repro.channel", "repro.phy", "repro.traffic", "repro.mac",
        "repro.core", "repro.sim", "repro.metrics", "repro.analysis",
        "repro.cli", "repro.config", "repro.api", "repro.store",
    ])
    def test_importable(self, module):
        assert importlib.import_module(module) is not None

    @pytest.mark.parametrize("module", [
        "repro.channel", "repro.phy", "repro.traffic", "repro.mac",
        "repro.core", "repro.sim", "repro.metrics", "repro.analysis",
        "repro.api", "repro.store",
    ])
    def test_all_exports_exist(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name} missing"
