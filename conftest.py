"""Repository-level pytest configuration.

Ensures the ``src`` layout is importable even when the package has not been
installed (e.g. running the test-suite straight from a source checkout on an
offline machine), and registers the shared benchmark/test options.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
