"""Cross-beam coupling: frequency-reuse interference and handover planning.

Both couplings act only at macro-block boundaries — the synchronisation
point the wavefront-batching literature uses for irregular cross-tile
interaction — so the per-beam hot loops stay untouched:

* **Interference**: each beam reports its busy load; co-channel beams
  (same ``beam % reuse_factor`` group) fold the mean load of their peers,
  scaled by ``coupling_db``, into their channel as an SNR penalty.
* **Handover**: idle voice terminals migrate between beams by swapping
  state with an idle peer slot.  Decisions are drawn serially from one
  dedicated RNG between blocks, so results are independent of how many
  worker threads step the shards.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

import numpy as np

from repro.lint.contracts import kernel

__all__ = [
    "beam_busy_load",
    "interference_offsets",
    "plan_handovers",
    "HandoverSwap",
]

#: One planned migration: ``((beam_a, local_a), (beam_b, local_b))`` —
#: the two slots swap their full terminal state at the block boundary.
HandoverSwap = Tuple[Tuple[int, int], Tuple[int, int]]


@kernel
def beam_busy_load(in_talkspurt: np.ndarray, occupancy: np.ndarray) -> float:
    """Fraction of a beam's terminals currently loading the channel.

    A terminal counts as busy while inside a talkspurt or holding queued
    packets — the state that translates into uplink transmissions and
    hence co-channel interference seen by reuse partners.
    """
    n = in_talkspurt.shape[0]
    if n == 0:
        return 0.0
    busy = np.count_nonzero(in_talkspurt | (occupancy > 0))
    return float(busy) / float(n)


@kernel
def interference_offsets(
    loads: np.ndarray, reuse_factor: int, coupling_db: float
) -> np.ndarray:
    """Per-beam SNR penalty (dB) from co-channel busy loads.

    Beams ``b`` and ``b'`` interfere iff ``b % reuse_factor == b' %
    reuse_factor``.  Each beam's penalty is ``coupling_db`` scaled by the
    mean busy load of its *other* co-channel beams, so a fully loaded
    reuse group costs exactly ``coupling_db`` and an idle one costs
    nothing.  All-zero when coupling is disabled or no beam shares a
    channel, preserving the degenerate case bit-exactly.
    """
    loads = np.asarray(loads, dtype=np.float64)
    n = loads.shape[0]
    offsets = np.zeros(n, dtype=np.float64)
    if coupling_db <= 0.0 or n <= 1:
        return offsets
    groups = np.arange(n, dtype=np.int64) % int(reuse_factor)
    for g in range(int(reuse_factor)):
        mask = groups == g
        members = int(np.count_nonzero(mask))
        if members <= 1:
            continue
        total = float(loads[mask].sum())
        offsets[mask] = coupling_db * (total - loads[mask]) / (members - 1)
    return offsets


def plan_handovers(
    eligible: Sequence[Sequence[int]],
    handover_rate: float,
    rng: np.random.Generator,
) -> List[HandoverSwap]:
    """Plan this block's idle-terminal migrations as swap pairs.

    Walks beams and their eligible terminals in deterministic order,
    drawing one uniform per candidate; a candidate migrating with
    probability ``handover_rate`` is paired with the lowest eligible slot
    of a uniformly drawn other beam.  Each slot participates in at most
    one swap per block.  The draw sequence depends only on the eligibility
    sets, never on thread scheduling, so threaded and serial constellation
    runs plan identical handovers.
    """
    n_beams = len(eligible)
    if n_beams < 2 or handover_rate <= 0.0:
        return []
    pools: List[List[int]] = [sorted(int(i) for i in ids) for ids in eligible]
    taken: List[Set[int]] = [set() for _ in range(n_beams)]
    swaps: List[HandoverSwap] = []
    for beam in range(n_beams):
        for local in pools[beam]:
            if local in taken[beam]:
                continue
            if rng.random() >= handover_rate:
                continue
            targets = [
                b
                for b in range(n_beams)
                if b != beam
                and any(peer not in taken[b] for peer in pools[b])
            ]
            if not targets:
                continue
            target = targets[int(rng.integers(len(targets)))]
            peer = next(p for p in pools[target] if p not in taken[target])
            taken[beam].add(local)
            taken[target].add(peer)
            swaps.append(((beam, local), (target, peer)))
    return swaps
