"""Step N beam shards in parallel with cross-beam coupling at block barriers.

The :class:`ConstellationRunner` owns one :class:`~repro.constellation.shard.
BeamShard` per beam and advances them through the existing columnar/macro
kernels.  Between macro blocks — and only there — it applies the cross-beam
couplings (interference offsets, terminal handover) and records per-beam
load-imbalance through :mod:`repro.obs.metrics`.  Shards are stepped by a
thread pool by default: the block kernels spend their time in NumPy (which
releases the GIL), shards share no mutable state between barriers, and the
handover RNG is consumed serially by the coordinator, so threaded and
serial runs produce identical merged results.

When no coupling is active (one beam, or ``handover_rate == 0`` and
``coupling_db == 0``) each shard advances whole warm-up/measured phases in
single ``run_frames`` calls — the exact call pattern of
``UplinkSimulationEngine.run()`` — which is what makes the single-beam
degenerate case bit-identical to the plain :class:`~repro.sim.scenario.
Scenario` path in parity RNG mode.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, cast

import numpy as np

from repro.config import SimulationParameters
from repro.constellation.coupling import interference_offsets, plan_handovers
from repro.constellation.scenario import ConstellationScenario
from repro.constellation.shard import BeamShard
from repro.lint.contracts import kernel
from repro.metrics.collector import MacStats
from repro.metrics.data import DataMetrics
from repro.metrics.voice import VoiceMetrics
from repro.obs import clock as _clock
from repro.obs import metrics as _metrics
from repro.sim.results import SimulationResult
from repro.sim.rng import child_stream

__all__ = [
    "ConstellationResult",
    "ConstellationRunner",
    "lpt_assign",
    "resolve_workers",
    "run_constellation",
    "WORKERS_ENV",
]

#: Environment override for the shard-stepping worker-thread count.
WORKERS_ENV = "REPRO_CONSTELLATION_WORKERS"


def resolve_workers(
    scenario: ConstellationScenario, n_workers: Optional[int] = None
) -> int:
    """Worker-thread count: explicit arg, else env, else a machine default."""
    if n_workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            n_workers = int(env)
    if n_workers is None:
        n_workers = min(scenario.n_beams, os.cpu_count() or 1, 8)
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    return min(int(n_workers), scenario.n_beams)


@kernel
def lpt_assign(costs: np.ndarray, n_workers: int) -> np.ndarray:
    """Longest-processing-time-first shard→worker assignment.

    Places each shard, in decreasing cost order, on the currently lightest
    worker — the classic 4/3-approximate makespan heuristic, which is what
    keeps the block barrier from waiting on one overloaded thread when
    beam loads diverge.  Returns the worker index per shard.  The sort is
    stable, so ties break by beam order and the assignment is
    deterministic.
    """
    costs = np.asarray(costs, dtype=np.float64)
    n = costs.shape[0]
    workers = np.zeros(n, dtype=np.int64)
    if n_workers <= 1 or n <= 1:
        return workers
    order = np.argsort(-costs, kind="stable")
    totals = np.zeros(int(n_workers), dtype=np.float64)
    for shard_index in order:
        lightest = int(np.argmin(totals))
        workers[shard_index] = lightest
        totals[lightest] += costs[shard_index]
    return workers


@dataclass(frozen=True)
class ConstellationResult:
    """Merged plus per-beam results of one constellation run.

    Attributes
    ----------
    scenario:
        The constellation that was simulated.
    merged:
        Constellation-aggregate :class:`SimulationResult` (counters summed,
        delay samples concatenated, shared frame window).  This is what
        flows into the store/serialization path.
    beams:
        One per-beam :class:`SimulationResult`, in beam order.
    handovers:
        Total terminal migrations executed across the whole run.
    n_workers:
        Worker threads used to step the shards.
    """

    scenario: ConstellationScenario
    merged: SimulationResult
    beams: Tuple[SimulationResult, ...]
    handovers: int
    n_workers: int

    def summary(self) -> Dict[str, object]:
        """Flat summary of the merged result plus constellation extras."""
        summary: Dict[str, object] = dict(self.merged.summary())
        summary["n_beams"] = self.scenario.n_beams
        summary["handovers"] = self.handovers
        return summary


class ConstellationRunner:
    """Advance every beam shard through warm-up and measurement."""

    def __init__(
        self,
        scenario: ConstellationScenario,
        params: Optional[SimulationParameters] = None,
        n_workers: Optional[int] = None,
    ) -> None:
        self.scenario = scenario
        self.params = params if params is not None else SimulationParameters()
        self.n_workers = resolve_workers(scenario, n_workers)
        self.shards: List[BeamShard] = [
            BeamShard(beam, scenario, self.params)
            for beam in range(scenario.n_beams)
        ]
        # Handover decisions are drawn serially by the coordinator from a
        # dedicated labelled stream — independent of every beam's streams
        # and of the worker count.
        self._handover_rng = child_stream(
            np.random.SeedSequence(scenario.seed),  # master-seed child, labelled below; no ambient entropy. lint: allow[RNG001]
            "constellation.handover",
        )
        self.handovers = 0
        self._blocks_done = 0
        self._pool: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------ API
    def run(self) -> ConstellationResult:
        """Run warm-up plus the measured period on every shard."""
        scenario = self.scenario
        warmup = scenario.warmup_frames(self.params)
        measured = scenario.measured_frames(self.params)
        try:
            if scenario.has_coupling:
                self._run_phase(warmup)
                for shard in self.shards:
                    shard.begin_measurement()
                self._run_phase(measured)
            else:
                # Uncoupled shards advance whole phases in one call each —
                # the exact frame chunking of ``engine.run()``, preserving
                # single-beam bit-identity with the plain Scenario path.
                self._step_all(warmup)
                for shard in self.shards:
                    shard.begin_measurement()
                self._step_all(measured)
        finally:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
        beams = tuple(shard.result() for shard in self.shards)
        merged = self._merge(beams)
        self._report_load(final=True)
        metrics = _metrics.METRICS
        metrics.gauge("constellation.handovers", float(self.handovers))
        return ConstellationResult(
            scenario=scenario,
            merged=merged,
            beams=beams,
            handovers=self.handovers,
            n_workers=self.n_workers,
        )

    # ------------------------------------------------------------- phases
    def _run_phase(self, n_frames: int) -> None:
        """Advance a phase block by block, coupling at each barrier."""
        block = self.scenario.macro_frames
        remaining = n_frames
        while remaining > 0:
            if self._blocks_done > 0:
                self._apply_coupling()
            step = block if block < remaining else remaining
            self._step_all(step)
            remaining -= step
            self._blocks_done += 1

    def _step_all(self, n_frames: int) -> None:
        """Advance every shard by ``n_frames``, threaded when configured."""
        if n_frames <= 0:
            return
        shards = self.shards
        if self.n_workers <= 1 or len(shards) <= 1:
            for shard in shards:
                self._step_shard(shard, n_frames)
            return
        assignment = lpt_assign(
            np.array([shard.cost_ema for shard in shards]), self.n_workers
        )
        buckets: List[List[BeamShard]] = [[] for _ in range(self.n_workers)]
        for index, worker in enumerate(assignment):
            buckets[int(worker)].append(shards[index])
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_workers,
                thread_name_prefix="constellation",
            )
        futures = [
            self._pool.submit(self._step_bucket, bucket, n_frames)
            for bucket in buckets
            if bucket
        ]
        for future in futures:
            future.result()
        self._report_load(final=False)

    def _step_bucket(self, bucket: List[BeamShard], n_frames: int) -> None:
        for shard in bucket:
            self._step_shard(shard, n_frames)

    @staticmethod
    def _step_shard(shard: BeamShard, n_frames: int) -> None:
        started = _clock.now()
        shard.run_frames(n_frames)
        shard.observe_cost(_clock.now() - started, n_frames)

    # ----------------------------------------------------------- coupling
    def _apply_coupling(self) -> None:
        """Exchange cross-beam state at a macro-block barrier."""
        scenario = self.scenario
        if scenario.coupling_db > 0.0 and scenario.n_beams > 1:
            loads = np.array(
                [shard.busy_load() for shard in self.shards], dtype=np.float64
            )
            offsets = interference_offsets(
                loads, scenario.reuse_factor, scenario.coupling_db
            )
            for shard, offset in zip(self.shards, offsets):
                shard.set_interference_db(float(offset))
        if scenario.handover_rate > 0.0 and scenario.n_beams > 1:
            eligible = [shard.eligible_handover_ids() for shard in self.shards]
            swaps = plan_handovers(
                eligible, scenario.handover_rate, self._handover_rng
            )
            for (beam_a, local_a), (beam_b, local_b) in swaps:
                state_a = self.shards[beam_a].export_terminal(local_a)
                state_b = self.shards[beam_b].export_terminal(local_b)
                self.shards[beam_a].import_terminal(local_a, state_b)
                self.shards[beam_b].import_terminal(local_b, state_a)
            self.handovers += len(swaps)
            if swaps:
                _metrics.METRICS.inc("constellation.handovers.block", len(swaps))

    def _report_load(self, final: bool) -> None:
        """Gauge per-beam step-cost imbalance (max over mean)."""
        metrics = _metrics.METRICS
        if not metrics.enabled and not final:
            return
        costs = np.array([shard.cost_ema for shard in self.shards])
        mean = float(costs.mean()) if costs.size else 0.0
        imbalance = float(costs.max()) / mean if mean > 0.0 else 1.0
        metrics.gauge("constellation.load_imbalance", imbalance)

    # -------------------------------------------------------------- merge
    def _merge(self, beams: Tuple[SimulationResult, ...]) -> SimulationResult:
        """Fold per-beam results into one constellation-wide result."""
        return SimulationResult(
            scenario=cast(Any, self.scenario),
            voice=VoiceMetrics.combine([beam.voice for beam in beams]),
            data=DataMetrics.combine([beam.data for beam in beams]),
            mac=MacStats.combine([beam.mac for beam in beams]),
        )


def run_constellation(
    scenario: ConstellationScenario,
    params: Optional[SimulationParameters] = None,
    n_workers: Optional[int] = None,
) -> ConstellationResult:
    """Build a :class:`ConstellationRunner`, run it, return its result."""
    return ConstellationRunner(scenario, params, n_workers=n_workers).run()
