"""One beam of a constellation: a self-contained single-cell engine.

A :class:`BeamShard` wraps an :class:`~repro.sim.engine.UplinkSimulationEngine`
built from the constellation's per-beam :class:`~repro.sim.scenario.Scenario`
with beam-specific random streams injected.  Between macro-block barriers a
shard is completely independent of its siblings — no shared mutable state —
which is what makes threaded stepping deterministic.  Cross-beam state only
moves through the explicit block-boundary seams exposed here: busy-load
export, interference injection and idle-terminal state migration.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Tuple

import numpy as np

from repro.config import SimulationParameters
from repro.constellation.scenario import ConstellationScenario
from repro.sim.engine import UplinkSimulationEngine
from repro.sim.results import SimulationResult
from repro.sim.rng import RandomStreams
from repro.traffic.population import TerminalMigrationState, TerminalPopulation

__all__ = ["BeamShard", "beam_spawn_key", "BEAM_KEY_TAG"]

#: Namespace tag prefixed to every non-zero beam's RNG spawn key.  Keys of
#: the form ``(BEAM_KEY_TAG, beam)`` cannot collide with the engine's stream
#: children ``(0..4,)`` or with :func:`repro.sim.rng.child_stream` keys.
BEAM_KEY_TAG = zlib.crc32(b"constellation.beam")


def beam_spawn_key(beam: int) -> Tuple[int, ...]:
    """RNG spawn-key prefix for a beam's :class:`RandomStreams`.

    Beam 0 uses the empty key, so its streams are bit-identical to a plain
    single-cell run under the same master seed — the degenerate-parity
    contract.  Every other beam gets an independent namespaced key.
    """
    if beam < 0:
        raise ValueError("beam must be non-negative")
    return () if beam == 0 else (BEAM_KEY_TAG, beam)


class BeamShard:
    """One beam's engine plus the block-boundary coupling seams."""

    def __init__(
        self,
        beam: int,
        scenario: ConstellationScenario,
        params: Optional[SimulationParameters] = None,
    ) -> None:
        self.beam = int(beam)
        self.scenario = scenario
        beam_scenario = scenario.beam_scenario(self.beam)
        streams = RandomStreams(
            scenario.seed, spawn_key=beam_spawn_key(self.beam)
        )
        self.engine = UplinkSimulationEngine(
            beam_scenario, params, streams=streams, beam=self.beam
        )
        if scenario.coupling_db > 0.0:
            # Align the channel's block-batched snapshot production with the
            # coupling barrier so an interference update takes effect on the
            # very next macro block instead of up to 64 frames late.
            self.engine.CHANNEL_BLOCK_FRAMES = scenario.macro_frames
        population = self.engine.population
        assert population is not None  # columnar backend always builds one
        self.population: TerminalPopulation = population
        #: Exponential moving average of the shard's per-frame step cost,
        #: fed to the LPT shard→worker assignment.  Seeded uniformly.
        self.cost_ema: float = 1.0

    # ------------------------------------------------------------ stepping
    def run_frames(self, n_frames: int) -> None:
        """Advance the shard's engine by ``n_frames`` frames."""
        self.engine.run_frames(n_frames)

    def begin_measurement(self) -> None:
        """Start the measured window (warm-up/measured barrier)."""
        self.engine.begin_measurement()

    def result(self) -> SimulationResult:
        """The shard's metrics since the last measurement reset."""
        return self.engine.collect_results()

    def observe_cost(self, seconds: float, n_frames: int) -> None:
        """Fold one block's measured step time into the cost estimate."""
        if n_frames <= 0 or seconds < 0.0:
            return
        per_frame = seconds / float(n_frames)
        self.cost_ema = 0.5 * self.cost_ema + 0.5 * per_frame

    # ---------------------------------------------------- coupling seams
    def busy_load(self) -> float:
        """Fraction of this beam's terminals loading the channel now."""
        from repro.constellation.coupling import beam_busy_load

        population = self.population
        return beam_busy_load(population.in_talkspurt, population.occupancy)

    def set_interference_db(self, penalty_db: float) -> None:
        """Fold the co-channel interference penalty into the beam's SNR."""
        self.engine.channels.set_interference_db(penalty_db)

    def eligible_handover_ids(self) -> List[int]:
        """Beam-local ids of voice terminals that can migrate right now.

        Eligible means idle in every MAC-visible sense: a voice terminal
        outside a talkspurt with an empty queue, holding no reservation and
        waiting in no request queue.  Swapping two such terminals between
        beams is invisible to both MACs, which is what keeps handover
        packet- and stat-conserving.
        """
        population = self.population
        protocol = self.engine.protocol
        idle = (
            population.is_voice
            & ~population.in_talkspurt
            & (population.occupancy == 0)
        )
        candidates = np.flatnonzero(idle)
        if candidates.size == 0:
            return []
        busy = set(protocol.reservations.holders())
        queue = getattr(protocol, "request_queue", None)
        if queue is not None:
            busy.update(int(t) for t in queue.terminal_id_array())
        return [int(i) for i in candidates if int(i) not in busy]

    def export_terminal(self, local_id: int) -> TerminalMigrationState:
        """Snapshot one terminal's full migratable state."""
        return self.population.export_terminal_state(local_id)

    def import_terminal(self, local_id: int, state: TerminalMigrationState) -> None:
        """Install migrated terminal state and invalidate macro mirrors."""
        self.population.import_terminal_state(local_id, state)
        self.engine.notify_external_mutation()
