"""Multi-beam constellation sharding.

Scales the single-cell simulator to N spot beams on one machine: each beam
is an independent shard running the existing columnar/macro kernels, and
cross-beam physics (terminal handover, frequency-reuse interference) acts
only at macro-block barriers.  See ``README.md`` → "Multi-beam
constellations" for the scenario format and the degenerate-case contract.

>>> from repro.constellation import ConstellationScenario, run_constellation
>>> result = run_constellation(
...     ConstellationScenario(protocol="rama", n_beams=8, n_voice=40, n_data=10,
...                           duration_s=2.0, macro_frames=16)
... )
>>> result.merged.voice_loss_rate  # doctest: +SKIP
"""

from __future__ import annotations

from repro.constellation.coupling import (
    HandoverSwap,
    beam_busy_load,
    interference_offsets,
    plan_handovers,
)
from repro.constellation.runner import (
    ConstellationResult,
    ConstellationRunner,
    WORKERS_ENV,
    lpt_assign,
    resolve_workers,
    run_constellation,
)
from repro.constellation.scenario import ConstellationScenario
from repro.constellation.shard import BEAM_KEY_TAG, BeamShard, beam_spawn_key

__all__ = [
    "BEAM_KEY_TAG",
    "BeamShard",
    "ConstellationResult",
    "ConstellationRunner",
    "ConstellationScenario",
    "HandoverSwap",
    "WORKERS_ENV",
    "beam_busy_load",
    "beam_spawn_key",
    "interference_offsets",
    "lpt_assign",
    "plan_handovers",
    "resolve_workers",
    "run_constellation",
]
