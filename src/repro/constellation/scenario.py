"""Multi-beam constellation scenarios.

A :class:`ConstellationScenario` describes ``n_beams`` spot beams, each an
independent copy of the single-cell world the paper models: its own
terminal population, MAC instance and channel.  Cross-beam physics enters
only through two block-boundary couplings — talkspurt-boundary terminal
handover and frequency-reuse interference — so each beam advances through
the existing columnar/macro kernels undisturbed between barriers.

The single-beam degenerate case (``n_beams=1``, no coupling) is
bit-identical to the equivalent :class:`~repro.sim.scenario.Scenario` run
in parity RNG mode: beam 0's random streams use an empty spawn-key prefix,
matching the classic derivation exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from repro.config import SimulationParameters
from repro.sim.scenario import Scenario

__all__ = ["ConstellationScenario"]


@dataclass(frozen=True)
class ConstellationScenario:
    """N beams, one protocol, one per-beam traffic mix, one seed.

    Attributes
    ----------
    protocol:
        Registry name of the MAC protocol every beam runs.
    n_beams:
        Number of spot beams (independent shards).
    n_voice:
        Voice terminals **per beam**.
    n_data:
        Data terminals **per beam**.
    use_request_queue:
        Whether each beam's base station keeps the optional request queue.
    duration_s / warmup_s / seed / mobile_speed_kmh / rng_mode / macro_frames:
        As on :class:`~repro.sim.scenario.Scenario`; shared by every beam.
        ``macro_frames`` doubles as the coupling block size — cross-beam
        state is exchanged every ``macro_frames`` frames.
    handover_rate:
        Per-block probability that an idle voice terminal is handed over to
        a co-channel neighbour beam (state swap with an idle peer slot).
        ``0.0`` disables handover; requires ``n_beams >= 2`` to take effect.
    coupling_db:
        Frequency-reuse interference coupling strength in dB.  Each beam's
        SNR is reduced by ``coupling_db`` scaled by the mean busy-load of
        its co-channel beams, re-evaluated at every block boundary.
        ``0.0`` disables interference coupling (bit-exactness preserved).
    reuse_factor:
        Frequency-reuse factor; beams ``b`` and ``b'`` share a channel
        (and hence interfere) iff ``b % reuse_factor == b' % reuse_factor``.
    """

    protocol: str
    n_beams: int
    n_voice: int
    n_data: int
    use_request_queue: bool = False
    duration_s: float = 10.0
    warmup_s: float = 1.0
    seed: int = 0
    mobile_speed_kmh: Optional[float] = None
    rng_mode: str = "parity"
    macro_frames: int = 1
    handover_rate: float = 0.0
    coupling_db: float = 0.0
    reuse_factor: int = 1

    def __post_init__(self) -> None:
        if not self.protocol:
            raise ValueError("protocol name must not be empty")
        if self.n_beams < 1:
            raise ValueError("n_beams must be at least 1")
        if self.n_voice < 0 or self.n_data < 0:
            raise ValueError("population sizes must be non-negative")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.warmup_s < 0:
            raise ValueError("warmup_s must be non-negative")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.mobile_speed_kmh is not None and self.mobile_speed_kmh < 0:
            raise ValueError("mobile_speed_kmh must be non-negative")
        if self.rng_mode not in ("parity", "fast"):
            raise ValueError(
                f"rng_mode must be 'parity' or 'fast', got {self.rng_mode!r}"
            )
        if self.macro_frames < 1:
            raise ValueError("macro_frames must be at least 1")
        if not 0.0 <= self.handover_rate <= 1.0:
            raise ValueError("handover_rate must be within [0, 1]")
        if self.handover_rate > 0.0 and self.n_voice < 1:
            raise ValueError("handover_rate > 0 requires voice terminals")
        if self.coupling_db < 0.0:
            raise ValueError("coupling_db must be non-negative")
        if self.reuse_factor < 1:
            raise ValueError("reuse_factor must be at least 1")
        if self.reuse_factor > self.n_beams:
            raise ValueError("reuse_factor must not exceed n_beams")

    # ------------------------------------------------------------ geometry
    @property
    def n_terminals(self) -> int:
        """Total number of terminals across the whole constellation."""
        return self.n_beams * (self.n_voice + self.n_data)

    @property
    def terminals_per_beam(self) -> int:
        """Number of terminals in each beam."""
        return self.n_voice + self.n_data

    @property
    def has_coupling(self) -> bool:
        """Whether any cross-beam interaction is active between blocks."""
        return self.n_beams > 1 and (
            self.handover_rate > 0.0 or self.coupling_db > 0.0
        )

    # ------------------------------------------------------------- timing
    def measured_frames(self, params: SimulationParameters) -> int:
        """Number of measured frames implied by ``duration_s``."""
        return max(1, int(round(self.duration_s / params.frame_duration_s)))

    def warmup_frames(self, params: SimulationParameters) -> int:
        """Number of warm-up frames implied by ``warmup_s``."""
        return int(round(self.warmup_s / params.frame_duration_s))

    # ------------------------------------------------------------- copies
    def with_overrides(self, **overrides: Any) -> "ConstellationScenario":
        """Copy of the scenario with some fields replaced."""
        return replace(self, **overrides)

    def beam_scenario(self, beam: int) -> Scenario:
        """The single-cell :class:`Scenario` a given beam shard runs.

        Every beam shares the constellation's protocol, mix and timing; the
        per-beam random streams differ through the shard's spawn key, not
        through the scenario seed, so beam 0 remains bit-identical to a
        plain single-cell run under the same master seed.
        """
        if not 0 <= beam < self.n_beams:
            raise ValueError(
                f"beam {beam} outside the constellation's 0..{self.n_beams - 1} range"
            )
        return Scenario(
            protocol=self.protocol,
            n_voice=self.n_voice,
            n_data=self.n_data,
            use_request_queue=self.use_request_queue,
            duration_s=self.duration_s,
            warmup_s=self.warmup_s,
            seed=self.seed,
            mobile_speed_kmh=self.mobile_speed_kmh,
            engine_backend="columnar",
            rng_mode=self.rng_mode,
            macro_frames=self.macro_frames,
        )

    def label(self) -> str:
        """Compact human-readable identifier used in tables and logs."""
        queue = "queue" if self.use_request_queue else "noqueue"
        return (
            f"{self.protocol}[beams={self.n_beams},Nv={self.n_voice},"
            f"Nd={self.n_data},{queue},seed={self.seed}]"
        )
