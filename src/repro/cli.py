"""Command-line interface.

The CLI exposes the three things a user most often wants without writing
Python:

* ``run`` — simulate one scenario and print its metrics;
* ``compare`` — run several protocols on the same workload and print the
  side-by-side table;
* ``capacity`` — search for the voice capacity of a protocol at the 1 % loss
  threshold;
* ``experiments`` — list the registered paper artefacts and which benchmark
  regenerates each;
* ``cache`` — inspect (``stats``), compact (``gc``) or empty (``clear``) an
  on-disk result store (see ``--cache`` on ``run``/``compare``);
* ``fleet`` — crash-tolerant multi-process execution: ``fleet run`` drives a
  protocol sweep through the lease-based :mod:`repro.fleet` work queue
  (killed workers forfeit, never lose, their points) and ``fleet status``
  inspects a lease database;
* ``profile`` — cProfile the engine's frame loop on a chosen scenario and
  print the top-N functions (hot-path work belongs here first);
* ``obs`` — observability utilities: ``obs summarize trace.jsonl`` renders
  the per-span/per-phase digest of a trace file written by ``--trace`` (see
  that option on ``run``/``compare``) or by :func:`repro.obs.tracing`;
* ``lint`` — run the contract-aware static analyzer (:mod:`repro.lint`)
  over the package sources: RNG discipline, child-stream label uniqueness,
  ``@kernel`` purity and store-schema hygiene, with ``--json`` and
  ``--update-baseline`` for the committed baseline/fingerprint files;
* ``selftest`` (also reachable as ``python -m repro --selftest``) — smoke-run
  one tiny experiment through every executor, check they agree, verify the
  columnar and object engine backends produce identical results, and
  round-trip the result store in a temporary directory.

All simulation commands funnel through :mod:`repro.api`; ``--cache DIR``
makes them resumable (finished points are served from the store in DIR).
Invoke as ``python -m repro <command> ...``.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from typing import Optional, Sequence

from repro.analysis.capacity import voice_capacity
from repro.analysis.experiments import EXPERIMENTS
from repro.analysis.tables import format_comparison_table, format_kv_table
from repro.api import (
    ExperimentSpec,
    ParallelExecutor,
    SerialExecutor,
    SweepAxis,
    run,
)
from repro.config import SimulationParameters
from repro.mac.registry import available_protocols
from repro.sim.scenario import Scenario

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CHARISMA channel-adaptive uplink MAC — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="simulate one scenario")
    _add_scenario_arguments(run_parser)
    run_parser.add_argument(
        "--constellation", type=int, default=None, metavar="N",
        help="simulate N spot beams instead of one cell (--n-voice/--n-data "
             "become per-beam counts; the merged constellation-aggregate "
             "result is reported)")
    run_parser.add_argument(
        "--handover-rate", type=float, default=0.0, dest="handover_rate",
        metavar="P",
        help="per-block probability that an idle voice terminal hands over "
             "to another beam (constellation runs only)")
    run_parser.add_argument(
        "--coupling-db", type=float, default=0.0, dest="coupling_db",
        metavar="DB",
        help="frequency-reuse interference coupling strength in dB "
             "(constellation runs only)")
    run_parser.add_argument(
        "--reuse", type=int, default=1, dest="reuse_factor", metavar="K",
        help="frequency-reuse factor: beams b and b' share a channel iff "
             "b%%K == b'%%K (constellation runs only)")
    run_parser.add_argument(
        "--beam-workers", type=int, default=None, dest="beam_workers",
        metavar="W",
        help="worker threads stepping the beam shards (default: machine "
             "dependent; also settable via REPRO_CONSTELLATION_WORKERS)")

    compare_parser = sub.add_parser("compare", help="compare several protocols")
    _add_scenario_arguments(compare_parser, include_protocol=False)
    compare_parser.add_argument(
        "--protocols", nargs="+", default=list(available_protocols()),
        choices=available_protocols(), help="protocols to compare",
    )

    capacity_parser = sub.add_parser(
        "capacity", help="voice capacity at the 1%% loss threshold"
    )
    capacity_parser.add_argument("--protocol", default="charisma",
                                 choices=available_protocols())
    capacity_parser.add_argument("--n-data", type=int, default=0)
    capacity_parser.add_argument("--queue", action="store_true")
    capacity_parser.add_argument("--lower", type=int, default=10)
    capacity_parser.add_argument("--upper", type=int, default=200)
    capacity_parser.add_argument("--step", type=int, default=20)
    capacity_parser.add_argument("--duration", type=float, default=4.0)
    capacity_parser.add_argument("--seed", type=int, default=0)

    sub.add_parser("experiments", help="list the registered paper artefacts")

    cache_parser = sub.add_parser(
        "cache", help="inspect or maintain an on-disk result store"
    )
    cache_parser.add_argument(
        "action", choices=("stats", "gc", "clear"),
        help="stats: summarise; gc: drop stale/duplicate records; "
             "clear: remove every cached result",
    )
    cache_parser.add_argument(
        "--cache-dir", required=True, metavar="DIR",
        help="directory of the result store",
    )

    profile_parser = sub.add_parser(
        "profile", help="cProfile the engine frame loop on one scenario"
    )
    _add_scenario_arguments(profile_parser)
    profile_parser.add_argument(
        "--top", type=int, default=25,
        help="number of functions to print (sorted by cumulative time)",
    )
    profile_parser.add_argument(
        "--sort", choices=("cumulative", "tottime"), default="cumulative",
        help="profile sort order",
    )
    profile_parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a machine-readable JSON report (frames/sec, per-phase "
             "traffic/channel/MAC/PHY/metrics split, top functions) instead "
             "of the pstats table",
    )

    obs_parser = sub.add_parser(
        "obs", help="observability utilities (trace summaries)"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    summarize_parser = obs_sub.add_parser(
        "summarize",
        help="digest a JSON-lines trace file: per-span aggregates, events, "
             "slowest points",
    )
    summarize_parser.add_argument("trace", metavar="TRACE.jsonl",
                                  help="trace file written by --trace")
    summarize_parser.add_argument(
        "--top", type=int, default=12,
        help="span rows to print (sorted by total time)",
    )
    summarize_parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the summary as JSON instead of tables",
    )

    fleet_parser = sub.add_parser(
        "fleet",
        help="lease-based multi-process fleet execution "
             "(crash-tolerant, resumable grids)",
    )
    fleet_sub = fleet_parser.add_subparsers(dest="fleet_command",
                                            required=True)
    fleet_run = fleet_sub.add_parser(
        "run",
        help="execute a protocol sweep on N worker processes coordinating "
             "through a lease queue; killed workers forfeit, never lose, "
             "their points",
    )
    _add_scenario_arguments(fleet_run, include_protocol=False)
    fleet_run.add_argument(
        "--protocols", nargs="+", default=list(available_protocols()),
        choices=available_protocols(), help="protocols to sweep",
    )
    fleet_run.add_argument(
        "--store", required=True, metavar="DIR",
        help="shared result store directory (doubles as the home of the "
             "lease database, <DIR>/fleet.db)",
    )
    fleet_run.add_argument("--workers", type=int, default=2,
                           help="worker processes to spawn")
    fleet_run.add_argument("--ttl", type=float, default=10.0, metavar="S",
                           help="lease TTL in seconds; heartbeats run at a "
                                "quarter of it")
    fleet_run.add_argument("--deadline", type=float, default=600.0,
                           metavar="S",
                           help="driver-side wall-clock safety net")
    fleet_status = fleet_sub.add_parser(
        "status", help="inspect a fleet lease database",
    )
    fleet_status.add_argument(
        "--db", required=True, metavar="PATH",
        help="lease database (typically <store>/fleet.db)",
    )
    fleet_status.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the full queue snapshot as JSON",
    )

    lint_parser = sub.add_parser(
        "lint",
        help="contract-aware static analysis: RNG discipline, kernel "
             "purity, schema hygiene (see README 'Source contracts')",
    )
    from repro.lint.cli import add_arguments as _add_lint_arguments

    _add_lint_arguments(lint_parser)

    sub.add_parser(
        "selftest",
        help="run one tiny experiment through each executor, compare them, "
             "check columnar/object engine-backend parity, cross-check the "
             "fast RNG mode, round-trip an observability trace, and "
             "round-trip the result store",
    )
    return parser


def _add_scenario_arguments(parser: argparse.ArgumentParser,
                            include_protocol: bool = True) -> None:
    if include_protocol:
        parser.add_argument("--protocol", default="charisma",
                            choices=available_protocols())
    parser.add_argument("--n-voice", type=int, default=60)
    parser.add_argument("--n-data", type=int, default=10)
    parser.add_argument("--queue", action="store_true",
                        help="enable the base-station request queue")
    parser.add_argument("--duration", type=float, default=4.0,
                        help="measured simulation time in seconds")
    parser.add_argument("--warmup", type=float, default=1.5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--speed", type=float, default=None,
                        help="mobile speed in km/h (default: Table 1 value)")
    parser.add_argument("--backend", choices=("columnar", "object"),
                        default="columnar",
                        help="simulation core: vectorised struct-of-arrays "
                             "(columnar, default) or per-terminal objects "
                             "(object); both give identical results")
    parser.add_argument("--rng-mode", choices=("parity", "fast"),
                        default="parity", dest="rng_mode",
                        help="random-draw batching: parity (default) is "
                             "bit-identical to the object backend; fast "
                             "batches whole-frame draws from per-subsystem "
                             "child streams (statistically equivalent, "
                             "fastest for paper-scale sweeps)")
    parser.add_argument("--macro-frames", type=int, default=1,
                        dest="macro_frames", metavar="K",
                        help="macro-step the columnar frame loop in blocks "
                             "of K frames (fused multi-frame kernels with "
                             "reservation lookahead; bit-identical to K=1 "
                             "in parity mode; try 16 or 64)")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="serve finished runs from (and persist new runs "
                             "to) the result store in DIR")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a JSON-lines execution trace (engine "
                             "phases, MAC batches, macro-step events) to "
                             "PATH; digest it with 'repro obs summarize'")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="deterministic fault-injection plan, e.g. "
                             "'crash_every=3,seed=7' (see repro.faults; "
                             "defaults to the REPRO_FAULTS environment "
                             "variable)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="retry each point up to N times on transient "
                             "failures (recording survivors-only results "
                             "instead of aborting the grid)")


def _scenario_from_args(args: argparse.Namespace, protocol: Optional[str] = None) -> Scenario:
    return Scenario(
        protocol=protocol or args.protocol,
        n_voice=args.n_voice,
        n_data=args.n_data,
        use_request_queue=args.queue,
        duration_s=args.duration,
        warmup_s=args.warmup,
        seed=args.seed,
        mobile_speed_kmh=args.speed,
        engine_backend=getattr(args, "backend", "columnar"),
        rng_mode=getattr(args, "rng_mode", "parity"),
        macro_frames=getattr(args, "macro_frames", 1),
    )


def _constellation_from_args(args: argparse.Namespace):
    """The multi-beam scenario requested by ``--constellation``, or ``None``.

    ``--beam-workers`` is exported through the ``REPRO_CONSTELLATION_WORKERS``
    environment override so the worker count reaches the constellation
    runner through the normal ExperimentSpec execution path.
    """
    n_beams = getattr(args, "constellation", None)
    if n_beams is None:
        return None
    from repro.constellation import ConstellationScenario, WORKERS_ENV

    if getattr(args, "beam_workers", None) is not None:
        os.environ[WORKERS_ENV] = str(args.beam_workers)
    return ConstellationScenario(
        protocol=args.protocol,
        n_beams=n_beams,
        n_voice=args.n_voice,
        n_data=args.n_data,
        use_request_queue=args.queue,
        duration_s=args.duration,
        warmup_s=args.warmup,
        seed=args.seed,
        mobile_speed_kmh=args.speed,
        rng_mode=getattr(args, "rng_mode", "parity"),
        macro_frames=getattr(args, "macro_frames", 1),
        handover_rate=getattr(args, "handover_rate", 0.0),
        coupling_db=getattr(args, "coupling_db", 0.0),
        reuse_factor=getattr(args, "reuse_factor", 1),
    )


def _trace_context(args: argparse.Namespace, command: str):
    """Context manager installing the process tracer when ``--trace`` is set.

    The trace header records which accel kernel implementations were active
    (numba vs numpy fallback), so timings in the file are interpretable
    after the fact.
    """
    from contextlib import nullcontext

    path = getattr(args, "trace", None)
    if path is None:
        return nullcontext()
    from repro.accel import kernel_provenance
    from repro.obs import tracing

    return tracing(path, meta={
        "command": command,
        "accel": kernel_provenance(),
    })


def _fault_kwargs(args: argparse.Namespace) -> dict:
    """``retry=``/``faults=`` keyword arguments for :func:`run` from the CLI
    flags (``--retries N`` records failures instead of aborting the grid)."""
    kwargs: dict = {}
    if getattr(args, "faults", None) is not None:
        kwargs["faults"] = args.faults
    if getattr(args, "retries", None) is not None:
        from repro.faults import RetryPolicy

        kwargs["retry"] = RetryPolicy(max_attempts=args.retries,
                                      on_error="record")
    return kwargs


def _report_failures(results) -> None:
    """Print a one-line-per-point digest of any failed points."""
    failed = results.failed()
    if not failed:
        return
    print(f"\n{len(failed)} point(s) failed:")
    for record in failed:
        error = record.error
        print(f"  {record.point.run_hash()}  {error.error_type}: "
              f"{error.message} (after {error.attempts} attempt(s))")


def _command_run(args: argparse.Namespace) -> int:
    params = SimulationParameters()
    scenario = _constellation_from_args(args) or _scenario_from_args(args)
    spec = ExperimentSpec(
        protocols=(scenario.protocol,),
        base_scenario=scenario,
        params=params,
        seeds=(scenario.seed,),
        name="cli-run",
    )
    with _trace_context(args, "run"):
        results = run(spec, executor=SerialExecutor(),
                      cache_dir=args.cache, **_fault_kwargs(args))
    record = results[0]
    if not record.ok:
        _report_failures(results)
        return 1
    result = record.result
    print(format_kv_table(result.summary(), title=f"Results for {scenario.label()}"))
    if args.trace:
        print(f"\ntrace written to {args.trace} "
              f"(digest: python -m repro obs summarize {args.trace})")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    params = SimulationParameters()
    base = _scenario_from_args(args, protocol=args.protocols[0])
    spec = ExperimentSpec(
        protocols=tuple(args.protocols),
        base_scenario=base,
        axes=(SweepAxis("n_voice", (args.n_voice,)),),
        params=params,
        seeds=(base.seed,),
        name="cli-compare",
    )
    # A tracer lives in the driving process, so tracing forces serial
    # execution — process-pool workers would write nothing into the file.
    executor = SerialExecutor() if args.trace else None
    with _trace_context(args, "compare"):
        results = run(spec, executor=executor,
                      cache_dir=args.cache, **_fault_kwargs(args))
    _report_failures(results)
    sweeps = results.completed().to_sweep_results("n_voice")
    for metric in ("voice_loss_rate", "data_throughput_per_frame", "data_delay_s"):
        print(format_comparison_table(sweeps, metric, title=f"[{metric}]"))
        print()
    if args.trace:
        print(f"trace written to {args.trace} "
              f"(digest: python -m repro obs summarize {args.trace})")
    return 0


def _command_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import WorkService, run_fleet

    if args.fleet_command == "status":
        service = WorkService(args.db)
        counts = service.counts()
        try:
            if args.as_json:
                import json

                print(json.dumps(
                    {"counts": counts, "points": service.snapshot()},
                    indent=2,
                ))
                return 0
            print(format_kv_table(counts, title=f"Fleet queue at {args.db}"))
            leased = [row for row in service.snapshot()
                      if row["state"] == "leased"]
            for row in leased:
                remaining = row["lease_remaining_s"]
                print(f"  leased {row['run_hash']} -> {row['owner']} "
                      f"({remaining:.1f}s of lease left)")
        finally:
            service.close()
        return 0

    params = SimulationParameters()
    base = _scenario_from_args(args, protocol=args.protocols[0])
    spec = ExperimentSpec(
        protocols=tuple(args.protocols),
        base_scenario=base,
        params=params,
        seeds=(base.seed,),
        name="cli-fleet",
    )
    kwargs = _fault_kwargs(args)
    results = run_fleet(
        spec,
        args.store,
        n_workers=args.workers,
        lease_ttl_s=args.ttl,
        deadline_s=args.deadline,
        retry=kwargs.get("retry"),
        faults=kwargs.get("faults"),
    )
    completed = results.completed()
    print(f"fleet run: {len(completed)}/{len(results)} points completed "
          f"on {args.workers} worker(s); results in {args.store}")
    for row in completed.aggregate(
        ["voice_loss_rate", "data_throughput_per_frame", "data_delay_s"],
        by=("protocol",),
    ):
        coords = ", ".join(f"{k}={v}" for k, v in row.group)
        print(f"  {coords:<24} {row.metric:<28} {row.mean:.6g}")
    _report_failures(results)
    return 0 if len(completed) == len(results) else 1


def _command_capacity(args: argparse.Namespace) -> int:
    params = SimulationParameters()
    estimate = voice_capacity(
        args.protocol, params, n_data=args.n_data,
        use_request_queue=args.queue,
        lower=args.lower, upper=args.upper, step=args.step,
        duration_s=args.duration, seed=args.seed,
    )
    print(f"protocol          : {estimate.protocol}")
    print(f"loss threshold    : {estimate.threshold_value:.2%}")
    print(f"voice capacity    : {estimate.capacity} users")
    print(f"simulations spent : {estimate.n_probes}")
    return 0


def _command_experiments(_: argparse.Namespace) -> int:
    print(f"{'key':<16} {'paper artefact':<38} benchmark")
    print(f"{'-'*16} {'-'*38} {'-'*40}")
    for key, experiment in EXPERIMENTS.items():
        print(f"{key:<16} {experiment.paper_artifact:<38} {experiment.bench_target}")
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    from repro.store import ResultStore

    store = ResultStore(args.cache_dir)
    if args.action == "stats":
        print(format_kv_table(store.stats().as_dict(),
                              title=f"Result store at {args.cache_dir}"))
    elif args.action == "gc":
        collected = store.gc()
        print(f"dropped {collected.dropped_stale} stale record(s), "
              f"{collected.dropped_duplicates} duplicate line(s); "
              f"reclaimed {collected.reclaimed_bytes} bytes")
    else:  # clear
        removed = store.clear()
        print(f"removed {removed} cached result(s)")
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    """cProfile one engine run and print the hottest functions.

    With ``--json`` the command instead reports a machine-readable summary:
    an *uninstrumented-profiler* pass measures frames/sec and the per-phase
    traffic/channel/MAC/PHY/metrics split (cProfile skews small functions,
    so the split comes from the engine's own phase timers), then a cProfile
    pass ranks the top functions.
    """
    import cProfile
    import json
    import pstats

    from repro.obs import clock as _obs_clock
    from repro.sim.engine import UplinkSimulationEngine

    params = SimulationParameters()
    scenario = _scenario_from_args(args)

    if args.as_json:
        engine = UplinkSimulationEngine(scenario, params)
        phases = engine.enable_phase_timing()
        started = _obs_clock.cpu_now()
        result = engine.run()
        elapsed = _obs_clock.cpu_now() - started
        frames = engine.frame_index
        total_phase = sum(phases.values()) or 1.0

        # Kernel-dispatch counts come from a short separate pass: the
        # per-kernel entry wrappers are cheap but not free, so they must
        # not contaminate the fps measurement.
        counted = UplinkSimulationEngine(scenario, params)
        counted.enable_phase_timing(count_dispatches=True)
        count_frames = min(
            400, scenario.warmup_frames(params) + scenario.measured_frames(params)
        )
        try:
            counted.run_frames(count_frames)
            dispatch_counts = dict(counted.dispatch_counts or {})
        finally:
            # The counter monkey-patches the live @kernel bindings; it must
            # not outlive this pass even on an interrupted run.
            counted.disable_phase_timing()
        dispatches = {
            phase: round(calls / count_frames, 2)
            for phase, calls in dispatch_counts.items()
        } if count_frames else {}

        profiled = UplinkSimulationEngine(scenario, params)
        profiler = cProfile.Profile()
        profiler.enable()
        profiled.run()
        profiler.disable()
        rows = []
        stats = pstats.Stats(profiler)
        stats.sort_stats(args.sort)
        for func in stats.fcn_list[: args.top]:
            cc, nc, tt, ct, _callers = stats.stats[func]
            filename, line, name = func
            rows.append(
                {
                    "function": f"{filename}:{line}({name})",
                    "ncalls": nc,
                    "tottime_s": round(tt, 6),
                    "cumtime_s": round(ct, 6),
                }
            )
        report = {
            "scenario": scenario.label(),
            "backend": scenario.engine_backend,
            "rng_mode": scenario.rng_mode,
            "frames": frames,
            "cpu_seconds": round(elapsed, 6),
            "frames_per_second": round(frames / elapsed, 1) if elapsed else None,
            "voice_loss_rate": result.voice.loss_rate,
            "data_throughput_packets_per_frame":
                result.data.throughput_packets_per_frame,
            "macro_frames": scenario.macro_frames,
            "phase_seconds": {k: round(v, 6) for k, v in phases.items()},
            "phase_fraction": {
                k: round(v / total_phase, 4) for k, v in phases.items()
            },
            "dispatches_per_frame": dispatches,
            "dispatches_per_frame_total": round(sum(dispatches.values()), 2),
            "top_functions": rows,
            "sort": args.sort,
        }
        print(json.dumps(report, indent=2))
        return 0

    engine = UplinkSimulationEngine(scenario, params)
    profiler = cProfile.Profile()
    profiler.enable()
    result = engine.run()
    profiler.disable()
    frames = engine.frame_index
    print(f"profiled {scenario.label()} [{scenario.engine_backend} backend]: "
          f"{frames} frames")
    print(f"voice loss {result.voice.loss_rate:.4f}, "
          f"data throughput {result.data.throughput_packets_per_frame:.3f} pkt/frame")
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


def _command_obs(args: argparse.Namespace) -> int:
    """Observability utilities — currently ``obs summarize``."""
    import json

    from repro.obs.summary import format_summary, summarize_trace

    try:
        summary = summarize_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.as_json:
        payload = {
            "header": summary.header,
            "n_spans": summary.n_spans,
            "n_events": summary.n_events,
            "spans": [
                {
                    "name": agg.name,
                    "count": agg.count,
                    "total_s": round(agg.total_s, 6),
                    "mean_s": round(agg.mean_s, 6),
                    "max_s": round(agg.max_s, 6),
                }
                for agg in summary.aggregates
            ],
            "events": summary.events,
            "phase_seconds": {
                k: round(v, 6) for k, v in summary.phase_seconds().items()
            },
            "slowest_points": summary.slowest_points,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(format_summary(summary, top=args.top))
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_from_args

    return run_from_args(args)


def _selftest_backend_parity() -> bool:
    """Columnar, object and macro-stepped engines must agree exactly."""
    from repro.sim.runner import run_simulation

    for protocol in ("charisma", "dtdma_vr", "rama"):
        base = Scenario(protocol=protocol, n_voice=6, n_data=2,
                        use_request_queue=True, duration_s=0.4, warmup_s=0.2,
                        seed=11)
        results = {
            backend: run_simulation(base.with_overrides(engine_backend=backend))
            for backend in ("columnar", "object")
        }
        if results["columnar"].summary() != results["object"].summary():
            print(f"  MISMATCH: engine backends disagree for {protocol}")
            return False
        macro = run_simulation(base.with_overrides(macro_frames=16))
        if macro.summary() != results["columnar"].summary():
            print(f"  MISMATCH: macro-stepped engine disagrees for {protocol}")
            return False
    print("  engine backends    columnar == object == macro-16 for 3 protocols")
    return True


def _selftest_rng_fast() -> bool:
    """Fast RNG mode must run clean and keep the accounting invariants."""
    from repro.sim.runner import run_simulation

    for protocol in ("charisma", "drma", "dtdma_fr"):
        scenario = Scenario(protocol=protocol, n_voice=6, n_data=2,
                            use_request_queue=True, duration_s=0.4,
                            warmup_s=0.2, seed=11, rng_mode="fast")
        result = run_simulation(scenario)
        voice, data = result.voice, result.data
        if voice.delivered + voice.errored + voice.dropped > voice.generated:
            print(f"  MISMATCH: fast-mode voice conservation broke for {protocol}")
            return False
        if data.delivered > data.generated or not 0.0 <= voice.loss_rate <= 1.0:
            print(f"  MISMATCH: fast-mode data accounting broke for {protocol}")
            return False
    print("  rng_mode=fast      conservation holds for 3 protocols")
    return True


def _selftest_lint() -> bool:
    """The shipped tree must pass its own source contracts."""
    from repro.lint import lint_tree

    report = lint_tree()
    if report.exit_code != 0:
        for finding in report.findings:
            print(f"  LINT: {finding.location()}: [{finding.rule}] "
                  f"{finding.message}")
        return False
    print(f"  repro lint         clean across {report.n_modules} modules, "
          f"{report.n_kernels} @kernel functions")
    return True


def _selftest_obs() -> bool:
    """A traced run must stay bit-identical and round-trip the trace file.

    The trace path defaults to a temporary file; set ``REPRO_SELFTEST_TRACE``
    to keep the file (CI uploads it as a build artifact).
    """
    import contextlib
    import os

    from repro.obs import metrics as _metrics
    from repro.obs import summarize_trace, tracing
    from repro.sim.runner import run_simulation

    scenario = Scenario(protocol="charisma", n_voice=6, n_data=2,
                        use_request_queue=True, duration_s=0.4, warmup_s=0.2,
                        seed=11, macro_frames=16)
    plain = run_simulation(scenario)

    keep = os.environ.get("REPRO_SELFTEST_TRACE")
    with contextlib.ExitStack() as stack:
        if keep:
            trace_path = keep
        else:
            tmp = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-selftest-obs-")
            )
            trace_path = os.path.join(tmp, "trace.jsonl")
        with _metrics.recording() as registry:
            with tracing(trace_path, meta={"command": "selftest"}):
                traced = run_simulation(scenario)
        if (traced.voice, traced.data, traced.mac) != (
            plain.voice, plain.data, plain.mac
        ):
            print("  MISMATCH: tracing changed the simulation results")
            return False
        summary = summarize_trace(trace_path)
        phase_seconds = summary.phase_seconds()
        if not phase_seconds or any(v < 0 for v in phase_seconds.values()):
            print("  MISMATCH: trace round-trip lost the phase spans")
            return False
        if summary.by_name("engine.run") is None:
            print("  MISMATCH: trace is missing the engine.run span")
            return False
        snapshot = registry.snapshot()
        if snapshot["counters"].get("contention.rounds", 0) <= 0:
            print("  MISMATCH: metrics registry recorded no contention rounds")
            return False
    kept = f" (kept at {keep})" if keep else ""
    print(f"  repro.obs          traced == untraced; trace round-trips "
          f"{summary.n_spans} spans, {summary.n_events} events{kept}")
    return True


def _command_selftest(_: argparse.Namespace) -> int:
    """Run one tiny grid through each executor and verify they agree."""
    from repro.store import AsyncExecutor, CachingExecutor, ResultStore

    spec = ExperimentSpec(
        protocols=("charisma", "dtdma_fr"),
        base_scenario=Scenario(protocol="charisma", n_voice=0, n_data=1,
                               duration_s=0.4, warmup_s=0.2),
        axes=(SweepAxis("n_voice", (2, 4)),),
        seeds=(0, 1),
        name="selftest",
    )
    print(f"selftest grid: {spec.n_runs} runs (hash {spec.spec_hash()})")
    reference = None
    results = None
    for label, executor in (
        ("SerialExecutor", SerialExecutor()),
        ("ParallelExecutor", ParallelExecutor(n_workers=2, chunk_size=2)),
        ("AsyncExecutor", AsyncExecutor(n_workers=2)),
    ):
        results = run(spec, executor=executor)
        records = results.to_records()
        print(f"  {label:<18} {len(results)} runs ok")
        if reference is None:
            reference = records
        elif records != reference:
            print(f"  MISMATCH: {label} disagrees with SerialExecutor")
            return 1
    rows = results.aggregate(["voice_loss_rate"], by=("protocol", "n_voice"))
    print(f"  aggregate          {len(rows)} (protocol, n_voice) groups ok")

    if not _selftest_backend_parity():
        return 1
    if not _selftest_rng_fast():
        return 1
    if not _selftest_obs():
        return 1
    if not _selftest_lint():
        return 1

    # Store round-trip: a cold cached run must miss everywhere, a second
    # identical run must hit everywhere and agree byte-for-byte.
    with tempfile.TemporaryDirectory(prefix="repro-selftest-") as tmp:
        cold = CachingExecutor(ResultStore(tmp), SerialExecutor())
        cold_records = run(spec, executor=cold).to_records()
        warm = CachingExecutor(ResultStore(tmp), SerialExecutor())
        warm_records = run(spec, executor=warm).to_records()
        print(f"  ResultStore        cold {cold.misses} misses, "
              f"warm {warm.hits} hits")
        if cold.misses != spec.n_runs or warm.misses != 0:
            print("  MISMATCH: store round-trip executed the wrong run count")
            return 1
        if cold_records != reference or warm_records != reference:
            print("  MISMATCH: cached results disagree with SerialExecutor")
            return 1
    print("selftest passed: executors and the result store agree byte-for-byte")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro``."""
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0] == "--selftest":
        argv[0] = "selftest"
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "compare": _command_compare,
        "capacity": _command_capacity,
        "experiments": _command_experiments,
        "cache": _command_cache,
        "fleet": _command_fleet,
        "profile": _command_profile,
        "obs": _command_obs,
        "lint": _command_lint,
        "selftest": _command_selftest,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
