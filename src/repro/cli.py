"""Command-line interface.

The CLI exposes the three things a user most often wants without writing
Python:

* ``run`` — simulate one scenario and print its metrics;
* ``compare`` — run several protocols on the same workload and print the
  side-by-side table;
* ``capacity`` — search for the voice capacity of a protocol at the 1 % loss
  threshold;
* ``experiments`` — list the registered paper artefacts and which benchmark
  regenerates each.

Invoke as ``python -m repro <command> ...``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.capacity import voice_capacity
from repro.analysis.experiments import EXPERIMENTS
from repro.analysis.tables import format_comparison_table, format_kv_table
from repro.config import SimulationParameters
from repro.mac.registry import available_protocols
from repro.sim.runner import run_protocol_comparison, run_simulation
from repro.sim.scenario import Scenario

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CHARISMA channel-adaptive uplink MAC — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="simulate one scenario")
    _add_scenario_arguments(run_parser)

    compare_parser = sub.add_parser("compare", help="compare several protocols")
    _add_scenario_arguments(compare_parser, include_protocol=False)
    compare_parser.add_argument(
        "--protocols", nargs="+", default=list(available_protocols()),
        choices=available_protocols(), help="protocols to compare",
    )

    capacity_parser = sub.add_parser(
        "capacity", help="voice capacity at the 1%% loss threshold"
    )
    capacity_parser.add_argument("--protocol", default="charisma",
                                 choices=available_protocols())
    capacity_parser.add_argument("--n-data", type=int, default=0)
    capacity_parser.add_argument("--queue", action="store_true")
    capacity_parser.add_argument("--lower", type=int, default=10)
    capacity_parser.add_argument("--upper", type=int, default=200)
    capacity_parser.add_argument("--step", type=int, default=20)
    capacity_parser.add_argument("--duration", type=float, default=4.0)
    capacity_parser.add_argument("--seed", type=int, default=0)

    sub.add_parser("experiments", help="list the registered paper artefacts")
    return parser


def _add_scenario_arguments(parser: argparse.ArgumentParser,
                            include_protocol: bool = True) -> None:
    if include_protocol:
        parser.add_argument("--protocol", default="charisma",
                            choices=available_protocols())
    parser.add_argument("--n-voice", type=int, default=60)
    parser.add_argument("--n-data", type=int, default=10)
    parser.add_argument("--queue", action="store_true",
                        help="enable the base-station request queue")
    parser.add_argument("--duration", type=float, default=4.0,
                        help="measured simulation time in seconds")
    parser.add_argument("--warmup", type=float, default=1.5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--speed", type=float, default=None,
                        help="mobile speed in km/h (default: Table 1 value)")


def _scenario_from_args(args: argparse.Namespace, protocol: Optional[str] = None) -> Scenario:
    return Scenario(
        protocol=protocol or args.protocol,
        n_voice=args.n_voice,
        n_data=args.n_data,
        use_request_queue=args.queue,
        duration_s=args.duration,
        warmup_s=args.warmup,
        seed=args.seed,
        mobile_speed_kmh=args.speed,
    )


def _command_run(args: argparse.Namespace) -> int:
    params = SimulationParameters()
    scenario = _scenario_from_args(args)
    result = run_simulation(scenario, params)
    print(format_kv_table(result.summary(), title=f"Results for {scenario.label()}"))
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    params = SimulationParameters()
    base = _scenario_from_args(args, protocol=args.protocols[0])
    sweeps = run_protocol_comparison(
        args.protocols, [args.n_voice], parameter="n_voice",
        base_scenario=base, params=params,
    )
    for metric in ("voice_loss_rate", "data_throughput_per_frame", "data_delay_s"):
        print(format_comparison_table(sweeps, metric, title=f"[{metric}]"))
        print()
    return 0


def _command_capacity(args: argparse.Namespace) -> int:
    params = SimulationParameters()
    estimate = voice_capacity(
        args.protocol, params, n_data=args.n_data,
        use_request_queue=args.queue,
        lower=args.lower, upper=args.upper, step=args.step,
        duration_s=args.duration, seed=args.seed,
    )
    print(f"protocol          : {estimate.protocol}")
    print(f"loss threshold    : {estimate.threshold_value:.2%}")
    print(f"voice capacity    : {estimate.capacity} users")
    print(f"simulations spent : {estimate.n_probes}")
    return 0


def _command_experiments(_: argparse.Namespace) -> int:
    print(f"{'key':<16} {'paper artefact':<38} benchmark")
    print(f"{'-'*16} {'-'*38} {'-'*40}")
    for key, experiment in EXPERIMENTS.items():
        print(f"{key:<16} {experiment.paper_artifact:<38} {experiment.bench_target}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro``."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "compare": _command_compare,
        "capacity": _command_capacity,
        "experiments": _command_experiments,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
