"""Run cache, resumable experiment store and work-stealing execution.

This subpackage is the persistence and dynamic-scheduling layer of the
experiment API:

* :class:`~repro.store.store.ResultStore` — a content-addressed,
  schema-versioned on-disk cache mapping
  :meth:`~repro.api.spec.RunPoint.run_hash` to its
  :class:`~repro.sim.results.SimulationResult` (JSON-lines shards + atomic
  writes + corruption quarantine + ``gc``/``stats``/``invalidate``).
* :class:`~repro.store.caching.CachingExecutor` — wraps any
  :class:`~repro.api.executors.Executor` so identical points are served
  from disk and freshly computed points are persisted as they complete,
  making ``repro.api.run(..., cache_dir=...)`` resumable after a kill.
* :class:`~repro.store.scheduler.AsyncExecutor` /
  :class:`~repro.store.scheduler.WorkStealingScheduler` — per-point dynamic
  dispatch in cost-estimate (LPT) order with deque stealing, progress
  callbacks and cooperative cancellation, for heterogeneous grids that
  static chunking load-balances poorly.

>>> from repro.api import ExperimentSpec, run
>>> results = run(spec, cache_dir="~/.cache/repro")      # doctest: +SKIP
>>> results = run(spec, cache_dir="~/.cache/repro")      # 100% hits  # doctest: +SKIP
"""

from repro.store.caching import CachingExecutor
from repro.store.scheduler import (
    AsyncExecutor,
    ExecutionCancelled,
    WorkStealingScheduler,
)
from repro.store.serialization import (
    SCHEMA_VERSION,
    SerializationError,
    payload_to_result,
    result_to_payload,
)
from repro.store.store import GcStats, ResultStore, StoreStats

__all__ = [
    "AsyncExecutor",
    "CachingExecutor",
    "ExecutionCancelled",
    "GcStats",
    "ResultStore",
    "SCHEMA_VERSION",
    "SerializationError",
    "StoreStats",
    "WorkStealingScheduler",
    "payload_to_result",
    "result_to_payload",
]
