"""JSON round-trip for simulation results.

The on-disk :class:`~repro.store.store.ResultStore` persists one
:class:`~repro.sim.results.SimulationResult` per cache entry.  Every piece of
a result is a flat frozen dataclass, so serialisation is a field-by-field
dictionary dump; deserialisation rebuilds the exact dataclasses, which means
a cache hit is indistinguishable from a fresh run (``summary()`` and all
derived metrics agree bit-for-bit — floats are serialised through
``repr``-faithful JSON, ints stay ints).

``SCHEMA_VERSION`` names the wire format.  It must be bumped whenever the
shape of :class:`~repro.sim.results.SimulationResult` (or anything reachable
from it) changes; the store treats entries with a different schema version
as stale and never returns them.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, TypeVar, cast

from repro.constellation.scenario import ConstellationScenario
from repro.metrics.collector import MacStats
from repro.metrics.data import DataMetrics
from repro.metrics.voice import VoiceMetrics
from repro.sim.results import SimulationResult
from repro.sim.scenario import Scenario

__all__ = [
    "SCHEMA_VERSION",
    "SerializationError",
    "result_to_payload",
    "payload_to_result",
]

#: Version of the serialised result format.  Bump on any change to the
#: result dataclasses; the store invalidates entries from other versions.
SCHEMA_VERSION = 5  # v5: ConstellationScenario results (PR 10); v4: macro_frames


class SerializationError(ValueError):
    """A payload could not be converted back into a result."""


def result_to_payload(result: SimulationResult) -> Dict[str, object]:
    """Flatten a result into a JSON-serialisable dictionary."""
    return {
        "scenario": dataclasses.asdict(result.scenario),
        "voice": dataclasses.asdict(result.voice),
        "data": dataclasses.asdict(result.data),
        "mac": dataclasses.asdict(result.mac),
    }


_T = TypeVar("_T")


def _rebuild(cls: Callable[..., _T], payload: object, what: str) -> _T:
    if not isinstance(payload, dict):
        raise SerializationError(f"{what} payload must be an object")
    data = cast(Dict[str, Any], payload)
    field_names = {f.name for f in dataclasses.fields(cast(Any, cls))}
    if set(data) != field_names:
        raise SerializationError(
            f"{what} payload fields {sorted(data)} do not match "
            f"{getattr(cls, '__name__', cls)} fields {sorted(field_names)}"
        )
    try:
        return cls(**data)
    except (TypeError, ValueError) as error:
        raise SerializationError(f"invalid {what} payload: {error}") from error


def payload_to_result(payload: Dict[str, object]) -> SimulationResult:
    """Rebuild the exact :class:`SimulationResult` a payload was dumped from."""
    if not isinstance(payload, dict):
        raise SerializationError("result payload must be an object")
    missing = {"scenario", "voice", "data", "mac"} - set(payload)
    if missing:
        raise SerializationError(
            f"result payload is missing sections: {sorted(missing)}"
        )
    # A merged constellation result carries a ConstellationScenario; its
    # ``n_beams`` field distinguishes the two scenario shapes on the wire
    # (the exact field-set match in _rebuild still rejects hybrids).
    scenario_payload = payload["scenario"]
    scenario_cls: Callable[..., Any] = (
        ConstellationScenario
        if isinstance(scenario_payload, dict) and "n_beams" in scenario_payload
        else Scenario
    )
    return SimulationResult(
        scenario=_rebuild(scenario_cls, scenario_payload, "scenario"),
        voice=_rebuild(VoiceMetrics, payload["voice"], "voice"),
        data=_rebuild(DataMetrics, payload["data"], "data"),
        mac=_rebuild(MacStats, payload["mac"], "mac"),
    )
