"""Content-addressed, disk-backed store of simulation results.

:class:`ResultStore` maps a :meth:`~repro.api.spec.RunPoint.run_hash` to the
:class:`~repro.sim.results.SimulationResult` it produced, so re-running an
identical :class:`~repro.api.spec.ExperimentSpec` can skip every finished
point and an interrupted sweep can resume where it stopped.

On-disk layout (everything under one cache directory)::

    manifest.json        store marker + schema version of the writer
    shards/<hh>.jsonl    result records, sharded by the hash's first byte
    quarantine/          unparseable shard files, moved aside verbatim
    artifacts/<name>.json  named JSON documents (benchmark trajectories, ...)

Design points:

* **JSON-lines shards.**  Each record is one self-contained line carrying
  its own ``run_hash`` and ``schema`` version, so a shard is readable (and
  salvageable) line by line and concurrent appends from one process never
  interleave partial records.
* **Atomic writes.**  Appends are a single ``write`` of one line; full-file
  rewrites (``gc``, ``invalidate``, corruption salvage) go through a
  temporary file and ``os.replace``.
* **Corruption quarantine.**  A shard with an unparseable line is moved to
  ``quarantine/`` verbatim and its parseable records are re-written in
  place, so one torn write (e.g. a run killed mid-append) never poisons the
  cache or loses its neighbours.
* **Schema versioning.**  Records written under a different
  :data:`~repro.store.serialization.SCHEMA_VERSION` are never returned;
  :meth:`ResultStore.gc` deletes them.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.faults import injector as _faults
from repro.obs import metrics as _metrics
from repro.sim.results import SimulationResult
from repro.store import serialization
from repro.store.serialization import (
    SerializationError,
    payload_to_result,
    result_to_payload,
)

__all__ = ["ResultStore", "StoreStats", "GcStats"]

_MANIFEST_FORMAT = "repro-result-store"
_HASH_PATTERN = re.compile(r"^[0-9a-f]{4,64}$")
_ARTIFACT_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass(frozen=True)
class StoreStats:
    """Snapshot of a store's contents (``repro cache stats``)."""

    path: str
    schema_version: int
    n_results: int
    n_stale: int
    n_shards: int
    n_quarantined: int
    n_artifacts: int
    total_bytes: int

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class GcStats:
    """What one :meth:`ResultStore.gc` pass removed."""

    dropped_stale: int
    dropped_duplicates: int
    reclaimed_bytes: int


class ResultStore:
    """Content-addressed on-disk cache of run results.

    Parameters
    ----------
    path:
        Cache directory; created (with its manifest) if it does not exist.
    fsync:
        Flush and ``os.fsync`` every shard append before releasing the
        store lock.  Off by default (the OS page cache is plenty for a
        local cache); fleet workers turn it on so a completed point's
        record provably survives the worker being SIGKILLed right after
        its lease is marked done.
    """

    def __init__(
        self,
        path: Union[str, "os.PathLike[str]"],
        fsync: bool = False,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._lock = threading.RLock()
        #: Shard name -> {run_hash: record}; loaded lazily per shard.
        self._loaded: Dict[str, Dict[str, Dict[str, Any]]] = {}
        self._ensure_layout()

    # ------------------------------------------------------------ filesystem
    @property
    def _shards_dir(self) -> Path:
        return self.path / "shards"

    @property
    def _quarantine_dir(self) -> Path:
        return self.path / "quarantine"

    @property
    def _artifacts_dir(self) -> Path:
        return self.path / "artifacts"

    def _ensure_layout(self) -> None:
        self._shards_dir.mkdir(parents=True, exist_ok=True)
        self._quarantine_dir.mkdir(exist_ok=True)
        self._artifacts_dir.mkdir(exist_ok=True)
        manifest = self.path / "manifest.json"
        if manifest.exists():
            try:
                payload = json.loads(manifest.read_text(encoding="utf-8"))
                if payload.get("format") != _MANIFEST_FORMAT:
                    raise ValueError(f"{self.path} is not a result store")
            except (json.JSONDecodeError, UnicodeDecodeError):
                self._quarantine_file(manifest)
            else:
                return
        self._write_atomic(manifest, json.dumps({
            "format": _MANIFEST_FORMAT,
            "schema_version": serialization.SCHEMA_VERSION,
            # Provenance metadata (when the store was created), exempt from
            # the determinism contract — never feeds back into a simulation.
            "created_unix": time.time(),  # lint: allow[KRN002]
        }, indent=2) + "\n")

    @staticmethod
    def _write_atomic(path: Path, text: str) -> None:
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)

    def _quarantine_file(self, path: Path) -> Path:
        """Move an unreadable file aside verbatim and return its new home."""
        target = self._quarantine_dir / path.name
        counter = 0
        while target.exists():
            counter += 1
            target = self._quarantine_dir / f"{path.name}.{counter}"
        os.replace(path, target)
        return target

    # ---------------------------------------------------------------- shards
    @staticmethod
    def _shard_name(run_hash: str) -> str:
        return f"{run_hash[:2]}.jsonl"

    def _validate_hash(self, run_hash: str) -> str:
        if not isinstance(run_hash, str) or not _HASH_PATTERN.match(run_hash):
            raise ValueError(f"{run_hash!r} is not a hex run hash")
        return run_hash

    def _shard(self, name: str) -> Dict[str, Dict[str, Any]]:
        """Load one shard (salvaging around corruption), cached in memory.

        Two distinct damage modes:

        * a torn **final** line — the signature of a process killed in the
          middle of its append — is expected wear, not corruption: the
          partial line is truncated away in place and every complete
          record survives, with no quarantine detour;
        * anything else unparseable (interior damage, undecodable bytes)
          still moves the file verbatim to ``quarantine/`` for post-mortem
          before the good records are re-written.
        """
        cached = self._loaded.get(name)
        if cached is not None:
            return cached
        path = self._shards_dir / name
        records: Dict[str, Dict[str, Any]] = {}
        if path.exists():
            good_lines: List[str] = []
            bad_indices: List[int] = []
            undecodable = False
            try:
                raw = path.read_text(encoding="utf-8")
            except UnicodeDecodeError:
                raw = ""
                undecodable = True  # the whole file, unreadable
            lines = [line for line in raw.splitlines() if line.strip()]
            for index, line in enumerate(lines):
                try:
                    record = json.loads(line)
                    run_hash = record["run_hash"]
                    record["schema"], record["result"]
                except (json.JSONDecodeError, TypeError, KeyError):
                    bad_indices.append(index)
                    continue
                records[run_hash] = record  # duplicate hashes: last write wins
                good_lines.append(line)
            torn_tail_only = (
                not undecodable
                and bad_indices == [len(lines) - 1]
            )
            if torn_tail_only:
                m = _metrics.METRICS
                if m.enabled:
                    m.inc("store.torn_tail_salvaged")
                self._write_atomic(
                    path, "\n".join(good_lines) + "\n" if good_lines else ""
                )
            elif undecodable or bad_indices:
                m = _metrics.METRICS
                if m.enabled:
                    m.inc(
                        "store.quarantined_lines",
                        len(bad_indices) if bad_indices else 1,
                    )
                # Preserve the damaged file verbatim for post-mortems, then
                # re-write the salvageable records in place.
                self._quarantine_file(path)
                if good_lines:
                    self._write_atomic(path, "\n".join(good_lines) + "\n")
        self._loaded[name] = records
        return records

    def _rewrite_shard(
        self, name: str, records: Dict[str, Dict[str, Any]]
    ) -> None:
        path = self._shards_dir / name
        if records:
            lines = [json.dumps(r, sort_keys=True) for r in records.values()]
            self._write_atomic(path, "\n".join(lines) + "\n")
        elif path.exists():
            path.unlink()
        self._loaded[name] = dict(records)

    def _shard_names_on_disk(self) -> List[str]:
        return sorted(p.name for p in self._shards_dir.glob("*.jsonl"))

    # ------------------------------------------------------------------- API
    def get(self, run_hash: str) -> Optional[SimulationResult]:
        """The cached result for ``run_hash``, or None.

        Records from other schema versions are treated as misses; a record
        whose payload no longer deserialises is quarantined and dropped.
        """
        run_hash = self._validate_hash(run_hash)
        with self._lock:
            name = self._shard_name(run_hash)
            record = self._shard(name).get(run_hash)
            if record is None or record.get("schema") != serialization.SCHEMA_VERSION:
                return None
            try:
                return payload_to_result(record["result"])
            except SerializationError:
                self._quarantine_record(name, record)
                return None

    def _quarantine_record(
        self, shard_name: str, record: Dict[str, Any]
    ) -> None:
        """Move one undeserialisable record out of its shard."""
        m = _metrics.METRICS
        if m.enabled:
            m.inc("store.quarantined_lines")
        with open(self._quarantine_dir / "bad-records.jsonl", "a",
                  encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        records = dict(self._shard(shard_name))
        records.pop(record.get("run_hash"), None)
        self._rewrite_shard(shard_name, records)

    def get_many(
        self, run_hashes: Iterable[str]
    ) -> Dict[str, SimulationResult]:
        """Cached results for every hit among ``run_hashes``."""
        found: Dict[str, SimulationResult] = {}
        for run_hash in run_hashes:
            result = self.get(run_hash)
            if result is not None:
                found[run_hash] = result
        return found

    def put(
        self,
        run_hash: str,
        result: SimulationResult,
        coords: Optional[Dict[str, object]] = None,
    ) -> None:
        """Persist one result under its run hash (append, atomic per line)."""
        run_hash = self._validate_hash(run_hash)
        record: Dict[str, Any] = {
            "run_hash": run_hash,
            "schema": serialization.SCHEMA_VERSION,
            # Provenance metadata (when the record landed), exempt from the
            # determinism contract — never read back into simulation state.
            "saved_unix": time.time(),  # lint: allow[KRN002]
            "coords": dict(coords) if coords else None,
            "result": result_to_payload(result),
        }
        line = json.dumps(record, sort_keys=True) + "\n"
        torn = False
        injector = _faults.INJECTOR
        if injector is not None:
            maimed = injector.torn_append(line)
            torn = maimed != line
            line = maimed
        with self._lock:
            name = self._shard_name(run_hash)
            records = self._shard(name)
            with open(self._shards_dir / name, "a", encoding="utf-8") as handle:
                handle.write(line)
                if self.fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
            if torn:
                # Simulated mid-write kill: the record never made it, so the
                # memory cache must not claim it did.  Dropping the shard
                # from the cache forces the next read back through the
                # torn-tail salvage path, like a restart would.
                self._loaded.pop(name, None)
            else:
                records[run_hash] = record

    def __contains__(self, run_hash: str) -> bool:
        return self.get(run_hash) is not None

    def __len__(self) -> int:
        with self._lock:
            return sum(
                1
                for name in self._shard_names_on_disk()
                for record in self._shard(name).values()
                if record.get("schema") == serialization.SCHEMA_VERSION
            )

    def __bool__(self) -> bool:
        # An *empty* store must still be truthy: without this, __len__ makes
        # ``store if store else None``-style guards silently disable caching
        # on every cold start.
        return True

    def invalidate(self, run_hash: str) -> bool:
        """Drop one cached result; returns whether it existed."""
        run_hash = self._validate_hash(run_hash)
        with self._lock:
            name = self._shard_name(run_hash)
            records = dict(self._shard(name))
            if run_hash not in records:
                return False
            records.pop(run_hash)
            self._rewrite_shard(name, records)
            return True

    def clear(self) -> int:
        """Drop every cached result; returns how many were removed."""
        with self._lock:
            removed = len(self)
            for name in self._shard_names_on_disk():
                (self._shards_dir / name).unlink()
            self._loaded.clear()
            return removed

    def gc(self) -> GcStats:
        """Rewrite every shard, dropping stale-schema records and duplicates.

        Shard files are append-only, so a hash overwritten by a newer run or
        invalidated by a schema bump leaves dead lines behind; ``gc``
        compacts them away and reports what was reclaimed.
        """
        with self._lock:
            dropped_stale = 0
            duplicates = 0
            reclaimed = 0
            for name in self._shard_names_on_disk():
                path = self._shards_dir / name
                before = path.stat().st_size if path.exists() else 0
                self._loaded.pop(name, None)
                live = self._shard(name)  # re-load, salvaging corruption
                raw_lines = 0
                if path.exists():
                    with open(path, "r", encoding="utf-8") as handle:
                        raw_lines = sum(1 for line in handle if line.strip())
                kept = {
                    run_hash: record
                    for run_hash, record in live.items()
                    if record.get("schema") == serialization.SCHEMA_VERSION
                }
                dropped_stale += len(live) - len(kept)
                duplicates += raw_lines - len(live)
                self._rewrite_shard(name, kept)
                after = path.stat().st_size if path.exists() else 0
                reclaimed += max(0, before - after)
            return GcStats(
                dropped_stale=dropped_stale,
                dropped_duplicates=duplicates,
                reclaimed_bytes=reclaimed,
            )

    def stats(self) -> StoreStats:
        """Count live results, stale records, shards and quarantined files."""
        with self._lock:
            n_results = 0
            n_stale = 0
            total_bytes = 0
            shard_names = self._shard_names_on_disk()
            for name in shard_names:
                path = self._shards_dir / name
                if path.exists():
                    total_bytes += path.stat().st_size
                for record in self._shard(name).values():
                    if record.get("schema") == serialization.SCHEMA_VERSION:
                        n_results += 1
                    else:
                        n_stale += 1
            return StoreStats(
                path=str(self.path),
                schema_version=serialization.SCHEMA_VERSION,
                n_results=n_results,
                n_stale=n_stale,
                n_shards=len(shard_names),
                n_quarantined=sum(
                    1 for p in self._quarantine_dir.iterdir() if p.is_file()
                ),
                n_artifacts=len(self.list_artifacts()),
                total_bytes=total_bytes,
            )

    # -------------------------------------------------------------- artifacts
    def _artifact_path(self, name: str) -> Path:
        if not _ARTIFACT_PATTERN.match(name):
            raise ValueError(
                f"artifact name {name!r} must match {_ARTIFACT_PATTERN.pattern}"
            )
        return self._artifacts_dir / f"{name}.json"

    def put_artifact(self, name: str, payload: object) -> Path:
        """Atomically persist a named JSON document next to the results.

        Used by the benchmark harness for per-figure timing/result
        trajectories; anything JSON-serialisable goes.
        """
        path = self._artifact_path(name)
        with self._lock:
            self._write_atomic(path, json.dumps(payload, indent=2,
                                                sort_keys=True) + "\n")
        return path

    def get_artifact(self, name: str) -> Optional[object]:
        """Load a named JSON document, or None if absent/unreadable."""
        path = self._artifact_path(name)
        with self._lock:
            if not path.exists():
                return None
            try:
                return json.loads(path.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                self._quarantine_file(path)
                return None

    def list_artifacts(self) -> List[str]:
        """Names of the stored artifacts, sorted."""
        return sorted(p.stem for p in self._artifacts_dir.glob("*.json"))

    def __repr__(self) -> str:
        return f"ResultStore({str(self.path)!r})"
