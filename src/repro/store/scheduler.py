"""Work-stealing scheduler and the asyncio-driven executor built on it.

Static chunking (what :class:`~repro.api.executors.ParallelExecutor` does)
is fine for homogeneous grids but leaves workers idle behind the slowest
chunks when point costs vary — exactly the situation of paper-scale sweeps,
where a 180-user point costs an order of magnitude more than a 20-user one.
:class:`WorkStealingScheduler` implements the classic dynamic alternative:

* every point is its own task, pre-assigned to per-worker deques by greedy
  longest-processing-time (LPT) balancing over a cost estimate;
* each worker consumes its own deque front-first (most expensive remaining
  task first), so the big rocks start early;
* a worker whose deque runs dry *steals* from the back of the most-loaded
  victim's deque, so nobody idles while work remains.

:class:`AsyncExecutor` drives the scheduler with one asyncio worker
coroutine per process-pool slot.  It satisfies the
:class:`~repro.api.executors.Executor` protocol (plus the incremental
``execute_with_sink`` extension the caching layer relies on), reports
progress per completed point, and supports cooperative cancellation: after
:meth:`AsyncExecutor.cancel` no new point is dispatched, in-flight points
finish (and reach the sink), and :class:`ExecutionCancelled` carries the
partial results.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from typing import Deque, List, Optional, Sequence, Tuple, cast

from repro.api.executors import (
    ProgressCallback,
    ResultSink,
    _run_point,
    _worker_init,
    _worker_run_chunk,
    estimated_point_cost,
)
from repro.api.spec import RunPoint
from repro.config import SimulationParameters
from repro.faults import injector as _faults
from repro.faults.retry import RetryPolicy
from repro.obs import clock as _obs_clock
from repro.obs import metrics as _metrics
from repro.obs import trace as _obs_trace
from repro.obs.report import RunTelemetry
from repro.sim.results import SimulationResult

__all__ = ["WorkStealingScheduler", "AsyncExecutor", "ExecutionCancelled"]


class ExecutionCancelled(RuntimeError):
    """A grid execution was cancelled before every point finished.

    Attributes
    ----------
    completed:
        Number of points that finished (their results reached the sink).
    total:
        Number of points in the cancelled grid.
    results:
        Partial result list in run-list order (``None`` for unfinished
        points).
    """

    def __init__(self, completed: int, total: int,
                 results: Sequence[Optional[SimulationResult]]) -> None:
        super().__init__(
            f"execution cancelled after {completed} of {total} runs"
        )
        self.completed = completed
        self.total = total
        self.results = list(results)


class WorkStealingScheduler:
    """Per-worker task deques with LPT seeding and back-of-deque stealing.

    Parameters
    ----------
    n_workers:
        Number of consuming workers (one deque each).
    tasks:
        ``(item, cost)`` pairs; any hashable/opaque ``item`` goes.

    The scheduler is thread-safe; :meth:`next_for` is the only consuming
    operation and every task is handed out exactly once.
    """

    def __init__(
        self, n_workers: int, tasks: Sequence[Tuple[object, float]]
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        self.n_workers = n_workers
        self._lock = threading.Lock()
        self._queues: List[Deque[Tuple[object, float]]] = [
            deque() for _ in range(n_workers)
        ]
        self._loads = [0.0] * n_workers
        self.steals = 0
        self.dispatched = 0
        # Greedy LPT: walk the tasks most-expensive-first, always assigning
        # to the least-loaded worker.  Each deque ends up cost-descending,
        # so owners pop big tasks from the front and thieves take the cheap
        # tail (cheap tasks are the best to migrate late in the run).
        for item, cost in sorted(
            tasks, key=lambda task: -float(task[1])
        ):
            worker = min(range(n_workers), key=lambda w: self._loads[w])
            self._queues[worker].append((item, float(cost)))
            self._loads[worker] += float(cost)

    def __len__(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._queues)

    def remaining_load(self, worker: int) -> float:
        """Estimated cost still queued for one worker."""
        with self._lock:
            return self._loads[worker]

    def next_for(self, worker: int) -> Optional[object]:
        """Next task item for ``worker``; None when the whole grid is done.

        Takes from the worker's own deque first (front — most expensive
        remaining), then steals from the back of the most-loaded victim.
        """
        if not 0 <= worker < self.n_workers:
            raise ValueError(f"no such worker: {worker}")
        with self._lock:
            queue = self._queues[worker]
            if queue:
                item, cost = queue.popleft()
                self._loads[worker] -= cost
                self.dispatched += 1
                return item
            victim = max(
                (w for w in range(self.n_workers) if self._queues[w]),
                key=lambda w: self._loads[w],
                default=None,
            )
            if victim is None:
                return None
            item, cost = self._queues[victim].pop()
            self._loads[victim] -= cost
            self.steals += 1
            self.dispatched += 1
            return item

    def __repr__(self) -> str:
        return (
            f"WorkStealingScheduler(n_workers={self.n_workers}, "
            f"remaining={len(self)}, steals={self.steals})"
        )


class AsyncExecutor:
    """Work-stealing, per-point process fan-out behind an asyncio front.

    Unlike :class:`~repro.api.executors.ParallelExecutor`'s static chunks,
    every point is dispatched individually in cost-estimate order, so a few
    expensive points cannot strand the rest of the pool.  Results are
    identical to serial execution (each point is an independent seeded
    simulation); only the completion order differs.

    Parameters
    ----------
    n_workers:
        Worker processes (and scheduler deques); defaults to the CPU count.
    cancel_event:
        Optional externally-owned :class:`threading.Event`; set it (or call
        :meth:`cancel`) to stop dispatching new points.  A cancelled
        execution raises :class:`ExecutionCancelled` after the in-flight
        points finish.
    """

    def __init__(
        self,
        n_workers: Optional[int] = None,
        cancel_event: Optional[threading.Event] = None,
    ) -> None:
        import os

        if n_workers is not None and n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        self.n_workers = n_workers if n_workers is not None else (os.cpu_count() or 1)
        self._cancel_event = cancel_event or threading.Event()
        #: Scheduler of the most recent execution (stealing statistics).
        self.last_scheduler: Optional[WorkStealingScheduler] = None
        #: ``(position, error)`` pairs of the most recent execution.  A
        #: raising point no longer kills its worker silently: the failure is
        #: recorded here, surviving workers drain the remaining deque, and
        #: the first error re-raises only after the grid has wound down.
        self.last_errors: List[Tuple[int, BaseException]] = []

    def cancel(self) -> None:
        """Stop dispatching new points; in-flight points still finish."""
        self._cancel_event.set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._cancel_event.is_set()

    # ------------------------------------------------------------------- API
    def execute(
        self,
        points: Sequence[RunPoint],
        params: SimulationParameters,
        progress: Optional[ProgressCallback] = None,
    ) -> List[SimulationResult]:
        return self.execute_with_sink(points, params, progress)

    def execute_with_sink(
        self,
        points: Sequence[RunPoint],
        params: SimulationParameters,
        progress: Optional[ProgressCallback] = None,
        sink: Optional[ResultSink] = None,
        telemetry: Optional[RunTelemetry] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> List[SimulationResult]:
        """Synchronous entry point (wraps :meth:`execute_async`)."""
        return asyncio.run(
            self.execute_async(
                points, params, progress=progress, sink=sink,
                telemetry=telemetry, retry=retry,
            )
        )

    async def execute_async(
        self,
        points: Sequence[RunPoint],
        params: SimulationParameters,
        progress: Optional[ProgressCallback] = None,
        sink: Optional[ResultSink] = None,
        telemetry: Optional[RunTelemetry] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> List[SimulationResult]:
        """Evaluate the grid on the running event loop."""
        total = len(points)
        if total == 0:
            return []
        if self.n_workers == 1 or total == 1:
            return self._execute_serial(
                points, params, progress, sink, telemetry, retry
            )

        n_workers = min(self.n_workers, total)
        scheduler = WorkStealingScheduler(
            n_workers,
            [((position, point), estimated_point_cost(point))
             for position, point in enumerate(points)],
        )
        self.last_scheduler = scheduler
        self.last_errors = []
        results: List[Optional[SimulationResult]] = [None] * total
        done = 0
        loop = asyncio.get_running_loop()

        busy_seconds = [0.0] * n_workers
        plan = _faults.active_plan()
        fault_spec = plan.to_spec() if plan is not None else None

        with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_worker_init,
            initargs=(
                params,
                telemetry is not None,
                telemetry.phase_split if telemetry is not None else False,
                retry,
                fault_spec,
            ),
        ) as pool:

            async def worker(worker_id: int) -> None:
                nonlocal done
                while not self._cancel_event.is_set():
                    task = scheduler.next_for(worker_id)
                    if task is None:
                        return
                    position, point = cast(Tuple[int, RunPoint], task)
                    job = (
                        point.index, point.scenario, point.param_overrides,
                        point.run_hash(),
                    )
                    t0 = _obs_clock.now()
                    try:
                        chunk = await loop.run_in_executor(
                            pool, _worker_run_chunk, [job]
                        )
                    except Exception as error:
                        # Hardened path: record the failure and keep this
                        # worker draining the deque — one bad point must not
                        # strand the rest of the grid without a final
                        # progress report.
                        busy_seconds[worker_id] += _obs_clock.now() - t0
                        self.last_errors.append((position, error))
                        m = _metrics.METRICS
                        if m.enabled:
                            m.inc("executor.worker_errors")
                        continue
                    busy_seconds[worker_id] += _obs_clock.now() - t0
                    _index, result, info = chunk[0]
                    results[position] = result
                    done += 1
                    if telemetry is not None and info is not None:
                        telemetry.record_point(
                            position,
                            run_hash=point.run_hash(),
                            protocol=point.scenario.protocol,
                            coords=point.coords_dict(),
                            **info,  # type: ignore[arg-type]
                        )
                    if sink is not None:
                        sink(position, point, result)
                    if progress is not None:
                        progress(done, total)

            await asyncio.gather(*(worker(w) for w in range(n_workers)))

        m = _metrics.METRICS
        if m.enabled:
            m.inc("scheduler.steals", scheduler.steals)
            m.inc("executor.worker_busy_seconds", sum(busy_seconds))

        if self._cancel_event.is_set() and done != total:
            self._finalize_cancelled(progress, done, total)
            raise ExecutionCancelled(done, total, results)
        if self.last_errors:
            # Every dispatchable point ran; deliver the definitive progress
            # state and the trace, then surface the first failure unchanged
            # (callers keep seeing the original exception type).
            self._finalize_cancelled(progress, done, total)
            raise self.last_errors[0][1]
        if done != total or any(r is None for r in results):
            raise RuntimeError(
                f"async pool produced {done} of {total} results"
            )  # pragma: no cover - defensive; workers re-raise errors
        return results  # type: ignore[return-value]

    @staticmethod
    def _finalize_cancelled(
        progress: Optional[ProgressCallback], done: int, total: int
    ) -> None:
        """Deliver the final progress state and flush the trace sink.

        Runs *before* :class:`ExecutionCancelled` propagates, so a progress
        consumer always observes the definitive ``(done, total)`` of a
        cancelled grid (even if cancellation struck before any point ran)
        and a ``--trace`` file is complete up to the cancellation point.
        """
        if progress is not None:
            progress(done, total)
        tracer = _obs_trace.TRACER
        if tracer is not None:
            tracer.flush()

    def _execute_serial(
        self,
        points: Sequence[RunPoint],
        params: SimulationParameters,
        progress: Optional[ProgressCallback],
        sink: Optional[ResultSink],
        telemetry: Optional[RunTelemetry] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> List[SimulationResult]:
        """Single-worker path: in-process, but same cancel/sink semantics."""
        total = len(points)
        self.last_errors = []
        results: List[Optional[SimulationResult]] = [None] * total
        done = 0
        for position, point in enumerate(points):
            if self._cancel_event.is_set():
                self._finalize_cancelled(progress, done, total)
                raise ExecutionCancelled(done, total, results)
            try:
                result = _run_point(position, point, params, telemetry, retry)
            except Exception as error:
                self.last_errors.append((position, error))
                m = _metrics.METRICS
                if m.enabled:
                    m.inc("executor.worker_errors")
                continue
            results[position] = result
            done += 1
            if sink is not None:
                sink(position, point, result)
            if progress is not None:
                progress(done, total)
        if self.last_errors:
            self._finalize_cancelled(progress, done, total)
            raise self.last_errors[0][1]
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:
        return f"AsyncExecutor(n_workers={self.n_workers})"
