"""Transparent result caching over any executor.

:class:`CachingExecutor` wraps an inner
:class:`~repro.api.executors.Executor` and a
:class:`~repro.store.store.ResultStore`: points whose
:meth:`~repro.api.spec.RunPoint.run_hash` is already stored are served from
disk without simulating, and every freshly computed result is persisted *as
it completes* (through the inner executor's ``execute_with_sink`` extension
when available), which makes ``run()`` resumable — kill a sweep half-way and
the next identical invocation only executes the missing points.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.api.executors import (
    Executor,
    ProgressCallback,
    ResultSink,
    SerialExecutor,
    accepts_retry,
    accepts_telemetry,
)
from repro.api.spec import RunPoint, config_digest
from repro.config import SimulationParameters
from repro.faults import injector as _faults
from repro.faults.retry import RetryPolicy
from repro.obs import clock as _obs_clock
from repro.obs import metrics as _metrics
from repro.obs.report import RunTelemetry
from repro.sim.results import SimulationResult
from repro.store.store import ResultStore

__all__ = ["CachingExecutor"]


class CachingExecutor:
    """Serve cached points from a :class:`ResultStore`, compute the rest.

    Parameters
    ----------
    store:
        The on-disk result store (or a path-like, which opens one).
    inner:
        Executor for the cache misses; defaults to :class:`SerialExecutor`.

    After each :meth:`execute` call, :attr:`hits` and :attr:`misses` report
    how many points were served from the store versus simulated — the
    accounting the selftest and the acceptance tests assert on.
    """

    def __init__(
        self,
        store: Union[ResultStore, str, "os.PathLike[str]"],
        inner: Optional[Executor] = None,
    ) -> None:
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.inner: Executor = inner if inner is not None else SerialExecutor()
        #: Cache hits / misses of the most recent execute() call.
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ keys
    @staticmethod
    def key_for(point: RunPoint, params: SimulationParameters) -> str:
        """The store key of one point under the given shared parameters.

        ``run_hash()`` already folds in the spec's parameter digest; points
        built outside :meth:`~repro.api.spec.ExperimentSpec.expand` (legacy
        paths) may carry an empty digest, in which case the digest of the
        parameters actually in force is filled in so the same scenario under
        different base parameters can never collide.
        """
        if not point.params_digest:
            point = dataclasses.replace(point, params_digest=config_digest(params))
        return point.run_hash()

    # ------------------------------------------------------------------- API
    def execute(
        self,
        points: Sequence[RunPoint],
        params: SimulationParameters,
        progress: Optional[ProgressCallback] = None,
    ) -> List[SimulationResult]:
        return self.execute_with_sink(points, params, progress)

    def execute_with_sink(
        self,
        points: Sequence[RunPoint],
        params: SimulationParameters,
        progress: Optional[ProgressCallback] = None,
        sink: Optional[ResultSink] = None,
        telemetry: Optional[RunTelemetry] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> List[SimulationResult]:
        total = len(points)
        self.hits = 0
        self.misses = 0
        results: List[Optional[SimulationResult]] = [None] * total
        keys = [self.key_for(point, params) for point in points]

        missing: List[int] = []
        for position, point in enumerate(points):
            t0 = _obs_clock.now() if telemetry is not None else 0.0
            cached = self.store.get(keys[position])
            if cached is not None and cached.scenario != point.scenario:
                # Defensive: a digest collision (or a poisoned entry) must
                # surface as a miss, never as a wrong result.
                cached = None
            if cached is None:
                missing.append(position)
            else:
                results[position] = cached
                self.hits += 1
                if telemetry is not None:
                    # A hit's wall time is the store lookup itself.
                    telemetry.record_point(
                        position,
                        run_hash=keys[position],
                        protocol=point.scenario.protocol,
                        coords=point.coords_dict(),
                        wall_s=_obs_clock.now() - t0,
                        cache="hit",
                    )
                # The sink contract is "called once per available result",
                # not "once per simulation" — layered consumers (e.g. a
                # caching executor wrapping this one) rely on seeing hits
                # too.
                if sink is not None:
                    sink(position, point, cached)
        if progress is not None and self.hits:
            progress(self.hits, total)

        self.misses = len(missing)
        m = _metrics.METRICS
        if m.enabled:
            if self.hits:
                m.inc("store.cache_hit", self.hits)
            if self.misses:
                m.inc("store.cache_miss", self.misses)
        if missing:
            sub_points = [points[position] for position in missing]

            def inner_sink(sub_position: int, point: RunPoint,
                           result: SimulationResult) -> None:
                position = missing[sub_position]
                results[position] = result
                if isinstance(result, SimulationResult):
                    injector = _faults.INJECTOR
                    if injector is not None:
                        injector.sink_write(keys[position])
                    self.store.put(keys[position], result,
                                   coords=point.coords_dict())
                # A FailedPoint outcome is never persisted: the point stays
                # a cache miss, so the next identical invocation retries it.
                if sink is not None:
                    sink(position, point, result)

            def inner_progress(sub_done: int, _sub_total: int) -> None:
                if progress is not None:
                    progress(self.hits + sub_done, total)

            inner_telemetry = (
                telemetry.child() if telemetry is not None else None
            )
            execute_with_sink = getattr(self.inner, "execute_with_sink", None)
            if execute_with_sink is not None:
                kwargs: Dict[str, Any] = {}
                if inner_telemetry is not None and accepts_telemetry(
                    execute_with_sink
                ):
                    kwargs["telemetry"] = inner_telemetry
                else:
                    inner_telemetry = None
                if retry is not None:
                    if not accepts_retry(execute_with_sink):
                        raise ValueError(
                            f"inner executor {self.inner!r} does not accept "
                            "a retry policy"
                        )
                    kwargs["retry"] = retry
                execute_with_sink(
                    sub_points, params, inner_progress, inner_sink, **kwargs
                )
            else:
                # Plain Executor protocol: results only arrive at the end,
                # so persistence is batched rather than incremental.
                if retry is not None:
                    raise ValueError(
                        f"inner executor {self.inner!r} does not accept "
                        "a retry policy"
                    )
                inner_telemetry = None
                sub_results = self.inner.execute(
                    sub_points, params, inner_progress
                )
                for sub_position, result in enumerate(sub_results):
                    inner_sink(sub_position, sub_points[sub_position], result)
            if telemetry is not None and inner_telemetry is not None:
                # Remap the child's sub-positions onto grid positions and
                # re-label every computed point as a miss.
                telemetry.absorb(
                    inner_telemetry, positions=missing, cache="miss"
                )

        if any(r is None for r in results):
            raise RuntimeError(
                "inner executor did not produce a result for every miss"
            )  # pragma: no cover - defensive; inner executors validate this
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:
        return f"CachingExecutor(store={self.store!r}, inner={self.inner!r})"
