"""Channel-state-information estimation and staleness tracking.

A critical component of the CHARISMA protocol (paper Section 4.4) is how the
base station learns each requester's CSI:

* a *new* request carries known pilot symbols, from which the base station
  estimates the sender's CSI; because the short-term coherence time (~10 ms)
  spans several 2.5 ms frames, that estimate remains valid for roughly two
  frames;
* a *backlog* request's estimate eventually goes stale; the base station then
  short-lists up to ``N_b`` backlog requests per frame and polls them — the
  polled devices transmit pilot symbols in the pilot-symbol subframe, giving
  fresh estimates valid for another couple of frames.

:class:`CSIEstimator` models pilot-based estimation as the true amplitude
corrupted by a zero-mean Gaussian error whose standard deviation shrinks with
the number of pilot symbols and with the receive SNR.  :class:`CSIEstimate`
carries the value plus the frame stamp needed for staleness decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CSIEstimate", "CSIEstimator"]


@dataclass(frozen=True)
class CSIEstimate:
    """A CSI estimate together with its provenance.

    Attributes
    ----------
    amplitude:
        Estimated composite channel amplitude (non-negative).
    frame_index:
        Frame in which the pilot symbols were received.
    validity_frames:
        Number of frames (starting at ``frame_index``) during which the
        estimate is considered trustworthy.
    """

    amplitude: float
    frame_index: int
    validity_frames: int = 2

    def __post_init__(self) -> None:
        if self.amplitude < 0:
            raise ValueError("amplitude must be non-negative")
        if self.validity_frames < 1:
            raise ValueError("validity_frames must be at least 1")

    def is_stale(self, current_frame: int) -> bool:
        """Whether the estimate has expired by ``current_frame``."""
        return current_frame - self.frame_index >= self.validity_frames

    def age(self, current_frame: int) -> int:
        """Number of frames elapsed since the estimate was taken."""
        return current_frame - self.frame_index


class CSIEstimator:
    """Pilot-symbol CSI estimator at the base station.

    Parameters
    ----------
    n_pilot_symbols:
        Number of known pilot symbols available per estimate.
    mean_snr_db:
        Average SNR at unit amplitude; higher SNR means a cleaner estimate.
    validity_frames:
        Validity window attached to produced estimates.
    rng:
        Random generator for the estimation noise.
    perfect:
        If True the estimator returns the true amplitude (useful for
        ablations isolating the scheduling gain from estimation error).
    """

    def __init__(
        self,
        n_pilot_symbols: int = 16,
        mean_snr_db: float = 18.0,
        validity_frames: int = 2,
        rng: np.random.Generator | None = None,
        perfect: bool = False,
    ) -> None:
        if n_pilot_symbols < 1:
            raise ValueError("n_pilot_symbols must be at least 1")
        if validity_frames < 1:
            raise ValueError("validity_frames must be at least 1")
        self._n_pilots = int(n_pilot_symbols)
        self._mean_snr_linear = 10.0 ** (float(mean_snr_db) / 10.0)
        self._validity = int(validity_frames)
        # Seedless convenience default for standalone/unit-test use only;
        # engine-owned instances always inject a RandomStreams generator.
        self._rng = rng if rng is not None else np.random.default_rng()  # lint: allow[RNG001]
        self._perfect = bool(perfect)

    # ------------------------------------------------------------------ API
    @property
    def n_pilot_symbols(self) -> int:
        """Number of pilot symbols per estimate."""
        return self._n_pilots

    @property
    def validity_frames(self) -> int:
        """Validity window attached to produced estimates."""
        return self._validity

    @property
    def perfect(self) -> bool:
        """Whether estimation noise is disabled."""
        return self._perfect

    @property
    def noise_rng(self) -> np.random.Generator:
        """The generator the estimation noise is drawn from.

        Exposed so block-stepped callers can prefetch standard normals from
        the *same* stream (``noise = std * z`` with ``z`` consumed element
        by element, exactly like :meth:`estimate_amplitudes`'s batched
        ``Generator.normal`` call) and roll back unconsumed draws — the
        macro engine's CSI pooling in fast RNG mode.
        """
        return self._rng

    def estimation_std(self, true_amplitude: float) -> float:
        """Standard deviation of the amplitude estimation error.

        Pilot-based ML estimation of a complex gain from ``N`` pilots at SNR
        ``gamma`` has an error variance of roughly ``1 / (N * gamma)`` on the
        complex gain; for the amplitude we use the same scale, floored at the
        true amplitude's own magnitude contribution so deep fades remain
        estimable.
        """
        if true_amplitude < 0:
            raise ValueError("true_amplitude must be non-negative")
        if self._perfect:
            return 0.0
        return float(np.sqrt(1.0 / (2.0 * self._n_pilots * self._mean_snr_linear)))

    def estimate(self, true_amplitude: float, frame_index: int) -> CSIEstimate:
        """Produce a CSI estimate of ``true_amplitude`` taken at ``frame_index``."""
        std = self.estimation_std(true_amplitude)
        if std == 0.0:
            value = float(true_amplitude)
        else:
            value = float(true_amplitude + self._rng.normal(scale=std))
        return CSIEstimate(
            amplitude=max(0.0, value),
            frame_index=int(frame_index),
            validity_frames=self._validity,
        )

    def estimate_many(self, true_amplitudes, frame_index: int) -> list[CSIEstimate]:
        """Estimate several amplitudes with one batched noise draw.

        Consumes the random stream exactly as the equivalent sequence of
        :meth:`estimate` calls would (the estimation noise draw is batched;
        ``Generator.normal`` fills arrays element by element), so scalar and
        batched estimation stay bit-identical — the property the columnar
        engine's parity with the object backend relies on.
        """
        amplitudes = np.asarray(true_amplitudes, dtype=float)
        if amplitudes.size == 0:
            return []
        if np.any(amplitudes < 0):
            raise ValueError("true_amplitude must be non-negative")
        if self._perfect:
            values = amplitudes
        else:
            std = self.estimation_std(0.0)
            values = amplitudes + self._rng.normal(scale=std, size=amplitudes.shape[0])
        return [
            CSIEstimate(
                amplitude=max(0.0, float(value)),
                frame_index=int(frame_index),
                validity_frames=self._validity,
            )
            for value in values
        ]

    def estimate_amplitudes(self, true_amplitudes, frame_index: int) -> np.ndarray:
        """Column form of :meth:`estimate_many`: estimated amplitudes only.

        Consumes the random stream exactly like :meth:`estimate_many` (and
        therefore like the equivalent sequence of scalar :meth:`estimate`
        calls) but returns the clamped amplitude column directly — the
        array-native MAC kernels keep the frame stamp in their own request
        columns instead of materialising a :class:`CSIEstimate` per row.
        """
        amplitudes = np.asarray(true_amplitudes, dtype=float)
        if amplitudes.size == 0:
            return np.zeros(0, dtype=float)
        if np.any(amplitudes < 0):
            raise ValueError("true_amplitude must be non-negative")
        if self._perfect:
            return amplitudes.astype(float, copy=True)
        std = self.estimation_std(0.0)
        values = amplitudes + self._rng.normal(scale=std, size=amplitudes.shape[0])
        return np.maximum(0.0, values)
