"""Fixed-throughput (non-adaptive) modem.

D-TDMA/FR, RAMA, RMAV and DRMA are evaluated in the paper on top of a
conventional fixed-throughput physical layer: every information slot carries
exactly one packet at the reference rate, with a channel encoder dimensioned
for the *average* channel.  When a user's instantaneous channel drops below
the encoder's design point the transmitted packet is likely lost — this is
precisely the wasteful behaviour CHARISMA avoids.

:class:`FixedRateModem` mirrors the :class:`~repro.phy.abicm.AdaptiveModem`
interface so the simulation engine can treat both uniformly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.phy.ber import (
    ber_approximation,
    packet_success_probability,
    packet_success_probability_for_snr_db,
    required_snr_db,
    snr_db_to_linear,
)
from repro.phy.modes import ModeTable, TransmissionMode

__all__ = ["FixedRateModem"]


class FixedRateModem:
    """Constant-throughput modem used by the non-adaptive baseline protocols.

    Parameters
    ----------
    throughput:
        Normalised throughput of the single transmission mode (the reference
        rate: one packet per information slot).
    target_ber:
        Design-point BER; the corresponding SNR is the mode's nominal
        operating threshold (used only for reporting — transmissions are
        attempted regardless of the channel, unlike the adaptive modem).
    mean_snr_db:
        Average received SNR at unit composite amplitude.
    packet_size_bits:
        Packet length for packet-level success probabilities.
    """

    def __init__(
        self,
        throughput: float = 1.0,
        target_ber: float = 1e-3,
        mean_snr_db: float = 18.0,
        packet_size_bits: int = 160,
    ) -> None:
        if throughput <= 0:
            raise ValueError("throughput must be positive")
        if packet_size_bits < 1:
            raise ValueError("packet_size_bits must be at least 1")
        self._throughput = float(throughput)
        self._target_ber = float(target_ber)
        self._mean_snr_db = float(mean_snr_db)
        self._packet_bits = int(packet_size_bits)
        self._mode = TransmissionMode(
            index=0,
            throughput=self._throughput,
            snr_threshold_db=required_snr_db(self._throughput, self._target_ber),
        )
        # Constant of the BER approximation at the fixed rate; dividing the
        # batched SNR vector by this scalar is bit-identical to evaluating
        # ``2**eta - 1`` per element.
        self._ber_denominator = 2.0**self._throughput - 1.0

    # ------------------------------------------------------------------ API
    @property
    def is_adaptive(self) -> bool:
        """Fixed-rate modems report ``False``."""
        return False

    @property
    def mean_snr_db(self) -> float:
        """Average SNR at unit amplitude."""
        return self._mean_snr_db

    @property
    def packet_size_bits(self) -> int:
        """Packet length in bits."""
        return self._packet_bits

    @property
    def nominal_mode(self) -> TransmissionMode:
        """The single transmission mode of this modem."""
        return self._mode

    @property
    def max_packets_per_slot(self) -> int:
        """A fixed-rate information slot always carries exactly one packet."""
        return 1

    @property
    def mode_table(self) -> Optional[ModeTable]:
        """Fixed-rate modems have no adaptation table."""
        return None

    # ------------------------------------------------------------- mappings
    def snr_db_from_amplitude(self, amplitude) -> np.ndarray:
        """Convert composite CSI amplitude(s) to instantaneous SNR in dB."""
        amp = np.asarray(amplitude, dtype=float)
        with np.errstate(divide="ignore"):
            amp_db = 20.0 * np.log10(amp)
        result = self._mean_snr_db + amp_db
        if np.isscalar(amplitude):
            return float(result)
        return result

    def select_mode(self, amplitude: float) -> TransmissionMode:
        """The fixed mode is always selected, whatever the channel."""
        return self._mode

    def throughput(self, amplitude) -> np.ndarray:
        """Constant normalised throughput regardless of the channel."""
        amp = np.asarray(amplitude, dtype=float)
        result = np.full_like(amp, self._throughput, dtype=float)
        if np.isscalar(amplitude):
            return float(self._throughput)
        return result

    def packets_per_slot(self, amplitude) -> np.ndarray:
        """Always one packet per information slot."""
        amp = np.asarray(amplitude, dtype=float)
        result = np.ones_like(amp, dtype=int)
        if np.isscalar(amplitude):
            return 1
        return result

    def instantaneous_ber(
        self, amplitude: float, throughput: Optional[float] = None
    ) -> float:
        """BER at the fixed rate (or an explicit override) for the given amplitude."""
        snr_db = float(self.snr_db_from_amplitude(float(amplitude)))
        rate = self._throughput if throughput is None else float(throughput)
        return float(ber_approximation(rate, float(snr_db_to_linear(snr_db))))

    def packet_success_probability(
        self, amplitude: float, throughput: Optional[float] = None
    ) -> float:
        """Probability an entire packet is received without error."""
        return float(
            packet_success_probability(
                self.instantaneous_ber(amplitude, throughput), self._packet_bits
            )
        )

    def packet_success_probabilities(
        self, amplitudes, throughputs=None, snr_db=None
    ) -> np.ndarray:
        """Vectorised :meth:`packet_success_probability` over many grants.

        ``throughputs`` may be ``None`` or contain ``np.nan`` entries, both
        meaning the fixed reference rate; explicit values override it (the
        engine never does this on the fixed PHY, but the adaptive interface
        is mirrored).  ``snr_db`` optionally supplies precomputed per-grant
        SNRs (same convention as the channel snapshot).  Bit-identical to
        the scalar method per element.
        """
        if snr_db is None:
            snr_db = self.snr_db_from_amplitude(np.asarray(amplitudes, dtype=float))
        else:
            snr_db = np.asarray(snr_db, dtype=float)
        if throughputs is None:
            denominator = self._ber_denominator
        else:
            eta = np.asarray(throughputs, dtype=float)
            missing = np.isnan(eta)
            if missing.any():
                eta = eta.copy()
                eta[missing] = self._throughput
            denominator = np.power(2.0, eta) - 1.0
        return packet_success_probability_for_snr_db(
            snr_db, denominator, self._packet_bits
        )

    def in_outage(self, amplitude) -> np.ndarray:
        """Whether the instantaneous channel is below the design threshold."""
        snr = self.snr_db_from_amplitude(amplitude)
        result = np.asarray(snr) < self._mode.snr_threshold_db
        if np.isscalar(amplitude):
            return bool(result)
        return result
