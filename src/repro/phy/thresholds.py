"""Constant-BER adaptation-threshold design.

The paper operates the ABICM adaptive PHY in *constant BER mode*: "the
adaptation thresholds are set optimally to maintain a target transmission
error level over a range of CSI values."  Under the exponential BER
approximation of :mod:`repro.phy.ber` the optimal threshold of mode ``q`` is
simply the SNR at which its BER equals the target — above that point the mode
is safe, below it the next more robust mode must be used.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.phy.ber import required_snr_db

__all__ = ["constant_ber_thresholds_db"]


def constant_ber_thresholds_db(
    throughputs: Sequence[float], target_ber: float
) -> List[float]:
    """Lower SNR threshold (dB) of each mode for constant-BER operation.

    Parameters
    ----------
    throughputs:
        Ascending normalised throughputs of the modes.
    target_ber:
        Target bit-error rate, in ``(0, 0.2)``.

    Returns
    -------
    list of float
        Strictly increasing SNR thresholds, one per mode.  The first entry is
        also the outage threshold: below it no mode can maintain the target.
    """
    if len(throughputs) == 0:
        raise ValueError("at least one mode throughput is required")
    ordered = list(throughputs)
    if ordered != sorted(ordered):
        raise ValueError("throughputs must be sorted ascending")
    thresholds = [required_snr_db(eta, target_ber) for eta in ordered]
    # Monotonicity is guaranteed analytically (2**eta - 1 is increasing); the
    # assertion documents the invariant relied upon by ModeTable.searchsorted.
    for lower, upper in zip(thresholds, thresholds[1:]):
        if not upper > lower:
            raise ValueError("mode thresholds must be strictly increasing")
    return thresholds
