"""Packet-level transmission error model.

The paper's loss accounting distinguishes *packet dropping* (a voice packet
missing its deadline at the sender) from *packet transmission error* (a
transmitted packet corrupted by the channel).  :class:`PacketErrorModel`
produces the latter: given the modem in use and the transmitter's composite
channel amplitude at transmission time, it decides stochastically whether
each transmitted packet is received error-free.

Both the adaptive and the fixed-rate modem expose
``packet_success_probability(amplitude)``; the error model simply draws
Bernoulli outcomes from a dedicated random stream so that error realisations
are reproducible and independent of the traffic/contention randomness.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.phy.abicm import AdaptiveModem
from repro.phy.fixed import FixedRateModem
from repro.lint.contracts import kernel

__all__ = ["PacketErrorModel"]

Modem = Union[AdaptiveModem, FixedRateModem]


class PacketErrorModel:
    """Bernoulli packet-error sampler on top of a modem's success probability.

    Parameters
    ----------
    modem:
        The physical layer in use (adaptive or fixed-rate).
    rng:
        Random generator dedicated to channel-error draws.
    """

    def __init__(self, modem: Modem, rng: np.random.Generator) -> None:
        self._modem = modem
        self._rng = rng

    @property
    def modem(self) -> Modem:
        """The modem whose success probabilities drive the error draws."""
        return self._modem

    def success_probability(
        self, amplitude: float, throughput: float | None = None
    ) -> float:
        """Per-packet success probability at the given channel amplitude.

        ``throughput`` overrides the mode the modem would pick from the
        *current* amplitude — used when a previously announced mode is
        transmitted over a channel that has since changed.
        """
        return self._modem.packet_success_probability(amplitude, throughput)

    def transmit_packet(self, amplitude: float, throughput: float | None = None) -> bool:
        """Simulate one packet transmission; ``True`` if received error-free."""
        return bool(self._rng.random() < self.success_probability(amplitude, throughput))

    def transmit_packets(
        self, amplitude: float, n_packets: int, throughput: float | None = None
    ) -> int:
        """Simulate ``n_packets`` transmissions in the same slot/channel state.

        Returns the number of packets received without error.  All packets in
        the same information slot see the same channel state (the coherence
        time far exceeds a slot duration), hence a single success probability
        and a binomial draw.
        """
        if n_packets < 0:
            raise ValueError("n_packets must be non-negative")
        if n_packets == 0:
            return 0
        p = self.success_probability(amplitude, throughput)
        return int(self._rng.binomial(n_packets, p))

    @kernel
    def success_probabilities(
        self, amplitudes, throughputs=None, snr_db=None
    ) -> np.ndarray:
        """Vectorised per-grant success probabilities.

        ``throughputs`` may be ``None`` or contain ``np.nan`` entries, which
        select the modem's default mode at the corresponding amplitude —
        bit-identical to calling :meth:`success_probability` per element.
        ``snr_db`` optionally supplies the per-grant SNRs (snapshot
        convention) to skip the amplitude conversion.
        """
        return self._modem.packet_success_probabilities(
            amplitudes, throughputs, snr_db=snr_db
        )

    @kernel
    def transmit_batch(
        self, amplitudes, n_packets, throughputs=None, snr_db=None
    ) -> np.ndarray:
        """Simulate one frame's grants in a single vectorised call.

        Parameters
        ----------
        amplitudes:
            Channel amplitude per grant at transmission time, shape ``(n,)``.
        n_packets:
            Packets transmitted per grant (all positive; zero-packet grants
            must be filtered out by the caller, matching the scalar path
            where :meth:`transmit_packets` returns early without consuming
            randomness).
        throughputs:
            Announced transmission mode per grant; ``np.nan`` entries (or
            ``None`` for the whole batch) select the modem default.
        snr_db:
            Optional precomputed per-grant SNRs (the channel snapshot's
            convention), skipping the amplitude-to-SNR conversion.

        Returns
        -------
        numpy.ndarray
            Packets received without error per grant.

        RNG-stream compatibility
        ------------------------
        NumPy's :meth:`~numpy.random.Generator.binomial` consumes the
        underlying bit stream element by element, so this single batched
        draw returns exactly the values (and leaves exactly the generator
        state) that sequential :meth:`transmit_packets` calls over the same
        grants would — the property the columnar engine backend's
        bit-for-bit parity with the object backend rests on.
        """
        counts = np.asarray(n_packets, dtype=np.int64)
        if counts.size == 0:
            return np.zeros(0, dtype=np.int64)
        if counts.min() <= 0:
            raise ValueError(
                "transmit_batch requires positive per-grant packet counts; "
                "filter zero-packet grants out (the scalar path skips them "
                "without drawing)"
            )
        probabilities = self.success_probabilities(
            amplitudes, throughputs, snr_db=snr_db
        )
        return self._rng.binomial(counts, probabilities)
