"""Packet-level transmission error model.

The paper's loss accounting distinguishes *packet dropping* (a voice packet
missing its deadline at the sender) from *packet transmission error* (a
transmitted packet corrupted by the channel).  :class:`PacketErrorModel`
produces the latter: given the modem in use and the transmitter's composite
channel amplitude at transmission time, it decides stochastically whether
each transmitted packet is received error-free.

Both the adaptive and the fixed-rate modem expose
``packet_success_probability(amplitude)``; the error model simply draws
Bernoulli outcomes from a dedicated random stream so that error realisations
are reproducible and independent of the traffic/contention randomness.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.phy.abicm import AdaptiveModem
from repro.phy.fixed import FixedRateModem

__all__ = ["PacketErrorModel"]

Modem = Union[AdaptiveModem, FixedRateModem]


class PacketErrorModel:
    """Bernoulli packet-error sampler on top of a modem's success probability.

    Parameters
    ----------
    modem:
        The physical layer in use (adaptive or fixed-rate).
    rng:
        Random generator dedicated to channel-error draws.
    """

    def __init__(self, modem: Modem, rng: np.random.Generator) -> None:
        self._modem = modem
        self._rng = rng

    @property
    def modem(self) -> Modem:
        """The modem whose success probabilities drive the error draws."""
        return self._modem

    def success_probability(
        self, amplitude: float, throughput: float | None = None
    ) -> float:
        """Per-packet success probability at the given channel amplitude.

        ``throughput`` overrides the mode the modem would pick from the
        *current* amplitude — used when a previously announced mode is
        transmitted over a channel that has since changed.
        """
        return self._modem.packet_success_probability(amplitude, throughput)

    def transmit_packet(self, amplitude: float, throughput: float | None = None) -> bool:
        """Simulate one packet transmission; ``True`` if received error-free."""
        return bool(self._rng.random() < self.success_probability(amplitude, throughput))

    def transmit_packets(
        self, amplitude: float, n_packets: int, throughput: float | None = None
    ) -> int:
        """Simulate ``n_packets`` transmissions in the same slot/channel state.

        Returns the number of packets received without error.  All packets in
        the same information slot see the same channel state (the coherence
        time far exceeds a slot duration), hence a single success probability
        and a binomial draw.
        """
        if n_packets < 0:
            raise ValueError("n_packets must be non-negative")
        if n_packets == 0:
            return 0
        p = self.success_probability(amplitude, throughput)
        return int(self._rng.binomial(n_packets, p))
