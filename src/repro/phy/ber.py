"""Bit-error-rate approximations for the adaptive physical layer.

The ABICM scheme of the paper is characterised, for MAC purposes, by the
mapping between instantaneous SNR, spectral efficiency (normalised
throughput) and bit-error rate.  We use the classic exponential
approximation for coded/uncoded M-QAM over an AWGN-per-symbol channel
(Chung & Goldsmith)::

    BER(eta, gamma) ~ 0.2 * exp( -1.5 * gamma / (2**eta - 1) )

where ``gamma`` is the *linear* instantaneous SNR and ``eta`` the number of
information bits per symbol.  The approximation is monotone in both
arguments and analytically invertible, which makes it ideal for the
constant-BER threshold design of :mod:`repro.phy.thresholds`.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "BER_COEFFICIENT",
    "BER_SNR_FACTOR",
    "ber_approximation",
    "required_snr_linear",
    "required_snr_db",
    "snr_db_to_linear",
    "snr_linear_to_db",
    "packet_success_probability",
    "packet_success_probability_for_snr_db",
]

#: Multiplicative constant of the exponential BER approximation.
BER_COEFFICIENT: float = 0.2

#: SNR scaling constant of the exponential BER approximation.
BER_SNR_FACTOR: float = 1.5


def snr_db_to_linear(snr_db):
    """Convert an SNR in dB to linear scale (vectorised)."""
    return np.power(10.0, np.asarray(snr_db, dtype=float) / 10.0)


def snr_linear_to_db(snr_linear):
    """Convert a linear SNR to dB (vectorised; zero maps to ``-inf``)."""
    snr = np.asarray(snr_linear, dtype=float)
    with np.errstate(divide="ignore"):
        return 10.0 * np.log10(snr)


def ber_approximation(throughput: float, snr_linear):
    """Approximate BER for a mode with ``throughput`` bits/symbol at ``snr_linear``.

    Parameters
    ----------
    throughput:
        Normalised throughput ``eta`` (information bits per symbol), > 0.
    snr_linear:
        Instantaneous linear SNR (scalar or array), >= 0.

    Returns
    -------
    float or numpy.ndarray
        The approximate bit-error rate, clipped to the physically meaningful
        interval ``[0, 0.5]``.
    """
    if throughput <= 0:
        raise ValueError("throughput must be positive")
    snr = np.asarray(snr_linear, dtype=float)
    if np.any(snr < 0):
        raise ValueError("snr_linear must be non-negative")
    ber = BER_COEFFICIENT * np.exp(-BER_SNR_FACTOR * snr / (2.0**throughput - 1.0))
    ber = np.clip(ber, 0.0, 0.5)
    if np.isscalar(snr_linear):
        return float(ber)
    return ber


def required_snr_linear(throughput: float, target_ber: float) -> float:
    """Minimum linear SNR at which ``throughput`` sustains ``target_ber``.

    Inverts :func:`ber_approximation`.  Raises if the target is not
    achievable under the approximation (i.e. ``target_ber >= 0.2``, where the
    required SNR would be non-positive).
    """
    if throughput <= 0:
        raise ValueError("throughput must be positive")
    if not 0.0 < target_ber < BER_COEFFICIENT:
        raise ValueError(
            f"target_ber must lie in (0, {BER_COEFFICIENT}) for the exponential "
            f"approximation, got {target_ber}"
        )
    return -(2.0**throughput - 1.0) * math.log(target_ber / BER_COEFFICIENT) / BER_SNR_FACTOR


def required_snr_db(throughput: float, target_ber: float) -> float:
    """Minimum SNR in dB at which ``throughput`` sustains ``target_ber``."""
    return float(snr_linear_to_db(required_snr_linear(throughput, target_ber)))


def packet_success_probability_for_snr_db(
    snr_db, throughput_denominator, packet_bits: int
) -> np.ndarray:
    """Batched packet success probability straight from SNR values (dB).

    ``throughput_denominator`` is the ``2**eta - 1`` term of
    :func:`ber_approximation` — a scalar for a single-rate modem or an
    array with one entry per grant.  Element for element this evaluates
    exactly the scalar chain ``packet_success_probability(
    ber_approximation(eta, snr_linear), packet_bits)`` (the upper BER clamp
    uses ``minimum`` because the approximation is never negative), which is
    what keeps the batched PHY bit-identical to the scalar path.
    """
    if packet_bits < 1:
        raise ValueError("packet_bits must be at least 1")
    snr_linear = np.power(10.0, np.asarray(snr_db, dtype=float) / 10.0)
    ber = BER_COEFFICIENT * np.exp(
        -BER_SNR_FACTOR * snr_linear / throughput_denominator
    )
    ber = np.minimum(ber, 0.5)
    return np.power(1.0 - ber, packet_bits)


def packet_success_probability(ber, packet_bits: int):
    """Probability that a ``packet_bits``-bit packet is received error-free.

    Assumes independent bit errors after interleaving:
    ``P_success = (1 - BER)**L``.
    """
    if packet_bits < 1:
        raise ValueError("packet_bits must be at least 1")
    ber_arr = np.clip(np.asarray(ber, dtype=float), 0.0, 1.0)
    prob = np.power(1.0 - ber_arr, packet_bits)
    if np.isscalar(ber):
        return float(prob)
    return prob
