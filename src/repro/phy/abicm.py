"""Adaptive (ABICM-style) variable-throughput modem.

:class:`AdaptiveModem` is the object the MAC layer interacts with: given the
channel state of a user it answers *which transmission mode would be used*,
*how many packets one information slot would then carry*, and *what the
instantaneous BER / packet success probability would be*.  It therefore
realises the conceptual block diagram of Fig. 6 and the staircase of Fig. 7
of the paper, operated in constant-BER mode.

CSI convention
--------------
The MAC protocols reason about CSI as a composite *amplitude* ``c`` (the
quantity estimated from pilot symbols).  The modem converts amplitudes to
instantaneous SNR as ``snr_db = mean_snr_db + 20 log10(c)`` — the same
convention used by :class:`repro.channel.manager.ChannelManager` — and then
consults the mode table.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.phy.ber import (
    ber_approximation,
    packet_success_probability,
    packet_success_probability_for_snr_db,
    snr_db_to_linear,
)
from repro.phy.modes import OUTAGE_MODE_INDEX, ModeTable, TransmissionMode

__all__ = ["AdaptiveModem"]


class AdaptiveModem:
    """Variable-throughput channel-adaptive modem (paper Section 4.2).

    Parameters
    ----------
    mode_table:
        The 6-mode table with constant-BER thresholds.
    mean_snr_db:
        Average received SNR at unit composite channel amplitude; converts
        CSI amplitudes to instantaneous SNR.
    packet_size_bits:
        Packet length used for packet-level success probabilities.
    """

    def __init__(
        self,
        mode_table: ModeTable,
        mean_snr_db: float = 18.0,
        packet_size_bits: int = 160,
    ) -> None:
        if packet_size_bits < 1:
            raise ValueError("packet_size_bits must be at least 1")
        self._modes = mode_table
        self._mean_snr_db = float(mean_snr_db)
        self._packet_bits = int(packet_size_bits)

    # ------------------------------------------------------------------ API
    @property
    def mode_table(self) -> ModeTable:
        """The underlying mode table."""
        return self._modes

    @property
    def mean_snr_db(self) -> float:
        """Average SNR at unit amplitude."""
        return self._mean_snr_db

    @property
    def packet_size_bits(self) -> int:
        """Packet length in bits."""
        return self._packet_bits

    @property
    def is_adaptive(self) -> bool:
        """Adaptive modems report ``True``; the fixed-rate modem ``False``."""
        return True

    @property
    def max_packets_per_slot(self) -> int:
        """Upper bound on packets carried by a single information slot."""
        return self._modes.max_packets_per_slot

    # ------------------------------------------------------------- mappings
    def snr_db_from_amplitude(self, amplitude) -> np.ndarray:
        """Convert composite CSI amplitude(s) to instantaneous SNR in dB."""
        amp = np.asarray(amplitude, dtype=float)
        with np.errstate(divide="ignore"):
            amp_db = 20.0 * np.log10(amp)
        result = self._mean_snr_db + amp_db
        if np.isscalar(amplitude):
            return float(result)
        return result

    def mode_index(self, amplitude) -> np.ndarray:
        """Mode index per amplitude; :data:`OUTAGE_MODE_INDEX` in outage."""
        return self._modes.mode_index_for_snr(self.snr_db_from_amplitude(amplitude))

    def select_mode(self, amplitude: float) -> Optional[TransmissionMode]:
        """Highest sustainable mode for the given amplitude (None in outage)."""
        return self._modes.mode_for_snr(float(self.snr_db_from_amplitude(float(amplitude))))

    def throughput(self, amplitude) -> np.ndarray:
        """Normalised throughput delivered at the given amplitude(s).

        This is the quantity ``f(CSI)`` consumed by the CHARISMA priority
        metric: zero in outage, up to the top mode's throughput in excellent
        conditions.
        """
        return self._modes.throughput_for_snr(self.snr_db_from_amplitude(amplitude))

    def packets_per_slot(self, amplitude) -> np.ndarray:
        """Packets one information slot carries at the given amplitude(s)."""
        return self._modes.packets_per_slot_for_snr(self.snr_db_from_amplitude(amplitude))

    def instantaneous_ber(
        self, amplitude: float, throughput: Optional[float] = None
    ) -> float:
        """BER experienced when transmitting at the given channel amplitude.

        By default the mode the modem would *currently* select is used; pass
        ``throughput`` to evaluate the BER of a previously announced mode
        instead (this is how the engine models a mode chosen from a stale CSI
        estimate being used on the channel as it actually is at transmission
        time).  In outage the most robust mode is (forcedly) used, so the
        returned BER exceeds the target — the dashed region of Fig. 7a.
        """
        snr_db = float(self.snr_db_from_amplitude(float(amplitude)))
        if throughput is None:
            mode = self._modes.mode_for_snr(snr_db)
            throughput = mode.throughput if mode is not None else self._modes[0].throughput
        return float(ber_approximation(throughput, float(snr_db_to_linear(snr_db))))

    def packet_success_probability(
        self, amplitude: float, throughput: Optional[float] = None
    ) -> float:
        """Probability an entire packet is received without error."""
        return float(
            packet_success_probability(
                self.instantaneous_ber(amplitude, throughput), self._packet_bits
            )
        )

    def packet_success_probabilities(
        self, amplitudes, throughputs=None, snr_db=None
    ) -> np.ndarray:
        """Vectorised :meth:`packet_success_probability` over many grants.

        Parameters
        ----------
        amplitudes:
            Composite channel amplitude per grant, shape ``(n,)``.
        throughputs:
            Announced transmission mode per grant; ``None`` (or ``np.nan``
            entries) means "the mode the modem would currently select",
            falling back to the most robust mode in outage — exactly the
            scalar default.  The result is bit-identical to calling
            :meth:`packet_success_probability` element by element.
        snr_db:
            Optional precomputed instantaneous SNR per grant (e.g. gathered
            from a :class:`~repro.channel.manager.ChannelSnapshot`, which
            applies the same amplitude-to-SNR convention); skips the
            per-call conversion.
        """
        if snr_db is None:
            snr_db = self.snr_db_from_amplitude(np.asarray(amplitudes, dtype=float))
        else:
            snr_db = np.asarray(snr_db, dtype=float)
        if throughputs is None:
            eta = np.full(snr_db.shape, np.nan)
        else:
            eta = np.asarray(throughputs, dtype=float)
        missing = np.isnan(eta)
        if missing.any():
            selected = self._modes.throughput_for_snr(snr_db[missing])
            selected = np.where(
                np.asarray(selected, dtype=float) > 0.0,
                selected,
                self._modes[0].throughput,
            )
            eta = eta.copy()
            eta[missing] = selected
        return packet_success_probability_for_snr_db(
            snr_db, np.power(2.0, eta) - 1.0, self._packet_bits
        )

    def in_outage(self, amplitude) -> np.ndarray:
        """True where the amplitude falls below the adaptation range."""
        idx = self.mode_index(amplitude)
        result = idx == OUTAGE_MODE_INDEX
        if np.isscalar(amplitude):
            return bool(result)
        return result
