"""Transmission-mode table of the 6-mode adaptive physical layer.

The paper's ABICM scheme offers six transmission modes with normalised
throughput (information bits per modulation symbol) ranging from 1/2 to 5.
Mode ``q`` is selected whenever the estimated CSI falls inside the adaptation
interval ``[gamma_{q}, gamma_{q+1})``; below the lowest threshold even mode 0
cannot maintain the target BER and the link is in *outage* (Fig. 7a).

:class:`ModeTable` holds the ordered list of :class:`TransmissionMode`
entries together with their constant-BER SNR thresholds and provides
vectorised mode lookup for the simulation engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.phy.ber import required_snr_db
from repro.phy.thresholds import constant_ber_thresholds_db

__all__ = ["TransmissionMode", "ModeTable", "OUTAGE_MODE_INDEX"]

#: Sentinel mode index returned when the channel is below the lowest
#: adaptation threshold (the paper's "adaptation range exceeded" situation).
OUTAGE_MODE_INDEX: int = -1


@dataclass(frozen=True)
class TransmissionMode:
    """One entry of the adaptive-PHY mode table.

    Attributes
    ----------
    index:
        Mode number ``q`` (0 = most robust / lowest throughput).
    throughput:
        Normalised throughput in information bits per symbol.
    snr_threshold_db:
        Minimum instantaneous SNR (dB) at which the mode still satisfies the
        target BER — the lower edge of its adaptation interval.
    """

    index: int
    throughput: float
    snr_threshold_db: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("index must be non-negative")
        if self.throughput <= 0:
            raise ValueError("throughput must be positive")

    def packets_per_slot(self, reference_throughput: float) -> int:
        """Number of packets a slot in this mode carries.

        The reference throughput corresponds to one packet per slot; higher
        modes proportionally pack more packets.  The result is floored to an
        integer but never below one — a granted slot always carries at least
        one packet, mirroring the paper's mode-0 "very low throughput" case
        where a packet simply occupies the whole slot with heavy redundancy.
        """
        if reference_throughput <= 0:
            raise ValueError("reference_throughput must be positive")
        return max(1, int(np.floor(self.throughput / reference_throughput + 1e-9)))


class ModeTable:
    """Ordered collection of the adaptive-PHY transmission modes.

    Parameters
    ----------
    throughputs:
        Ascending normalised throughputs of the modes (paper: ``(0.5, 1, 2,
        3, 4, 5)``).
    target_ber:
        Target bit-error rate of the constant-BER operation.
    reference_throughput:
        Throughput equivalent to one packet per information slot.
    """

    def __init__(
        self,
        throughputs: Sequence[float] = (0.5, 1.0, 2.0, 3.0, 4.0, 5.0),
        target_ber: float = 1e-3,
        reference_throughput: float = 1.0,
    ) -> None:
        throughputs = tuple(float(t) for t in throughputs)
        if len(throughputs) < 2:
            raise ValueError("a mode table needs at least two modes")
        if list(throughputs) != sorted(throughputs):
            raise ValueError("throughputs must be sorted ascending")
        if len(set(throughputs)) != len(throughputs):
            raise ValueError("throughputs must be distinct")
        if reference_throughput <= 0:
            raise ValueError("reference_throughput must be positive")
        self._target_ber = float(target_ber)
        self._reference = float(reference_throughput)
        thresholds = constant_ber_thresholds_db(throughputs, target_ber)
        self._modes: Tuple[TransmissionMode, ...] = tuple(
            TransmissionMode(index=i, throughput=t, snr_threshold_db=thr)
            for i, (t, thr) in enumerate(zip(throughputs, thresholds))
        )
        self._thresholds_db = np.asarray(thresholds, dtype=float)
        # (mode_index + 1)-addressed lookup columns, with row 0 = outage —
        # shared by every vectorised per-grant capacity/throughput path.
        self._throughput_lut = np.concatenate(
            ([0.0], [m.throughput for m in self._modes])
        )
        self._packets_lut = np.concatenate(
            ([0], [m.packets_per_slot(self._reference) for m in self._modes])
        )

    # ------------------------------------------------------------------ API
    @property
    def target_ber(self) -> float:
        """Target BER of the constant-BER threshold design."""
        return self._target_ber

    @property
    def reference_throughput(self) -> float:
        """Throughput equivalent to one packet per information slot."""
        return self._reference

    @property
    def thresholds_db(self) -> np.ndarray:
        """Lower SNR thresholds (dB) of each mode, ascending."""
        return self._thresholds_db.copy()

    @property
    def outage_threshold_db(self) -> float:
        """SNR below which even the most robust mode violates the target BER."""
        return float(self._thresholds_db[0])

    @property
    def max_throughput(self) -> float:
        """Throughput of the highest mode."""
        return self._modes[-1].throughput

    @property
    def max_packets_per_slot(self) -> int:
        """Packets per slot delivered by the highest mode."""
        return self._modes[-1].packets_per_slot(self._reference)

    def __len__(self) -> int:
        return len(self._modes)

    def __iter__(self) -> Iterator[TransmissionMode]:
        return iter(self._modes)

    def __getitem__(self, index: int) -> TransmissionMode:
        return self._modes[index]

    def mode_index_for_snr(self, snr_db) -> np.ndarray:
        """Vectorised mode lookup.

        Returns, for each SNR value, the index of the highest mode whose
        threshold does not exceed it, or :data:`OUTAGE_MODE_INDEX` when the
        SNR is below the lowest threshold.
        """
        snr = np.asarray(snr_db, dtype=float)
        # searchsorted gives the count of thresholds <= snr; subtract one.
        idx = np.searchsorted(self._thresholds_db, snr, side="right") - 1
        return idx.astype(int)

    def mode_for_snr(self, snr_db: float) -> Optional[TransmissionMode]:
        """Scalar mode lookup; ``None`` when the link is in outage."""
        idx = int(self.mode_index_for_snr(float(snr_db)))
        if idx == OUTAGE_MODE_INDEX:
            return None
        return self._modes[idx]

    @property
    def throughput_by_mode_index(self) -> np.ndarray:
        """Throughput addressed by ``mode_index + 1`` (row 0 = outage = 0.0)."""
        return self._throughput_lut

    @property
    def packets_by_mode_index(self) -> np.ndarray:
        """Packets/slot addressed by ``mode_index + 1`` (row 0 = outage = 0)."""
        return self._packets_lut

    def throughput_for_snr(self, snr_db) -> np.ndarray:
        """Vectorised normalised throughput (0 in outage) — Fig. 7b staircase."""
        snr = np.asarray(snr_db, dtype=float)
        idx = self.mode_index_for_snr(snr)
        result = self._throughput_lut[idx + 1]
        if np.isscalar(snr_db):
            return float(result)
        return result

    def packets_per_slot_for_snr(self, snr_db) -> np.ndarray:
        """Vectorised packets-per-slot (0 in outage)."""
        snr = np.asarray(snr_db, dtype=float)
        idx = self.mode_index_for_snr(snr)
        result = self._packets_lut[idx + 1]
        if np.isscalar(snr_db):
            return int(result)
        return result

    def describe(self) -> list[dict]:
        """Mode table rows for documentation / the Fig. 7 benchmark."""
        return [
            {
                "mode": m.index,
                "throughput_bits_per_symbol": m.throughput,
                "snr_threshold_db": round(m.snr_threshold_db, 3),
                "packets_per_slot": m.packets_per_slot(self._reference),
                "required_snr_check_db": round(
                    required_snr_db(m.throughput, self._target_ber), 3
                ),
            }
            for m in self._modes
        ]
