"""Physical-layer substrate.

The paper's CHARISMA protocol sits on a *variable-throughput channel-adaptive*
physical layer (an adaptive bit-interleaved coded modulation, ABICM, scheme
with six transmission modes whose normalised throughput ranges from 1/2 to 5
information bits per symbol), operated in **constant-BER mode**: the
adaptation thresholds are chosen so that, whichever mode is active, the
instantaneous bit-error rate stays at (or below) the target level.  When the
channel is so poor that even the lowest mode cannot maintain the target BER
the link is in outage (Fig. 7a of the paper).

We reproduce that staircase abstractly rather than at the coded-bit level:

* :mod:`repro.phy.ber` — the classic exponential BER approximation for
  coded M-QAM used to translate SNR into error rates and back;
* :mod:`repro.phy.modes` / :mod:`repro.phy.thresholds` — the mode table and
  the constant-BER threshold design;
* :mod:`repro.phy.abicm` — the adaptive modem (mode selection, throughput and
  packets-per-slot as a function of CSI), i.e. Fig. 7b;
* :mod:`repro.phy.fixed` — the fixed-rate modem used by the non-adaptive
  baselines (D-TDMA/FR, RAMA, RMAV, DRMA);
* :mod:`repro.phy.error_model` — packet-level success/failure decisions;
* :mod:`repro.phy.csi` — pilot-symbol CSI estimation with noise and
  staleness, used by the CHARISMA CSI gathering/polling mechanism.
"""

from repro.phy.abicm import AdaptiveModem
from repro.phy.ber import (
    ber_approximation,
    required_snr_db,
    required_snr_linear,
    snr_db_to_linear,
    snr_linear_to_db,
)
from repro.phy.csi import CSIEstimate, CSIEstimator
from repro.phy.error_model import PacketErrorModel
from repro.phy.fixed import FixedRateModem
from repro.phy.modes import OUTAGE_MODE_INDEX, ModeTable, TransmissionMode
from repro.phy.thresholds import constant_ber_thresholds_db

__all__ = [
    "AdaptiveModem",
    "CSIEstimate",
    "CSIEstimator",
    "FixedRateModem",
    "ModeTable",
    "OUTAGE_MODE_INDEX",
    "PacketErrorModel",
    "TransmissionMode",
    "ber_approximation",
    "constant_ber_thresholds_db",
    "required_snr_db",
    "required_snr_linear",
    "snr_db_to_linear",
    "snr_linear_to_db",
]
