"""MAC substrate and the five baseline uplink access-control protocols.

The subpackage provides the shared machinery every protocol builds on —
slotted contention, voice reservations, the optional base-station request
queue, frame-structure descriptors, the request/allocation records — and the
five state-of-the-art protocols the paper compares CHARISMA against
(Section 3): RAMA, RMAV, DRMA, D-TDMA/FR and D-TDMA/VR.  CHARISMA itself
lives in :mod:`repro.core` but registers through the same
:mod:`repro.mac.registry`.

Every protocol exists in two interchangeable forms: the view-walking
``run_frame`` path over per-terminal objects/views, and an array-native
``run_frame_batch`` kernel operating directly on
:class:`~repro.traffic.population.TerminalPopulation` columns (id-array
contention via :func:`run_contention_ids`, columnar request pools via
:class:`~repro.mac.requests.RequestColumns`, grant emission via
:class:`~repro.mac.requests.GrantColumns`).  In parity RNG mode the two are
bit-identical; see ``tests/mac/test_kernel_equivalence.py``.
"""

from repro.mac.base import MACProtocol
from repro.mac.contention import (
    ContentionResult,
    IndexContentionResult,
    run_contention,
    run_contention_ids,
)
from repro.mac.drma import DRMAProtocol
from repro.mac.dtdma_fr import DTDMAFRProtocol
from repro.mac.dtdma_vr import DTDMAVRProtocol
from repro.mac.frames import FrameStructure
from repro.mac.rama import RAMAProtocol
from repro.mac.registry import (
    available_protocols,
    build_modem,
    create_protocol,
    protocol_class,
)
from repro.mac.request_queue import RequestQueue
from repro.mac.requests import (
    Acknowledgement,
    Allocation,
    FrameOutcome,
    GrantColumns,
    Request,
    RequestColumns,
)
from repro.mac.reservation import ReservationTable
from repro.mac.rmav import RMAVProtocol

__all__ = [
    "Acknowledgement",
    "Allocation",
    "ContentionResult",
    "DRMAProtocol",
    "DTDMAFRProtocol",
    "DTDMAVRProtocol",
    "FrameOutcome",
    "FrameStructure",
    "GrantColumns",
    "IndexContentionResult",
    "MACProtocol",
    "RAMAProtocol",
    "RMAVProtocol",
    "Request",
    "RequestColumns",
    "RequestQueue",
    "ReservationTable",
    "available_protocols",
    "build_modem",
    "create_protocol",
    "protocol_class",
    "run_contention",
    "run_contention_ids",
]
