"""Abstract base class and shared machinery for uplink MAC protocols.

Every protocol in the study — the five baselines and CHARISMA — is a
:class:`MACProtocol`.  The simulation engine drives it with one call per
2.5 ms TDMA frame::

    outcome = protocol.run_frame(frame_index, terminals, channel_snapshot)

and then executes the returned :class:`~repro.mac.requests.FrameOutcome`
(transmitting packets through the PHY error model and updating terminal
statistics).  The base class provides the machinery all protocols share:

* permission-probability gated contention candidates,
* the voice reservation table ("a slot every 20 ms until the talkspurt
  ends"),
* the optional base-station request queue,
* translation of a channel state into an information-slot packet capacity
  via the protocol's modem (adaptive or fixed-rate).
"""

from __future__ import annotations

import abc
import functools
import math
from typing import ClassVar, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.channel.manager import ChannelSnapshot
from repro.config import SimulationParameters
from repro.lint.contracts import kernel
from repro.obs import trace as _obs_trace
from repro.mac.frames import FrameStructure
from repro.mac.request_queue import RequestQueue
from repro.mac.requests import (
    Allocation,
    FrameOutcome,
    GrantColumns,
    Request,
    RequestColumns,
)
from repro.mac.reservation import ReservationTable
from repro.phy.abicm import AdaptiveModem
from repro.phy.fixed import FixedRateModem
from repro.traffic.packets import TrafficKind
from repro.traffic.permission import PermissionPolicy
from repro.traffic.terminal import Terminal

__all__ = ["MACProtocol", "Modem", "terminal_lookup", "traced_batch"]

Modem = Union[AdaptiveModem, FixedRateModem]


def traced_batch(run_frame_batch):
    """Wrap a ``run_frame_batch`` entry in a ``mac.<name>.batch`` span.

    Applied to the base default and every shipped protocol's override, so
    a trace attributes each frame's MAC phase to the protocol that ran it
    (nested under the engine's ``phase.mac`` span).  Costs one module
    attribute check per frame when no tracer is installed.
    """

    @functools.wraps(run_frame_batch)
    def traced(self, frame_index, population, snapshot):
        tracer = _obs_trace.TRACER
        if tracer is None:
            return run_frame_batch(self, frame_index, population, snapshot)
        with tracer.span(f"mac.{self.name}.batch", frame=frame_index):
            return run_frame_batch(self, frame_index, population, snapshot)

    return traced


class _DenseTerminalLookup:
    """Mapping-like id lookup over a dense (id == index) terminal sequence.

    Replaces the per-frame ``{t.terminal_id: t for t in terminals}`` dict
    build — an O(n) Python loop — with direct indexing when the sequence
    guarantees dense ids (the engine validates the layout at construction).
    """

    __slots__ = ("_terminals",)

    def __init__(self, terminals: Sequence[Terminal]) -> None:
        self._terminals = terminals

    def get(self, terminal_id: int, default=None):
        if 0 <= terminal_id < len(self._terminals):
            return self._terminals[terminal_id]
        return default

    def __getitem__(self, terminal_id: int):
        terminal = self.get(terminal_id)
        if terminal is None:
            raise KeyError(terminal_id)
        return terminal

    def __contains__(self, terminal_id: int) -> bool:
        return 0 <= terminal_id < len(self._terminals)


def snapshot_snr_compatible(modem, params: SimulationParameters) -> bool:
    """Whether a snapshot's ``snr_db`` can replace the modem's conversion.

    :class:`~repro.channel.manager.ChannelSnapshot` and the modems apply the
    same ``mean_snr_db + 20 log10(amplitude)`` convention, so precomputed
    snapshot SNRs are interchangeable with per-grant conversion exactly when
    the mean-SNR operating points agree (always true for registry-built
    protocols; custom test modems may differ).  Single source of truth for
    the engine's and the MAC substrate's reuse decisions.
    """
    return getattr(modem, "mean_snr_db", None) == params.mean_snr_db


def terminal_lookup(terminals: Sequence[Terminal]):
    """Return an id -> terminal mapping for a population sequence.

    Sequences that guarantee dense ids (``dense_ids`` attribute, e.g. the
    columnar backend's :class:`~repro.traffic.population.TerminalViews`)
    get an O(1) index-based lookup; anything else falls back to the classic
    dict build, so arbitrary id layouts used in unit tests keep working.
    """
    if getattr(terminals, "dense_ids", False):
        return _DenseTerminalLookup(terminals)
    return {t.terminal_id: t for t in terminals}


class MACProtocol(abc.ABC):
    """Common behaviour of all uplink access-control protocols.

    Parameters
    ----------
    params:
        Simulation parameters (Table 1).
    modem:
        The physical layer the protocol runs on.  CHARISMA and D-TDMA/VR use
        an :class:`~repro.phy.abicm.AdaptiveModem`; the other baselines a
        :class:`~repro.phy.fixed.FixedRateModem`.
    rng:
        Random generator dedicated to MAC decisions (contention draws,
        auction ids, ...), independent of the channel and error streams.
    use_request_queue:
        Whether the base station keeps the optional request queue of
        Section 4.5.  Ignored for protocols that do not support one (RMAV).
    rng_mode:
        ``"parity"`` (default) keeps every stochastic decision's draw order
        identical to the scalar object-backend path, so the array-native
        ``run_frame_batch`` kernels stay bit-identical to ``run_frame``.
        ``"fast"`` lets the kernels batch a frame's draws into single calls
        against a dedicated contention child stream — statistically
        equivalent, not bit-identical.
    contention_rng:
        The independent child stream fast mode draws contention from
        (see :meth:`repro.sim.rng.RandomStreams.child`); derived from
        ``rng`` when omitted.  Unused in parity mode.
    """

    #: Short machine-readable identifier (registry key).
    name: ClassVar[str] = "abstract"
    #: Human-readable protocol name used in result tables.
    display_name: ClassVar[str] = "abstract"
    #: Whether the protocol runs on the variable-throughput adaptive PHY.
    uses_adaptive_phy: ClassVar[bool] = False
    #: Whether the protocol feeds CSI into its scheduling decisions.
    uses_csi_scheduling: ClassVar[bool] = False
    #: Whether the optional base-station request queue is meaningful.
    supports_request_queue: ClassVar[bool] = True
    #: Whether the macro-stepped engine may execute this protocol's frames
    #: inline (reservation lookahead).  Requires that a frame with an empty
    #: request queue draws randomness only through streams the macro engine
    #: can pool or replay exactly — contention draws, or (CHARISMA, fast
    #: mode only) CSI estimation noise from a dedicated child stream.
    #: Usually a class attribute; protocols whose eligibility depends on
    #: construction (CHARISMA needs ``rng_mode="fast"`` plus an injected
    #: CSI stream) override it per instance, which is why it is a plain
    #: ``bool`` rather than a ``ClassVar``.
    supports_macro_lookahead: bool = False
    #: How the macro runner executes a frame with live contenders when the
    #: protocol has no fixed request subframe (``macro_minislots() is
    #: None``): ``"auction"`` resolves RAMA's sequential auction with direct
    #: scalar draws from ``rng`` (nothing poolable — at most ``N_a`` draw
    #: pairs per frame, in the per-frame call order), ``"slot_loop"`` runs
    #: DRMA's interleaved serve/convert slot loop with pool-fed minislot
    #: draws (winners re-enter the same frame's pending pool), and ``None``
    #: falls back to the per-frame kernel.  ``"csi_schedule"`` (CHARISMA)
    #: is dispatched before the generic frame body entirely: every frame —
    #: contended or quiet — draws CSI noise and ranks its pending pool, so
    #: the runner executes a dedicated inline frame with pooled estimation
    #: noise instead of the holder-serve path.
    macro_contention_style: ClassVar[Optional[str]] = None

    def __init__(
        self,
        params: SimulationParameters,
        modem: Modem,
        rng: np.random.Generator,
        use_request_queue: bool = False,
        rng_mode: str = "parity",
        contention_rng: Optional[np.random.Generator] = None,
    ) -> None:
        if rng_mode not in ("parity", "fast"):
            raise ValueError(f"rng_mode must be 'parity' or 'fast', got {rng_mode!r}")
        self.params = params
        self.modem = modem
        self.rng = rng
        self.rng_mode = rng_mode
        self.rng_fast = rng_mode == "fast"
        if self.rng_fast and contention_rng is None:
            contention_rng = rng.spawn(1)[0]
        #: Stream contention draws come from: the shared MAC stream in
        #: parity mode (scalar call order preserved), a dedicated child in
        #: fast mode (whole-frame batched draws).
        self.contention_rng = contention_rng if self.rng_fast else rng
        self.permission = PermissionPolicy(
            params.voice_permission_probability,
            params.data_permission_probability,
            rng,
        )
        self.reservations = ReservationTable()
        self.use_request_queue = bool(use_request_queue) and self.supports_request_queue
        self.request_queue: Optional[RequestQueue] = (
            RequestQueue(params.request_queue_capacity) if self.use_request_queue else None
        )
        self.frame_structure = self._build_frame_structure()
        self._snapshot_snr_usable = snapshot_snr_compatible(modem, params)
        self._capacity_lut: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._probability_template: Optional[np.ndarray] = None

    # ----------------------------------------------------------- interface
    @abc.abstractmethod
    def _build_frame_structure(self) -> FrameStructure:
        """Return the protocol's uplink frame layout."""

    @abc.abstractmethod
    def run_frame(
        self,
        frame_index: int,
        terminals: Sequence[Terminal],
        snapshot: ChannelSnapshot,
    ) -> FrameOutcome:
        """Run the request and allocation phases of one frame."""

    # ------------------------------------------------------------- helpers
    def contention_candidates(self, terminals: Sequence[Terminal]) -> List[Terminal]:
        """Terminals that would transmit a request this frame.

        * a voice terminal contends while it is in a talkspurt, has packets
          buffered and holds no reservation;
        * a data terminal contends while it has packets buffered;
        * terminals whose earlier request is still queued at the base station
          do not contend again (they are waiting for the announcement).
        """
        population = getattr(terminals, "population", None)
        if population is not None:
            return self._contention_candidates_columnar(terminals, population)
        candidates: List[Terminal] = []
        for terminal in terminals:
            if not terminal.has_pending_packets:
                continue
            if self.request_queue is not None and self.request_queue.contains_terminal(
                terminal.terminal_id
            ):
                continue
            if terminal.is_voice:
                in_talkspurt = getattr(terminal, "in_talkspurt", False)
                if in_talkspurt and not self.reservations.has(terminal.terminal_id):
                    candidates.append(terminal)
            else:
                candidates.append(terminal)
        return candidates

    def _contention_candidates_columnar(
        self, terminals: Sequence[Terminal], population
    ) -> List[Terminal]:
        """Array fast path of :meth:`contention_candidates`.

        Computes the candidate mask over the population arrays and returns
        the matching views in ascending id order — the same order (and the
        same selection rule) as the per-object loop.
        """
        mask = population.occupancy > 0
        voice_mask = population.is_voice
        mask &= population.is_data_mask | population.in_talkspurt
        holders = self.reservations.holder_array()
        if holders.shape[0]:
            holders = holders[holders < mask.shape[0]]
            mask[holders[voice_mask[holders]]] = False
        if self.request_queue is not None and len(self.request_queue):
            for request in self.request_queue:
                if request.terminal_id < len(mask):
                    mask[request.terminal_id] = False
        return [terminals[i] for i in mask.nonzero()[0]]

    def release_finished_reservations(self, terminals: Sequence[Terminal]) -> int:
        """Release voice reservations whose talkspurt has ended."""
        return self.reservations.release_ended_talkspurts(terminals)

    def make_request(
        self,
        terminal: Terminal,
        frame_index: int,
        csi=None,
        is_reservation: bool = False,
    ) -> Request:
        """Build the base-station record of a received (or auto) request."""
        deadline = None
        if terminal.is_voice:
            remaining = terminal.head_deadline_frames(frame_index)
            if remaining is not None:
                deadline = frame_index + remaining
        return Request(
            terminal_id=terminal.terminal_id,
            kind=terminal.kind,
            arrival_frame=frame_index,
            desired_packets=max(1, terminal.buffer_occupancy),
            csi=csi,
            deadline_frame=deadline,
            is_reservation=is_reservation,
        )

    def slot_capacity(self, amplitude: float) -> Tuple[int, Optional[float]]:
        """Packets one information slot carries at the given channel state.

        Returns ``(packets, throughput)`` where ``throughput`` is the
        announced transmission mode (``None`` on the fixed-rate PHY).  On the
        adaptive PHY an outage channel still yields a capacity of one packet
        at the most robust mode — transmitting is allowed, it is just likely
        to fail — because the non-CSI-aware protocols (D-TDMA/VR) do exactly
        that.  CSI-aware allocation (CHARISMA) avoids granting such slots in
        the first place.
        """
        if not self.modem.is_adaptive:
            return 1, None
        mode = self.modem.select_mode(float(amplitude))
        if mode is None:
            lowest = self.modem.mode_table[0]
            return 1, lowest.throughput
        return mode.packets_per_slot(self.modem.mode_table.reference_throughput), mode.throughput

    def snapshot_snr_for(
        self, snapshot: ChannelSnapshot, terminals: Sequence[Terminal]
    ) -> Optional[List[float]]:
        """Per-terminal snapshot SNRs for a batched modem call, or ``None``.

        Returns ``None`` when the modem's SNR convention differs from the
        snapshot's (see :func:`snapshot_snr_compatible`), in which case the
        batched helpers convert from amplitudes instead.
        """
        if not self._snapshot_snr_usable:
            return None
        snr_db = snapshot.snr_db
        return [snr_db[t.terminal_id] for t in terminals]

    @kernel
    def slot_capacities(
        self, amplitudes, snr_db=None
    ) -> List[Tuple[int, Optional[float]]]:
        """Vectorised :meth:`slot_capacity` over many channel amplitudes.

        One batched mode-table lookup instead of one scalar modem call per
        grant; element-for-element identical to :meth:`slot_capacity`
        (including the outage fallback to one packet at the most robust
        mode).  ``snr_db`` optionally supplies precomputed SNRs (snapshot
        convention) to skip the amplitude conversion.
        """
        if not self.modem.is_adaptive:
            return [(1, None)] * len(amplitudes)
        table = self.modem.mode_table
        if snr_db is None:
            snr_db = self.modem.snr_db_from_amplitude(
                np.asarray(amplitudes, dtype=float)
            )
        else:
            snr_db = np.asarray(snr_db, dtype=float)
        indices = table.mode_index_for_snr(snr_db)
        reference = table.reference_throughput
        lowest = table[0]
        result: List[Tuple[int, Optional[float]]] = []
        for index in indices:
            if index < 0:
                result.append((1, lowest.throughput))
            else:
                mode = table[index]
                result.append((mode.packets_per_slot(reference), mode.throughput))
        return result

    def build_allocation(
        self,
        terminal: Terminal,
        amplitude: float,
        n_slots: int,
        capacity: Optional[Tuple[int, Optional[float]]] = None,
    ) -> Allocation:
        """Create an :class:`Allocation` of ``n_slots`` for ``terminal``.

        ``capacity`` optionally supplies a precomputed ``(packets_per_slot,
        throughput)`` pair (from :meth:`slot_capacities`) so batched callers
        skip the per-grant modem lookup.
        """
        per_slot, throughput = (
            capacity if capacity is not None else self.slot_capacity(amplitude)
        )
        return Allocation(
            terminal_id=terminal.terminal_id,
            n_slots=n_slots,
            packet_capacity=per_slot * n_slots,
            throughput=throughput,
        )

    def slots_needed_for_data(
        self, terminal: Terminal, amplitude: float, slots_available: int
    ) -> int:
        """Slots a data grant should span to drain the terminal's buffer."""
        if slots_available <= 0:
            return 0
        per_slot, _ = self.slot_capacity(amplitude)
        needed = math.ceil(terminal.buffer_occupancy / max(1, per_slot))
        return max(1, min(slots_available, needed))

    def allocate_reserved_voice(
        self,
        terminals: Sequence[Terminal],
        snapshot: ChannelSnapshot,
        slots_available: int,
        allocations: List[Allocation],
    ) -> int:
        """Serve reservation-holding voice terminals first (one slot each).

        This is the behaviour of every baseline protocol: a reserved voice
        user owns a slot per voice-packet period, independent of its channel
        state.  Returns the number of slots consumed.
        """
        reserved = self.reservations.reserved_terminals(terminals)
        if not reserved:
            return 0
        served = reserved[: max(0, slots_available)]
        amplitude = snapshot.amplitude
        amplitudes = [amplitude[t.terminal_id] for t in served]
        capacities = self.slot_capacities(
            amplitudes, snr_db=self.snapshot_snr_for(snapshot, served)
        )
        for terminal, amplitude, capacity in zip(served, amplitudes, capacities):
            allocations.append(
                self.build_allocation(terminal, amplitude, 1, capacity=capacity)
            )
        return len(served)

    def queue_unserved(self, requests: Sequence[Request]) -> int:
        """Store unserved requests in the base-station queue, if enabled."""
        if self.request_queue is None:
            return 0
        return self.request_queue.extend(
            r for r in requests if not r.is_reservation
        )

    def prune_queue(self, frame_index: int, terminals: Sequence[Terminal]) -> None:
        """Drop queued requests that are no longer actionable.

        Expired voice requests are discarded (their packets have been dropped
        at the device); requests of terminals whose buffer has emptied (e.g.
        the talkspurt ended or the burst was already served) are removed.
        """
        if self.request_queue is None:
            return
        self.request_queue.drop_expired(frame_index)
        by_id = terminal_lookup(terminals)
        for request in list(self.request_queue):
            terminal = by_id.get(request.terminal_id)
            if terminal is None or not terminal.has_pending_packets:
                self.request_queue.remove_terminal(request.terminal_id)

    def queued_count(self) -> int:
        """Number of requests currently queued at the base station."""
        return len(self.request_queue) if self.request_queue is not None else 0

    # ------------------------------------------------- array-native kernels
    @traced_batch
    def run_frame_batch(
        self,
        frame_index: int,
        population,
        snapshot: ChannelSnapshot,
    ) -> FrameOutcome:
        """Columnar :meth:`run_frame`: one frame directly on population arrays.

        The six shipped protocols override this with kernels that read the
        :class:`~repro.traffic.population.TerminalPopulation` arrays and
        emit :class:`~repro.mac.requests.GrantColumns`, never materialising
        per-terminal views in the hot loop.  In parity RNG mode the kernels
        are bit-identical to :meth:`run_frame` (same decisions, same draw
        order); in fast mode they additionally batch a frame's random draws
        into single calls.  This default keeps custom protocol subclasses
        working on the columnar engine backend by delegating to their
        :meth:`run_frame` over the population's views.
        """
        return self.run_frame(frame_index, population.views, snapshot)

    def contention_candidate_ids(
        self, population
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Id-array twin of :meth:`contention_candidates`.

        Returns ``(ids, probabilities)``: the candidate terminal ids in
        ascending order (the object loop's order) aligned with each
        candidate's permission probability — ready for
        :func:`~repro.mac.contention.run_contention_ids`.
        """
        mask = population.occupancy > 0
        mask &= population.is_data_mask | population.in_talkspurt
        holders = self.reservations.holder_array()
        if holders.shape[0]:
            holders = holders[holders < mask.shape[0]]
            mask[holders[population.is_voice[holders]]] = False
        if self.request_queue is not None and len(self.request_queue):
            queued = self.request_queue.terminal_id_array()
            queued = queued[queued < mask.shape[0]]
            mask[queued] = False
        ids = mask.nonzero()[0]
        # Per-terminal permission probabilities are static (the service
        # class never changes), so the full-population template is built
        # once and gathered per frame.
        template = self._probability_template
        if template is None or template.shape[0] != len(population):
            template = np.where(
                population.is_voice,
                self.permission.voice_probability,
                self.permission.data_probability,
            )
            self._probability_template = template
        return ids, template[ids]

    def request_columns_for(
        self,
        population,
        ids: np.ndarray,
        frame_index: int,
        is_reservation: bool = False,
        csi_amplitudes: Optional[np.ndarray] = None,
        csi_validity: int = 2,
    ) -> RequestColumns:
        """Columnar :meth:`make_request` over many terminals at once.

        Row-for-row equivalent to calling :meth:`make_request` per id in
        order: the voice deadline is the current head-of-line packet's, the
        desired packet count is the buffer occupancy (at least one).
        """
        ids = np.asarray(ids, dtype=np.int64)
        n = ids.shape[0]
        is_voice = population.is_voice[ids]
        head = population.head_created[ids]
        deadline = np.full(n, -1, dtype=np.int64)
        has_deadline = is_voice & (head >= 0)
        if has_deadline.any():
            remaining = np.maximum(
                0, head + self.params.voice_deadline_frames - frame_index
            )
            deadline[has_deadline] = frame_index + remaining[has_deadline]
        return RequestColumns(
            terminal_ids=ids,
            is_voice=is_voice,
            arrival_frames=np.full(n, frame_index, dtype=np.int64),
            desired_packets=np.maximum(1, population.occupancy[ids]),
            deadline_frames=deadline,
            is_reservation=np.full(n, bool(is_reservation)),
            csi_amplitudes=csi_amplitudes,
            csi_frames=(
                np.full(n, frame_index, dtype=np.int64)
                if csi_amplitudes is not None
                else None
            ),
            csi_validity=csi_validity,
        )

    def _capacity_tables(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-mode (packets-per-slot, throughput) lookup, outage at index 0.

        Row ``mode_index + 1`` holds the mode's capacity pair; row 0 holds
        the outage fallback — one packet at the most robust mode — so a
        vectorised ``mode_index_for_snr`` result indexes the tables with a
        single ``+1`` shift.
        """
        if self._capacity_lut is None:
            table = self.modem.mode_table
            reference = table.reference_throughput
            packs = [1] + [
                table[i].packets_per_slot(reference) for i in range(len(table))
            ]
            thrs = [table[0].throughput] + [
                table[i].throughput for i in range(len(table))
            ]
            self._capacity_lut = (
                np.asarray(packs, dtype=np.int64),
                np.asarray(thrs, dtype=float),
            )
        return self._capacity_lut

    @kernel
    def grant_capacity_columns(
        self, ids: np.ndarray, snapshot: ChannelSnapshot
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Per-terminal slot capacities straight from the channel snapshot.

        Returns ``(packets_per_slot, throughputs)`` aligned with ``ids``;
        ``throughputs`` is ``None`` on the fixed-rate PHY (every grant
        carries one packet per slot at the nominal mode).  Element-for-
        element identical to :meth:`slot_capacities` on the same channel
        states, including the outage fallback.
        """
        if not self.modem.is_adaptive:
            return np.ones(len(ids), dtype=np.int64), None
        if self._snapshot_snr_usable:
            snr_db = snapshot.snr_db[ids]
        else:
            snr_db = self.modem.snr_db_from_amplitude(snapshot.amplitude[ids])
        indices = self.modem.mode_table.mode_index_for_snr(snr_db) + 1
        packs, thrs = self._capacity_tables()
        return packs[indices], thrs[indices]

    def allocate_reserved_voice_batch(
        self,
        population,
        snapshot: ChannelSnapshot,
        slots_available: int,
        grants: GrantColumns,
    ) -> np.ndarray:
        """Array-native :meth:`allocate_reserved_voice`; returns served ids."""
        reserved = self.reservations.reserved_ids(population)
        if not reserved.shape[0]:
            return reserved
        served = reserved[: max(0, slots_available)]
        per_slot, throughputs = self.grant_capacity_columns(served, snapshot)
        append = grants.append
        if throughputs is None:
            for tid in served.tolist():
                append(tid, 1, 1, None)
        else:
            for tid, packets, throughput in zip(
                served.tolist(), per_slot.tolist(), throughputs.tolist()
            ):
                append(tid, 1, packets, throughput)
        return served

    def prune_queue_batch(self, frame_index: int, population) -> None:
        """Array-native :meth:`prune_queue` (population occupancy lookups)."""
        if self.request_queue is None:
            return
        self.request_queue.drop_expired(frame_index)
        occupancy = population.occupancy
        n = len(population)
        for request in list(self.request_queue):
            tid = request.terminal_id
            if tid >= n or occupancy[tid] == 0:
                self.request_queue.remove_terminal(tid)

    def queue_unserved_rows(
        self, columns: RequestColumns, rows: Sequence[int]
    ) -> int:
        """Queue the given (non-reservation) rows of a request-column pool."""
        if self.request_queue is None or not len(rows):
            return 0
        keep = [row for row in rows if not columns.is_reservation[row]]
        if not keep:
            return 0
        return self.request_queue.extend(columns.to_requests(keep))

    def make_request_for_id(
        self,
        population,
        terminal_id: int,
        frame_index: int,
        is_reservation: bool = False,
    ) -> Request:
        """Scalar :meth:`make_request` straight from population arrays."""
        terminal_id = int(terminal_id)
        deadline = None
        if population.is_voice[terminal_id]:
            head = int(population.head_created[terminal_id])
            if head >= 0:
                deadline = frame_index + max(
                    0, head + self.params.voice_deadline_frames - frame_index
                )
        return Request(
            terminal_id=terminal_id,
            kind=(
                TrafficKind.VOICE
                if population.is_voice[terminal_id]
                else TrafficKind.DATA
            ),
            arrival_frame=frame_index,
            desired_packets=max(1, int(population.occupancy[terminal_id])),
            deadline_frame=deadline,
            is_reservation=is_reservation,
        )

    def _serve_voice_rows_batch(
        self,
        pending: RequestColumns,
        rows: np.ndarray,
        population,
        snapshot: ChannelSnapshot,
        frame_index: int,
        slots_left: int,
        grants: GrantColumns,
        unserved_rows: List[int],
    ) -> int:
        """FCFS voice service over column rows (one slot each, reservation).

        Row-for-row identical to the view paths' voice loops: rows whose
        terminal has drained its buffer are skipped outright, the first
        ``slots_left`` remaining rows are granted one slot each (acquiring a
        reservation), and the rest land in ``unserved_rows``.
        """
        if not rows.shape[0]:
            return slots_left
        tids = pending.terminal_ids[rows]
        live = population.occupancy[tids] > 0
        if not live.all():
            rows = rows[live]
            tids = tids[live]
            if not rows.shape[0]:
                return slots_left
        n_served = max(0, min(slots_left, tids.shape[0]))
        served = tids[:n_served]
        per_slot, throughputs = self.grant_capacity_columns(served, snapshot)
        append = grants.append
        if throughputs is None:
            for tid in served.tolist():
                append(tid, 1, 1, None)
        else:
            for tid, packets, throughput in zip(
                served.tolist(), per_slot.tolist(), throughputs.tolist()
            ):
                append(tid, 1, packets, throughput)
        self.reservations.grant_many(served, frame_index)
        unserved_rows.extend(rows[n_served:].tolist())
        return slots_left - n_served

    def _serve_data_rows_batch(
        self,
        pending: RequestColumns,
        rows: np.ndarray,
        population,
        snapshot: ChannelSnapshot,
        slots_left: int,
        grants: GrantColumns,
        unserved_rows: List[int],
    ) -> int:
        """FCFS data service over column rows (buffer-draining grants).

        Mirrors the view paths' data loops: each live row gets enough slots
        to drain its buffer at its channel's packets-per-slot, bounded by
        what remains; once the frame is full the remaining rows become
        unserved.
        """
        if not rows.shape[0]:
            return slots_left
        tids = pending.terminal_ids[rows]
        occupancy = population.occupancy[tids]
        live = occupancy > 0
        if not live.all():
            rows = rows[live]
            tids = tids[live]
            occupancy = occupancy[live]
            if not rows.shape[0]:
                return slots_left
        per_slot, throughputs = self.grant_capacity_columns(tids, snapshot)
        tid_list = tids.tolist()
        occ_list = occupancy.tolist()
        per_list = per_slot.tolist()
        thr_list = throughputs.tolist() if throughputs is not None else None
        row_list = rows.tolist()
        append = grants.append
        for position, tid in enumerate(tid_list):
            if slots_left < 1:
                unserved_rows.append(row_list[position])
                continue
            packets = per_list[position]
            needed = math.ceil(occ_list[position] / max(1, packets))
            n_slots = max(1, min(slots_left, needed))
            append(
                tid,
                n_slots,
                packets * n_slots,
                thr_list[position] if thr_list is not None else None,
            )
            slots_left -= n_slots
        return slots_left

    # ------------------------------------------------- macro-step lookahead
    def macro_minislots(self) -> Optional[int]:
        """Request minislots the macro engine may resolve inline per frame.

        ``None`` (default) means contended frames cannot be fast-pathed:
        the macro engine only handles frames with an *empty* contention
        candidate set inline and falls back to the per-frame kernel
        otherwise.  The slotted-ALOHA FCFS protocols return their request
        subframe size — their whole request phase is permission draws the
        engine can serve from a pre-drawn pool.
        """
        return None

    def macro_quiet_idle_slots(self, n_served: int) -> int:
        """Idle request minislots reported by a zero-candidate frame.

        ``n_served`` is the number of reservation grants the frame made
        (protocols whose contention opportunities depend on frame occupancy
        — DRMA — override this).
        """
        return self.frame_structure.request_minislots

    def macro_data_slot_cap(self) -> Optional[int]:
        """Upper bound on one data grant's slots (``None`` = frame-limited)."""
        return None

    # ------------------------------------------------------------ metadata
    def describe(self) -> dict:
        """Summary row used in result tables and documentation."""
        return {
            "name": self.name,
            "display_name": self.display_name,
            "adaptive_phy": self.uses_adaptive_phy,
            "csi_scheduling": self.uses_csi_scheduling,
            "request_queue": self.use_request_queue,
            "frame": self.frame_structure.describe(),
        }
