"""Abstract base class and shared machinery for uplink MAC protocols.

Every protocol in the study — the five baselines and CHARISMA — is a
:class:`MACProtocol`.  The simulation engine drives it with one call per
2.5 ms TDMA frame::

    outcome = protocol.run_frame(frame_index, terminals, channel_snapshot)

and then executes the returned :class:`~repro.mac.requests.FrameOutcome`
(transmitting packets through the PHY error model and updating terminal
statistics).  The base class provides the machinery all protocols share:

* permission-probability gated contention candidates,
* the voice reservation table ("a slot every 20 ms until the talkspurt
  ends"),
* the optional base-station request queue,
* translation of a channel state into an information-slot packet capacity
  via the protocol's modem (adaptive or fixed-rate).
"""

from __future__ import annotations

import abc
import math
from typing import ClassVar, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.channel.manager import ChannelSnapshot
from repro.config import SimulationParameters
from repro.mac.frames import FrameStructure
from repro.mac.request_queue import RequestQueue
from repro.mac.requests import Allocation, FrameOutcome, Request
from repro.mac.reservation import ReservationTable
from repro.phy.abicm import AdaptiveModem
from repro.phy.fixed import FixedRateModem
from repro.traffic.packets import TrafficKind
from repro.traffic.permission import PermissionPolicy
from repro.traffic.terminal import Terminal

__all__ = ["MACProtocol", "Modem", "terminal_lookup"]

Modem = Union[AdaptiveModem, FixedRateModem]


class _DenseTerminalLookup:
    """Mapping-like id lookup over a dense (id == index) terminal sequence.

    Replaces the per-frame ``{t.terminal_id: t for t in terminals}`` dict
    build — an O(n) Python loop — with direct indexing when the sequence
    guarantees dense ids (the engine validates the layout at construction).
    """

    __slots__ = ("_terminals",)

    def __init__(self, terminals: Sequence[Terminal]) -> None:
        self._terminals = terminals

    def get(self, terminal_id: int, default=None):
        if 0 <= terminal_id < len(self._terminals):
            return self._terminals[terminal_id]
        return default

    def __getitem__(self, terminal_id: int):
        terminal = self.get(terminal_id)
        if terminal is None:
            raise KeyError(terminal_id)
        return terminal

    def __contains__(self, terminal_id: int) -> bool:
        return 0 <= terminal_id < len(self._terminals)


def snapshot_snr_compatible(modem, params: SimulationParameters) -> bool:
    """Whether a snapshot's ``snr_db`` can replace the modem's conversion.

    :class:`~repro.channel.manager.ChannelSnapshot` and the modems apply the
    same ``mean_snr_db + 20 log10(amplitude)`` convention, so precomputed
    snapshot SNRs are interchangeable with per-grant conversion exactly when
    the mean-SNR operating points agree (always true for registry-built
    protocols; custom test modems may differ).  Single source of truth for
    the engine's and the MAC substrate's reuse decisions.
    """
    return getattr(modem, "mean_snr_db", None) == params.mean_snr_db


def terminal_lookup(terminals: Sequence[Terminal]):
    """Return an id -> terminal mapping for a population sequence.

    Sequences that guarantee dense ids (``dense_ids`` attribute, e.g. the
    columnar backend's :class:`~repro.traffic.population.TerminalViews`)
    get an O(1) index-based lookup; anything else falls back to the classic
    dict build, so arbitrary id layouts used in unit tests keep working.
    """
    if getattr(terminals, "dense_ids", False):
        return _DenseTerminalLookup(terminals)
    return {t.terminal_id: t for t in terminals}


class MACProtocol(abc.ABC):
    """Common behaviour of all uplink access-control protocols.

    Parameters
    ----------
    params:
        Simulation parameters (Table 1).
    modem:
        The physical layer the protocol runs on.  CHARISMA and D-TDMA/VR use
        an :class:`~repro.phy.abicm.AdaptiveModem`; the other baselines a
        :class:`~repro.phy.fixed.FixedRateModem`.
    rng:
        Random generator dedicated to MAC decisions (contention draws,
        auction ids, ...), independent of the channel and error streams.
    use_request_queue:
        Whether the base station keeps the optional request queue of
        Section 4.5.  Ignored for protocols that do not support one (RMAV).
    """

    #: Short machine-readable identifier (registry key).
    name: ClassVar[str] = "abstract"
    #: Human-readable protocol name used in result tables.
    display_name: ClassVar[str] = "abstract"
    #: Whether the protocol runs on the variable-throughput adaptive PHY.
    uses_adaptive_phy: ClassVar[bool] = False
    #: Whether the protocol feeds CSI into its scheduling decisions.
    uses_csi_scheduling: ClassVar[bool] = False
    #: Whether the optional base-station request queue is meaningful.
    supports_request_queue: ClassVar[bool] = True

    def __init__(
        self,
        params: SimulationParameters,
        modem: Modem,
        rng: np.random.Generator,
        use_request_queue: bool = False,
    ) -> None:
        self.params = params
        self.modem = modem
        self.rng = rng
        self.permission = PermissionPolicy(
            params.voice_permission_probability,
            params.data_permission_probability,
            rng,
        )
        self.reservations = ReservationTable()
        self.use_request_queue = bool(use_request_queue) and self.supports_request_queue
        self.request_queue: Optional[RequestQueue] = (
            RequestQueue(params.request_queue_capacity) if self.use_request_queue else None
        )
        self.frame_structure = self._build_frame_structure()
        self._snapshot_snr_usable = snapshot_snr_compatible(modem, params)

    # ----------------------------------------------------------- interface
    @abc.abstractmethod
    def _build_frame_structure(self) -> FrameStructure:
        """Return the protocol's uplink frame layout."""

    @abc.abstractmethod
    def run_frame(
        self,
        frame_index: int,
        terminals: Sequence[Terminal],
        snapshot: ChannelSnapshot,
    ) -> FrameOutcome:
        """Run the request and allocation phases of one frame."""

    # ------------------------------------------------------------- helpers
    def contention_candidates(self, terminals: Sequence[Terminal]) -> List[Terminal]:
        """Terminals that would transmit a request this frame.

        * a voice terminal contends while it is in a talkspurt, has packets
          buffered and holds no reservation;
        * a data terminal contends while it has packets buffered;
        * terminals whose earlier request is still queued at the base station
          do not contend again (they are waiting for the announcement).
        """
        population = getattr(terminals, "population", None)
        if population is not None:
            return self._contention_candidates_columnar(terminals, population)
        candidates: List[Terminal] = []
        for terminal in terminals:
            if not terminal.has_pending_packets:
                continue
            if self.request_queue is not None and self.request_queue.contains_terminal(
                terminal.terminal_id
            ):
                continue
            if terminal.is_voice:
                in_talkspurt = getattr(terminal, "in_talkspurt", False)
                if in_talkspurt and not self.reservations.has(terminal.terminal_id):
                    candidates.append(terminal)
            else:
                candidates.append(terminal)
        return candidates

    def _contention_candidates_columnar(
        self, terminals: Sequence[Terminal], population
    ) -> List[Terminal]:
        """Array fast path of :meth:`contention_candidates`.

        Computes the candidate mask over the population arrays and returns
        the matching views in ascending id order — the same order (and the
        same selection rule) as the per-object loop.
        """
        mask = population.occupancy > 0
        voice_mask = population.is_voice
        mask &= population.is_data_mask | population.in_talkspurt
        holders = self.reservations.holder_array()
        if holders.shape[0]:
            holders = holders[holders < mask.shape[0]]
            mask[holders[voice_mask[holders]]] = False
        if self.request_queue is not None and len(self.request_queue):
            for request in self.request_queue:
                if request.terminal_id < len(mask):
                    mask[request.terminal_id] = False
        return [terminals[i] for i in mask.nonzero()[0]]

    def release_finished_reservations(self, terminals: Sequence[Terminal]) -> int:
        """Release voice reservations whose talkspurt has ended."""
        return self.reservations.release_ended_talkspurts(terminals)

    def make_request(
        self,
        terminal: Terminal,
        frame_index: int,
        csi=None,
        is_reservation: bool = False,
    ) -> Request:
        """Build the base-station record of a received (or auto) request."""
        deadline = None
        if terminal.is_voice:
            remaining = terminal.head_deadline_frames(frame_index)
            if remaining is not None:
                deadline = frame_index + remaining
        return Request(
            terminal_id=terminal.terminal_id,
            kind=terminal.kind,
            arrival_frame=frame_index,
            desired_packets=max(1, terminal.buffer_occupancy),
            csi=csi,
            deadline_frame=deadline,
            is_reservation=is_reservation,
        )

    def slot_capacity(self, amplitude: float) -> Tuple[int, Optional[float]]:
        """Packets one information slot carries at the given channel state.

        Returns ``(packets, throughput)`` where ``throughput`` is the
        announced transmission mode (``None`` on the fixed-rate PHY).  On the
        adaptive PHY an outage channel still yields a capacity of one packet
        at the most robust mode — transmitting is allowed, it is just likely
        to fail — because the non-CSI-aware protocols (D-TDMA/VR) do exactly
        that.  CSI-aware allocation (CHARISMA) avoids granting such slots in
        the first place.
        """
        if not self.modem.is_adaptive:
            return 1, None
        mode = self.modem.select_mode(float(amplitude))
        if mode is None:
            lowest = self.modem.mode_table[0]
            return 1, lowest.throughput
        return mode.packets_per_slot(self.modem.mode_table.reference_throughput), mode.throughput

    def snapshot_snr_for(
        self, snapshot: ChannelSnapshot, terminals: Sequence[Terminal]
    ) -> Optional[List[float]]:
        """Per-terminal snapshot SNRs for a batched modem call, or ``None``.

        Returns ``None`` when the modem's SNR convention differs from the
        snapshot's (see :func:`snapshot_snr_compatible`), in which case the
        batched helpers convert from amplitudes instead.
        """
        if not self._snapshot_snr_usable:
            return None
        snr_db = snapshot.snr_db
        return [snr_db[t.terminal_id] for t in terminals]

    def slot_capacities(
        self, amplitudes, snr_db=None
    ) -> List[Tuple[int, Optional[float]]]:
        """Vectorised :meth:`slot_capacity` over many channel amplitudes.

        One batched mode-table lookup instead of one scalar modem call per
        grant; element-for-element identical to :meth:`slot_capacity`
        (including the outage fallback to one packet at the most robust
        mode).  ``snr_db`` optionally supplies precomputed SNRs (snapshot
        convention) to skip the amplitude conversion.
        """
        if not self.modem.is_adaptive:
            return [(1, None)] * len(amplitudes)
        table = self.modem.mode_table
        if snr_db is None:
            snr_db = self.modem.snr_db_from_amplitude(
                np.asarray(amplitudes, dtype=float)
            )
        else:
            snr_db = np.asarray(snr_db, dtype=float)
        indices = table.mode_index_for_snr(snr_db)
        reference = table.reference_throughput
        lowest = table[0]
        result: List[Tuple[int, Optional[float]]] = []
        for index in indices:
            if index < 0:
                result.append((1, lowest.throughput))
            else:
                mode = table[index]
                result.append((mode.packets_per_slot(reference), mode.throughput))
        return result

    def build_allocation(
        self,
        terminal: Terminal,
        amplitude: float,
        n_slots: int,
        capacity: Optional[Tuple[int, Optional[float]]] = None,
    ) -> Allocation:
        """Create an :class:`Allocation` of ``n_slots`` for ``terminal``.

        ``capacity`` optionally supplies a precomputed ``(packets_per_slot,
        throughput)`` pair (from :meth:`slot_capacities`) so batched callers
        skip the per-grant modem lookup.
        """
        per_slot, throughput = (
            capacity if capacity is not None else self.slot_capacity(amplitude)
        )
        return Allocation(
            terminal_id=terminal.terminal_id,
            n_slots=n_slots,
            packet_capacity=per_slot * n_slots,
            throughput=throughput,
        )

    def slots_needed_for_data(
        self, terminal: Terminal, amplitude: float, slots_available: int
    ) -> int:
        """Slots a data grant should span to drain the terminal's buffer."""
        if slots_available <= 0:
            return 0
        per_slot, _ = self.slot_capacity(amplitude)
        needed = math.ceil(terminal.buffer_occupancy / max(1, per_slot))
        return max(1, min(slots_available, needed))

    def allocate_reserved_voice(
        self,
        terminals: Sequence[Terminal],
        snapshot: ChannelSnapshot,
        slots_available: int,
        allocations: List[Allocation],
    ) -> int:
        """Serve reservation-holding voice terminals first (one slot each).

        This is the behaviour of every baseline protocol: a reserved voice
        user owns a slot per voice-packet period, independent of its channel
        state.  Returns the number of slots consumed.
        """
        reserved = self.reservations.reserved_terminals(terminals)
        if not reserved:
            return 0
        served = reserved[: max(0, slots_available)]
        amplitude = snapshot.amplitude
        amplitudes = [amplitude[t.terminal_id] for t in served]
        capacities = self.slot_capacities(
            amplitudes, snr_db=self.snapshot_snr_for(snapshot, served)
        )
        for terminal, amplitude, capacity in zip(served, amplitudes, capacities):
            allocations.append(
                self.build_allocation(terminal, amplitude, 1, capacity=capacity)
            )
        return len(served)

    def queue_unserved(self, requests: Sequence[Request]) -> int:
        """Store unserved requests in the base-station queue, if enabled."""
        if self.request_queue is None:
            return 0
        return self.request_queue.extend(
            r for r in requests if not r.is_reservation
        )

    def prune_queue(self, frame_index: int, terminals: Sequence[Terminal]) -> None:
        """Drop queued requests that are no longer actionable.

        Expired voice requests are discarded (their packets have been dropped
        at the device); requests of terminals whose buffer has emptied (e.g.
        the talkspurt ended or the burst was already served) are removed.
        """
        if self.request_queue is None:
            return
        self.request_queue.drop_expired(frame_index)
        by_id = terminal_lookup(terminals)
        for request in list(self.request_queue):
            terminal = by_id.get(request.terminal_id)
            if terminal is None or not terminal.has_pending_packets:
                self.request_queue.remove_terminal(request.terminal_id)

    def queued_count(self) -> int:
        """Number of requests currently queued at the base station."""
        return len(self.request_queue) if self.request_queue is not None else 0

    # ------------------------------------------------------------ metadata
    def describe(self) -> dict:
        """Summary row used in result tables and documentation."""
        return {
            "name": self.name,
            "display_name": self.display_name,
            "adaptive_phy": self.uses_adaptive_phy,
            "csi_scheduling": self.uses_csi_scheduling,
            "request_queue": self.use_request_queue,
            "frame": self.frame_structure.describe(),
        }
