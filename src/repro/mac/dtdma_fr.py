"""D-TDMA/FR: dynamic TDMA with a fixed-rate physical layer (Section 3.4).

The classic improved-PRMA design: the frame is statically split into ``N_r``
request minislots and ``N_i`` information slots.  Requests are gathered by
slotted contention and served first-come-first-served, voice before data;
whenever a request succeeds an information slot (if any remains) is assigned
immediately.  A voice user that obtains a slot keeps one slot per 20 ms
voice-packet period until its talkspurt ends; data users must contend again
for every burst instalment.  The physical layer delivers a constant one
packet per slot irrespective of the channel state.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.channel.manager import ChannelSnapshot
from repro.mac.base import MACProtocol, terminal_lookup, traced_batch
from repro.mac.contention import run_contention, run_contention_ids
from repro.mac.frames import FrameStructure
from repro.mac.requests import (
    Acknowledgement,
    FrameOutcome,
    Request,
    RequestColumns,
)
from repro.traffic.terminal import Terminal

__all__ = ["DTDMAFRProtocol"]


class DTDMAFRProtocol(MACProtocol):
    """Dynamic TDMA, fixed rate: static frame, FCFS assignment."""

    name = "dtdma_fr"
    display_name = "D-TDMA/FR"
    uses_adaptive_phy = False
    uses_csi_scheduling = False
    supports_request_queue = True
    #: The whole request phase is slotted-ALOHA permission draws and the
    #: allocation phase draws nothing, so the macro engine executes frames
    #: inline whenever the base-station queue is empty.
    supports_macro_lookahead = True

    # ------------------------------------------------------------ interface
    def _build_frame_structure(self) -> FrameStructure:
        return FrameStructure(
            name=self.display_name,
            request_minislots=self.params.n_request_slots,
            info_slots=self.params.n_info_slots,
            dynamic=False,
            minislots_per_info_slot=self.params.drma_minislots_per_info_slot,
        )

    def run_frame(
        self,
        frame_index: int,
        terminals: Sequence[Terminal],
        snapshot: ChannelSnapshot,
    ) -> FrameOutcome:
        self.release_finished_reservations(terminals)
        self.prune_queue(frame_index, terminals)
        by_id = terminal_lookup(terminals)
        outcome = FrameOutcome(frame_index)
        slots_left = self.frame_structure.info_slots

        # Phase 0: reservation holders transmit without contention.
        used = self.allocate_reserved_voice(
            terminals, snapshot, slots_left, outcome.allocations
        )
        slots_left -= used

        # Phase 1: request contention over the static request subframe.
        candidates = self.contention_candidates(terminals)
        contention = run_contention(
            candidates, self.frame_structure.request_minislots, self.permission, self.rng
        )
        outcome.contention_attempts = contention.attempts
        outcome.contention_collisions = contention.collisions
        outcome.idle_request_slots = contention.idle_slots
        for slot, winner in enumerate(contention.winners):
            outcome.acknowledgements.append(
                Acknowledgement(winner.terminal_id, slot, frame_index)
            )
        new_requests = [self.make_request(t, frame_index) for t in contention.winners]

        # Phase 2: FCFS service — queued requests first, then this frame's,
        # voice before data within each group.
        backlog = self.request_queue.pop_all() if self.request_queue is not None else []
        pending = backlog + new_requests
        voice_requests = [r for r in pending if r.kind.is_voice]
        data_requests = [r for r in pending if r.kind.is_data]

        unserved: List[Request] = []
        slots_left = self._serve_voice(
            voice_requests, by_id, snapshot, frame_index, slots_left,
            outcome, unserved,
        )
        slots_left = self._serve_data(
            data_requests, by_id, snapshot, slots_left, outcome, unserved
        )

        self.queue_unserved(unserved)
        outcome.queued_requests = self.queued_count()
        return outcome

    @traced_batch
    def run_frame_batch(
        self,
        frame_index: int,
        population,
        snapshot: ChannelSnapshot,
    ) -> FrameOutcome:
        """Array-native frame: id-array contention, columnar FCFS service."""
        self.reservations.release_ended_population(population)
        self.prune_queue_batch(frame_index, population)
        outcome = FrameOutcome(frame_index)
        grants = outcome.use_grant_columns()
        slots_left = self.frame_structure.info_slots

        # Phase 0: reservation holders transmit without contention.
        served = self.allocate_reserved_voice_batch(
            population, snapshot, slots_left, grants
        )
        slots_left -= served.shape[0]

        # Phase 1: request contention over the static request subframe.
        ids, probabilities = self.contention_candidate_ids(population)
        contention = run_contention_ids(
            ids,
            probabilities,
            self.frame_structure.request_minislots,
            self.contention_rng,
            fast=self.rng_fast,
        )
        outcome.contention_attempts = contention.attempts
        outcome.contention_collisions = contention.collisions
        outcome.idle_request_slots = contention.idle_slots
        acknowledgements = outcome.acknowledgements
        for slot, winner in enumerate(contention.winner_ids):
            acknowledgements.append(Acknowledgement(winner, slot, frame_index))
        winner_ids = np.asarray(contention.winner_ids, dtype=np.int64)

        # Phase 2: FCFS service — queued requests first, then this frame's,
        # voice before data within each group.
        backlog = (
            self.request_queue.pop_all() if self.request_queue is not None else []
        )
        if not backlog and not winner_ids.shape[0]:
            outcome.queued_requests = self.queued_count()
            return outcome
        new_columns = self.request_columns_for(population, winner_ids, frame_index)
        if backlog:
            pending = RequestColumns.concatenate(
                [RequestColumns.from_requests(backlog), new_columns]
            )
        else:
            pending = new_columns
        voice_rows = np.nonzero(pending.is_voice)[0]
        data_rows = np.nonzero(~pending.is_voice)[0]

        unserved_rows: List[int] = []
        slots_left = self._serve_voice_rows_batch(
            pending, voice_rows, population, snapshot, frame_index,
            slots_left, grants, unserved_rows,
        )
        slots_left = self._serve_data_rows_batch(
            pending, data_rows, population, snapshot, slots_left, grants,
            unserved_rows,
        )

        self.queue_unserved_rows(pending, unserved_rows)
        outcome.queued_requests = self.queued_count()
        return outcome

    def macro_minislots(self) -> int:
        """The static request subframe, resolvable from a pre-drawn pool."""
        return self.frame_structure.request_minislots

    # -------------------------------------------------------------- service
    def _serve_voice(
        self,
        requests: List[Request],
        by_id,
        snapshot: ChannelSnapshot,
        frame_index: int,
        slots_left: int,
        outcome: FrameOutcome,
        unserved: List[Request],
    ) -> int:
        actionable = self._actionable(requests, by_id)
        if not actionable:
            return slots_left
        amplitudes = [snapshot.amplitude[t.terminal_id] for _, t in actionable]
        capacities = self.slot_capacities(
            amplitudes,
            snr_db=self.snapshot_snr_for(snapshot, [t for _, t in actionable]),
        )
        for (request, terminal), amplitude, capacity in zip(
            actionable, amplitudes, capacities
        ):
            if slots_left < 1:
                unserved.append(request)
                continue
            outcome.allocations.append(
                self.build_allocation(terminal, amplitude, 1, capacity=capacity)
            )
            slots_left -= 1
            self.reservations.grant(terminal.terminal_id, frame_index)
        return slots_left

    def _serve_data(
        self,
        requests: List[Request],
        by_id,
        snapshot: ChannelSnapshot,
        slots_left: int,
        outcome: FrameOutcome,
        unserved: List[Request],
    ) -> int:
        actionable = self._actionable(requests, by_id)
        if not actionable:
            return slots_left
        amplitudes = [snapshot.amplitude[t.terminal_id] for _, t in actionable]
        capacities = self.slot_capacities(
            amplitudes,
            snr_db=self.snapshot_snr_for(snapshot, [t for _, t in actionable]),
        )
        for (request, terminal), amplitude, capacity in zip(
            actionable, amplitudes, capacities
        ):
            if slots_left < 1:
                unserved.append(request)
                continue
            per_slot = max(1, capacity[0])
            needed = math.ceil(terminal.buffer_occupancy / per_slot)
            n_slots = max(1, min(slots_left, needed))
            outcome.allocations.append(
                self.build_allocation(terminal, amplitude, n_slots, capacity=capacity)
            )
            slots_left -= n_slots
        return slots_left

    @staticmethod
    def _actionable(requests: List[Request], by_id) -> List[tuple]:
        """The (request, terminal) pairs that can still be served.

        Buffer states only change when the engine executes the frame's
        grants, so filtering before the batched capacity lookup preserves
        the per-request loop's behaviour exactly.
        """
        actionable = []
        for request in requests:
            terminal = by_id.get(request.terminal_id)
            if terminal is not None and terminal.has_pending_packets:
                actionable.append((request, terminal))
        return actionable
