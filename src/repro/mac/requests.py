"""Request, acknowledgement and announcement records exchanged with the base station.

The uplink request packet of the paper (Fig. 9a) carries the mobile device
ID, the request type (voice or data), the packet deadline, the number of
information packets the device wishes to transmit, and pilot symbols from
which the base station estimates the sender's CSI.  The downlink
acknowledgement carries the successful request's ID, and the announcement
carries the slot allocation schedule plus the transmission mode to use.

These records are plain data: all decision making lives in the protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.phy.csi import CSIEstimate
from repro.traffic.packets import TrafficKind

__all__ = [
    "Request",
    "Acknowledgement",
    "Allocation",
    "FrameOutcome",
    "GrantColumns",
    "RequestColumns",
]


@dataclass
class Request:
    """A successfully received transmission request held at the base station.

    Attributes
    ----------
    terminal_id:
        The requesting mobile device.
    kind:
        Voice or data request.
    arrival_frame:
        Frame in which the request was successfully received (or auto-
        generated, for voice reservations).
    desired_packets:
        Number of information packets the device wishes to transmit.
    csi:
        The base station's CSI estimate for the device, if any (adaptive
        protocols only).
    deadline_frame:
        Deadline of the head-of-line voice packet; ``None`` for data.
    is_reservation:
        ``True`` for the periodic requests the base station auto-generates on
        behalf of voice users holding a reservation.
    """

    terminal_id: int
    kind: TrafficKind
    arrival_frame: int
    desired_packets: int = 1
    csi: Optional[CSIEstimate] = None
    deadline_frame: Optional[int] = None
    is_reservation: bool = False

    def __post_init__(self) -> None:
        if self.terminal_id < 0:
            raise ValueError("terminal_id must be non-negative")
        if self.arrival_frame < 0:
            raise ValueError("arrival_frame must be non-negative")
        if self.desired_packets < 1:
            raise ValueError("desired_packets must be at least 1")

    def waiting_frames(self, current_frame: int) -> int:
        """Frames elapsed since the request was received."""
        return max(0, current_frame - self.arrival_frame)

    def frames_to_deadline(self, current_frame: int) -> Optional[int]:
        """Frames remaining before the associated packet deadline."""
        if self.deadline_frame is None:
            return None
        return max(0, self.deadline_frame - current_frame)

    def is_expired(self, current_frame: int) -> bool:
        """Whether the associated voice deadline has already passed."""
        return self.deadline_frame is not None and current_frame >= self.deadline_frame


@dataclass(frozen=True)
class Acknowledgement:
    """Downlink acknowledgement of a successfully received request."""

    terminal_id: int
    request_slot: int
    frame_index: int


@dataclass(frozen=True)
class Allocation:
    """One entry of the downlink announcement: a slot grant to a terminal.

    Attributes
    ----------
    terminal_id:
        The granted mobile device.
    n_slots:
        Number of information slots granted in this frame.
    packet_capacity:
        Total number of packets those slots can carry at the announced mode.
    throughput:
        Normalised throughput of the announced transmission mode, or ``None``
        when the protocol runs on the fixed-rate PHY.
    """

    terminal_id: int
    n_slots: int
    packet_capacity: int
    throughput: Optional[float] = None

    def __post_init__(self) -> None:
        if self.terminal_id < 0:
            raise ValueError("terminal_id must be non-negative")
        if self.n_slots < 1:
            raise ValueError("n_slots must be at least 1")
        if self.packet_capacity < 1:
            raise ValueError("packet_capacity must be at least 1")
        if self.throughput is not None and self.throughput <= 0:
            raise ValueError("throughput must be positive when given")


class GrantColumns:
    """One frame's slot grants as parallel columns instead of objects.

    The array-native MAC kernels emit their grants by appending plain Python
    scalars to these four parallel lists; the engine's batched executor
    consumes the columns directly (index arrays into the population), so the
    hot loop never materialises an :class:`Allocation` per grant.  The
    object form is still available on demand via :meth:`to_allocations` —
    that is what :attr:`FrameOutcome.allocations` lazily returns for
    collectors, tests and debugging.
    """

    __slots__ = ("terminal_ids", "n_slots", "packet_capacities", "throughputs")

    def __init__(self) -> None:
        self.terminal_ids: List[int] = []
        self.n_slots: List[int] = []
        self.packet_capacities: List[int] = []
        #: Announced mode throughput per grant; ``None`` on the fixed PHY.
        self.throughputs: List[Optional[float]] = []

    def append(
        self,
        terminal_id: int,
        n_slots: int,
        packet_capacity: int,
        throughput: Optional[float] = None,
    ) -> None:
        """Record one grant (scalar fast path of the batch emitters)."""
        self.terminal_ids.append(terminal_id)
        self.n_slots.append(n_slots)
        self.packet_capacities.append(packet_capacity)
        self.throughputs.append(throughput)

    def __len__(self) -> int:
        return len(self.terminal_ids)

    @property
    def total_slots(self) -> int:
        """Total information slots granted."""
        return sum(self.n_slots)

    def to_allocations(self) -> List[Allocation]:
        """Materialise the columns as validated :class:`Allocation` objects."""
        return [
            Allocation(
                terminal_id=int(tid),
                n_slots=int(slots),
                packet_capacity=int(capacity),
                throughput=None if throughput is None else float(throughput),
            )
            for tid, slots, capacity, throughput in zip(
                self.terminal_ids,
                self.n_slots,
                self.packet_capacities,
                self.throughputs,
            )
        ]


class FrameOutcome:
    """Everything a protocol decided in one frame, consumed by the engine.

    Grants exist in one of two interchangeable representations: the
    view-walking protocol paths append :class:`Allocation` objects to
    :attr:`allocations`, while the array-native ``run_frame_batch`` kernels
    fill :attr:`grants` (:class:`GrantColumns`) and never build per-grant
    objects.  Reading :attr:`allocations` on a columnar outcome materialises
    the objects on first access (and caches them), so consumers — metrics,
    tests, equality comparison — see one canonical form either way.

    Attributes
    ----------
    frame_index:
        The frame this outcome belongs to.
    allocations:
        Slot grants to be transmitted in this frame's information subframe.
    grants:
        The same grants in columnar form, when produced by a batch kernel.
    acknowledgements:
        Requests successfully received in the request phase.
    contention_attempts:
        Number of request transmissions attempted by mobile devices.
    contention_collisions:
        Number of request minislots wasted by collisions.
    idle_request_slots:
        Number of request minislots in which nobody transmitted.
    queued_requests:
        Number of requests sitting in the base-station queue after this frame.
    """

    __slots__ = (
        "frame_index",
        "_allocations",
        "grants",
        "acknowledgements",
        "contention_attempts",
        "contention_collisions",
        "idle_request_slots",
        "queued_requests",
    )

    def __init__(self, frame_index: int) -> None:
        self.frame_index = frame_index
        self._allocations: Optional[List[Allocation]] = None
        self.grants: Optional[GrantColumns] = None
        self.acknowledgements: List[Acknowledgement] = []
        self.contention_attempts = 0
        self.contention_collisions = 0
        self.idle_request_slots = 0
        self.queued_requests = 0

    @property
    def allocations(self) -> List[Allocation]:
        """The frame's grants as objects (materialised from columns lazily)."""
        if self._allocations is None:
            self._allocations = (
                self.grants.to_allocations() if self.grants is not None else []
            )
        return self._allocations

    def use_grant_columns(self) -> GrantColumns:
        """Switch this outcome to the columnar grant representation."""
        if self._allocations is not None:
            raise RuntimeError(
                "cannot mix Allocation-object and GrantColumns emission in "
                "one FrameOutcome"
            )
        if self.grants is None:
            self.grants = GrantColumns()
        return self.grants

    @property
    def n_allocated_slots(self) -> int:
        """Total information slots granted in this frame."""
        if self._allocations is None and self.grants is not None:
            return self.grants.total_slots
        return sum(a.n_slots for a in self.allocations)

    @property
    def n_successful_requests(self) -> int:
        """Number of requests acknowledged in this frame."""
        return len(self.acknowledgements)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrameOutcome):
            return NotImplemented
        return (
            self.frame_index == other.frame_index
            and self.allocations == other.allocations
            and self.acknowledgements == other.acknowledgements
            and self.contention_attempts == other.contention_attempts
            and self.contention_collisions == other.contention_collisions
            and self.idle_request_slots == other.idle_request_slots
            and self.queued_requests == other.queued_requests
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FrameOutcome(frame={self.frame_index}, "
            f"allocations={len(self.allocations)}, "
            f"acks={len(self.acknowledgements)})"
        )


class RequestColumns:
    """A frame's pending requests as aligned columns instead of objects.

    The base station's per-frame request pool — contention winners, the
    auto-generated requests of voice reservation holders, and the queued
    backlog — is what the view-walking protocol paths shuttle around as
    :class:`Request` dataclasses.  The array-native kernels keep the same
    records as parallel NumPy columns: booking a request is an array append,
    priority ranking is array math over the columns, and service order is an
    argsort — no per-request object is ever built in the hot loop.

    Sentinels (column encodings of the object form's ``None``):

    * ``deadline_frames`` — ``-1`` means no deadline (data requests);
    * ``csi_amplitudes`` / ``csi_frames`` — ``NaN`` / ``-1`` mean no CSI
      estimate is attached.

    :meth:`to_requests` materialises selected rows back into validated
    :class:`Request` objects — that is how leftovers re-enter the
    (object-form) base-station queue, so both representations round-trip.
    """

    __slots__ = (
        "terminal_ids",
        "is_voice",
        "arrival_frames",
        "desired_packets",
        "deadline_frames",
        "is_reservation",
        "csi_amplitudes",
        "csi_frames",
        "csi_validity",
    )

    def __init__(
        self,
        terminal_ids: np.ndarray,
        is_voice: np.ndarray,
        arrival_frames: np.ndarray,
        desired_packets: np.ndarray,
        deadline_frames: np.ndarray,
        is_reservation: np.ndarray,
        csi_amplitudes: Optional[np.ndarray] = None,
        csi_frames: Optional[np.ndarray] = None,
        csi_validity: int = 2,
    ) -> None:
        n = terminal_ids.shape[0]
        self.terminal_ids = terminal_ids
        self.is_voice = is_voice
        self.arrival_frames = arrival_frames
        self.desired_packets = desired_packets
        self.deadline_frames = deadline_frames
        self.is_reservation = is_reservation
        self.csi_amplitudes = (
            csi_amplitudes if csi_amplitudes is not None else np.full(n, np.nan)
        )
        self.csi_frames = (
            csi_frames
            if csi_frames is not None
            else np.full(n, -1, dtype=np.int64)
        )
        self.csi_validity = int(csi_validity)

    # ------------------------------------------------------------ factories
    @classmethod
    def empty(cls, csi_validity: int = 2) -> "RequestColumns":
        """Columns holding no requests."""
        return cls(
            terminal_ids=np.zeros(0, dtype=np.int64),
            is_voice=np.zeros(0, dtype=bool),
            arrival_frames=np.zeros(0, dtype=np.int64),
            desired_packets=np.zeros(0, dtype=np.int64),
            deadline_frames=np.full(0, -1, dtype=np.int64),
            is_reservation=np.zeros(0, dtype=bool),
            csi_validity=csi_validity,
        )

    @classmethod
    def from_requests(
        cls, requests: Sequence[Request], csi_validity: int = 2
    ) -> "RequestColumns":
        """Columnise :class:`Request` objects (the queue backlog interop)."""
        n = len(requests)
        columns = cls(
            terminal_ids=np.fromiter(
                (r.terminal_id for r in requests), dtype=np.int64, count=n
            ),
            is_voice=np.fromiter(
                (r.kind.is_voice for r in requests), dtype=bool, count=n
            ),
            arrival_frames=np.fromiter(
                (r.arrival_frame for r in requests), dtype=np.int64, count=n
            ),
            desired_packets=np.fromiter(
                (r.desired_packets for r in requests), dtype=np.int64, count=n
            ),
            deadline_frames=np.fromiter(
                (
                    -1 if r.deadline_frame is None else r.deadline_frame
                    for r in requests
                ),
                dtype=np.int64,
                count=n,
            ),
            is_reservation=np.fromiter(
                (r.is_reservation for r in requests), dtype=bool, count=n
            ),
            csi_amplitudes=np.fromiter(
                (np.nan if r.csi is None else r.csi.amplitude for r in requests),
                dtype=float,
                count=n,
            ),
            csi_frames=np.fromiter(
                (-1 if r.csi is None else r.csi.frame_index for r in requests),
                dtype=np.int64,
                count=n,
            ),
            csi_validity=csi_validity,
        )
        return columns

    @staticmethod
    def concatenate(parts: Sequence["RequestColumns"]) -> "RequestColumns":
        """Stack several column sets in order (e.g. reservations + new + backlog)."""
        if not parts:
            return RequestColumns.empty()
        validity = parts[0].csi_validity
        return RequestColumns(
            terminal_ids=np.concatenate([p.terminal_ids for p in parts]),
            is_voice=np.concatenate([p.is_voice for p in parts]),
            arrival_frames=np.concatenate([p.arrival_frames for p in parts]),
            desired_packets=np.concatenate([p.desired_packets for p in parts]),
            deadline_frames=np.concatenate([p.deadline_frames for p in parts]),
            is_reservation=np.concatenate([p.is_reservation for p in parts]),
            csi_amplitudes=np.concatenate([p.csi_amplitudes for p in parts]),
            csi_frames=np.concatenate([p.csi_frames for p in parts]),
            csi_validity=validity,
        )

    # ------------------------------------------------------------------ API
    def __len__(self) -> int:
        return int(self.terminal_ids.shape[0])

    def frames_to_deadline(self, row: int, current_frame: int) -> Optional[int]:
        """Frames remaining before the row's deadline (``None`` if none)."""
        deadline = int(self.deadline_frames[row])
        if deadline < 0:
            return None
        return max(0, deadline - current_frame)

    def set_csi(self, row: int, amplitude: float, frame_index: int) -> None:
        """Attach a (fresh) CSI estimate to one row."""
        self.csi_amplitudes[row] = amplitude
        self.csi_frames[row] = frame_index

    def to_requests(self, rows: Optional[Sequence[int]] = None) -> List[Request]:
        """Materialise (selected) rows as :class:`Request` objects."""
        if rows is None:
            rows = range(len(self))
        requests: List[Request] = []
        for row in rows:
            csi_frame = int(self.csi_frames[row])
            amplitude = float(self.csi_amplitudes[row])
            csi = None
            if csi_frame >= 0 or not np.isnan(amplitude):
                csi = CSIEstimate(
                    amplitude=amplitude,
                    frame_index=max(0, csi_frame),
                    validity_frames=self.csi_validity,
                )
            deadline = int(self.deadline_frames[row])
            requests.append(
                Request(
                    terminal_id=int(self.terminal_ids[row]),
                    kind=(
                        TrafficKind.VOICE
                        if self.is_voice[row]
                        else TrafficKind.DATA
                    ),
                    arrival_frame=int(self.arrival_frames[row]),
                    desired_packets=int(self.desired_packets[row]),
                    csi=csi,
                    deadline_frame=None if deadline < 0 else deadline,
                    is_reservation=bool(self.is_reservation[row]),
                )
            )
        return requests
