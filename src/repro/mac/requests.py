"""Request, acknowledgement and announcement records exchanged with the base station.

The uplink request packet of the paper (Fig. 9a) carries the mobile device
ID, the request type (voice or data), the packet deadline, the number of
information packets the device wishes to transmit, and pilot symbols from
which the base station estimates the sender's CSI.  The downlink
acknowledgement carries the successful request's ID, and the announcement
carries the slot allocation schedule plus the transmission mode to use.

These records are plain data: all decision making lives in the protocols.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.phy.csi import CSIEstimate
from repro.traffic.packets import TrafficKind

__all__ = ["Request", "Acknowledgement", "Allocation", "FrameOutcome"]


@dataclass
class Request:
    """A successfully received transmission request held at the base station.

    Attributes
    ----------
    terminal_id:
        The requesting mobile device.
    kind:
        Voice or data request.
    arrival_frame:
        Frame in which the request was successfully received (or auto-
        generated, for voice reservations).
    desired_packets:
        Number of information packets the device wishes to transmit.
    csi:
        The base station's CSI estimate for the device, if any (adaptive
        protocols only).
    deadline_frame:
        Deadline of the head-of-line voice packet; ``None`` for data.
    is_reservation:
        ``True`` for the periodic requests the base station auto-generates on
        behalf of voice users holding a reservation.
    """

    terminal_id: int
    kind: TrafficKind
    arrival_frame: int
    desired_packets: int = 1
    csi: Optional[CSIEstimate] = None
    deadline_frame: Optional[int] = None
    is_reservation: bool = False

    def __post_init__(self) -> None:
        if self.terminal_id < 0:
            raise ValueError("terminal_id must be non-negative")
        if self.arrival_frame < 0:
            raise ValueError("arrival_frame must be non-negative")
        if self.desired_packets < 1:
            raise ValueError("desired_packets must be at least 1")

    def waiting_frames(self, current_frame: int) -> int:
        """Frames elapsed since the request was received."""
        return max(0, current_frame - self.arrival_frame)

    def frames_to_deadline(self, current_frame: int) -> Optional[int]:
        """Frames remaining before the associated packet deadline."""
        if self.deadline_frame is None:
            return None
        return max(0, self.deadline_frame - current_frame)

    def is_expired(self, current_frame: int) -> bool:
        """Whether the associated voice deadline has already passed."""
        return self.deadline_frame is not None and current_frame >= self.deadline_frame


@dataclass(frozen=True)
class Acknowledgement:
    """Downlink acknowledgement of a successfully received request."""

    terminal_id: int
    request_slot: int
    frame_index: int


@dataclass(frozen=True)
class Allocation:
    """One entry of the downlink announcement: a slot grant to a terminal.

    Attributes
    ----------
    terminal_id:
        The granted mobile device.
    n_slots:
        Number of information slots granted in this frame.
    packet_capacity:
        Total number of packets those slots can carry at the announced mode.
    throughput:
        Normalised throughput of the announced transmission mode, or ``None``
        when the protocol runs on the fixed-rate PHY.
    """

    terminal_id: int
    n_slots: int
    packet_capacity: int
    throughput: Optional[float] = None

    def __post_init__(self) -> None:
        if self.terminal_id < 0:
            raise ValueError("terminal_id must be non-negative")
        if self.n_slots < 1:
            raise ValueError("n_slots must be at least 1")
        if self.packet_capacity < 1:
            raise ValueError("packet_capacity must be at least 1")
        if self.throughput is not None and self.throughput <= 0:
            raise ValueError("throughput must be positive when given")


@dataclass
class FrameOutcome:
    """Everything a protocol decided in one frame, consumed by the engine.

    Attributes
    ----------
    frame_index:
        The frame this outcome belongs to.
    allocations:
        Slot grants to be transmitted in this frame's information subframe.
    acknowledgements:
        Requests successfully received in the request phase.
    contention_attempts:
        Number of request transmissions attempted by mobile devices.
    contention_collisions:
        Number of request minislots wasted by collisions.
    idle_request_slots:
        Number of request minislots in which nobody transmitted.
    queued_requests:
        Number of requests sitting in the base-station queue after this frame.
    """

    frame_index: int
    allocations: List[Allocation] = field(default_factory=list)
    acknowledgements: List[Acknowledgement] = field(default_factory=list)
    contention_attempts: int = 0
    contention_collisions: int = 0
    idle_request_slots: int = 0
    queued_requests: int = 0

    @property
    def n_allocated_slots(self) -> int:
        """Total information slots granted in this frame."""
        return sum(a.n_slots for a in self.allocations)

    @property
    def n_successful_requests(self) -> int:
        """Number of requests acknowledged in this frame."""
        return len(self.acknowledgements)
