"""TDMA frame-structure descriptors.

Each protocol partitions the 2.5 ms uplink frame differently (Figs. 2 and 4
of the paper).  :class:`FrameStructure` captures that partition in units of
*minislots* and *information slots* so the protocols and the documentation
benchmarks share a single description of where the bandwidth goes.

A request/auction/pilot minislot is smaller than an information slot; the
``minislots_per_info_slot`` exchange rate (3 by default, matching DRMA's
``N_x``) is used when a protocol converts capacity between the two kinds
(RMAV reclaiming unused request capacity, DRMA converting idle information
slots into request minislots).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FrameStructure"]


@dataclass(frozen=True)
class FrameStructure:
    """Static description of one protocol's uplink frame layout.

    Attributes
    ----------
    name:
        Protocol the structure belongs to.
    request_minislots:
        Minislots dedicated to request contention (or auction slots for RAMA,
        or the single competitive slot for RMAV).
    info_slots:
        Full-size information slots available for packet transmission.
    pilot_minislots:
        Minislots of the pilot-symbol subframe (CHARISMA's CSI polling);
        zero for the other protocols.
    dynamic:
        Whether the split between request and information capacity changes
        frame by frame (RMAV, DRMA).
    minislots_per_info_slot:
        Exchange rate used when converting between slot kinds.
    """

    name: str
    request_minislots: int
    info_slots: int
    pilot_minislots: int = 0
    dynamic: bool = False
    minislots_per_info_slot: int = 3

    def __post_init__(self) -> None:
        if self.request_minislots < 0 or self.info_slots < 0 or self.pilot_minislots < 0:
            raise ValueError("slot counts must be non-negative")
        if self.info_slots == 0 and self.request_minislots == 0:
            raise ValueError("a frame must contain at least one slot")
        if self.minislots_per_info_slot < 1:
            raise ValueError("minislots_per_info_slot must be at least 1")

    @property
    def total_minislot_equivalent(self) -> int:
        """Total frame capacity expressed in minislots."""
        return (
            self.request_minislots
            + self.pilot_minislots
            + self.info_slots * self.minislots_per_info_slot
        )

    def info_slots_from_minislots(self, n_minislots: int) -> int:
        """How many whole information slots ``n_minislots`` could carry."""
        if n_minislots < 0:
            raise ValueError("n_minislots must be non-negative")
        return n_minislots // self.minislots_per_info_slot

    def minislots_from_info_slots(self, n_info_slots: int) -> int:
        """How many request minislots ``n_info_slots`` convert into."""
        if n_info_slots < 0:
            raise ValueError("n_info_slots must be non-negative")
        return n_info_slots * self.minislots_per_info_slot

    def describe(self) -> dict:
        """Row used by the frame-structure documentation benchmark."""
        return {
            "protocol": self.name,
            "request_minislots": self.request_minislots,
            "info_slots": self.info_slots,
            "pilot_minislots": self.pilot_minislots,
            "dynamic": self.dynamic,
            "minislot_equivalent": self.total_minislot_equivalent,
        }
