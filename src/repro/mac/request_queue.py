"""Base-station request queue.

Section 4.5 of the paper: every protocol except RMAV can optionally keep a
*request queue* at the base station, storing requests that survived the
contention but were not allocated information slots in their frame.  Such
requests are reconsidered in later frames instead of forcing the mobile
device to contend again.  Queued voice requests whose deadline has already
expired are discarded (the corresponding packet is dropped at the device).

The queue preserves arrival order (FIFO); CHARISMA re-ranks its contents by
the CSI/urgency priority metric every frame, the FCFS baselines serve it in
order.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

import numpy as np

from repro.mac.requests import Request

__all__ = ["RequestQueue"]


class RequestQueue:
    """Bounded FIFO of pending requests held at the base station.

    Parameters
    ----------
    capacity:
        Maximum number of stored requests; arrivals beyond the capacity are
        rejected (the device will simply contend again later), which bounds
        the base station's state as a real implementation would.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._capacity = int(capacity)
        self._queue: Deque[Request] = deque()
        # Queued-request count per terminal id, so per-frame membership
        # checks (every contention candidate is screened against the queue)
        # are O(1) instead of a deque scan.
        self._per_terminal: Dict[int, int] = {}

    def _recount(self) -> None:
        counts: Dict[int, int] = {}
        for request in self._queue:
            counts[request.terminal_id] = counts.get(request.terminal_id, 0) + 1
        self._per_terminal = counts

    # ------------------------------------------------------------------ API
    @property
    def capacity(self) -> int:
        """Maximum number of stored requests."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self):
        return iter(self._queue)

    @property
    def is_full(self) -> bool:
        """Whether the queue has reached its capacity."""
        return len(self._queue) >= self._capacity

    def contains_terminal(self, terminal_id: int) -> bool:
        """Whether a request from the given terminal is already queued."""
        return terminal_id in self._per_terminal

    def terminal_id_array(self) -> np.ndarray:
        """Ids of the terminals with at least one queued request (unsorted).

        Used by the array-native candidate kernels to mask queued terminals
        out of contention without iterating the deque per frame.
        """
        return np.fromiter(
            self._per_terminal, dtype=np.int64, count=len(self._per_terminal)
        )

    def push(self, request: Request) -> bool:
        """Queue a request; returns ``False`` if the queue is full."""
        if self.is_full:
            return False
        self._queue.append(request)
        self._per_terminal[request.terminal_id] = (
            self._per_terminal.get(request.terminal_id, 0) + 1
        )
        return True

    def extend(self, requests: Iterable[Request]) -> int:
        """Queue several requests; returns how many were accepted."""
        accepted = 0
        for request in requests:
            if not self.push(request):
                break
            accepted += 1
        return accepted

    def pop_all(self) -> List[Request]:
        """Remove and return every queued request in FIFO order."""
        items = list(self._queue)
        self._queue.clear()
        self._per_terminal.clear()
        return items

    def peek_all(self) -> List[Request]:
        """Return the queued requests (FIFO order) without removing them."""
        return list(self._queue)

    def remove_terminal(self, terminal_id: int) -> int:
        """Remove any queued requests of the given terminal."""
        if terminal_id not in self._per_terminal:
            return 0
        before = len(self._queue)
        self._queue = deque(r for r in self._queue if r.terminal_id != terminal_id)
        del self._per_terminal[terminal_id]
        return before - len(self._queue)

    def drop_expired(self, current_frame: int) -> int:
        """Discard queued voice requests whose deadline has passed."""
        before = len(self._queue)
        self._queue = deque(r for r in self._queue if not r.is_expired(current_frame))
        dropped = before - len(self._queue)
        if dropped:
            self._recount()
        return dropped

    def clear(self) -> None:
        """Empty the queue."""
        self._queue.clear()
        self._per_terminal.clear()
