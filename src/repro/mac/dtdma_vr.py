"""D-TDMA/VR: dynamic TDMA on a variable-throughput adaptive PHY (Section 3.5).

D-TDMA/VR uses exactly the same access-control procedure as D-TDMA/FR — the
static request/information frame split, slotted contention, FCFS assignment,
voice reservations — but runs on the channel-adaptive variable-throughput
physical layer.  Crucially, *there is no interaction between the access
control layer and the physical layer*: the scheduler does not look at CSI
when assigning slots; the only benefits come from whatever mode the PHY
happens to pick at transmission time (more packets per slot in good channels,
added protection in bad ones).  This is the strongest baseline and the
closest design to CHARISMA, which differs precisely by feeding CSI into the
allocation decision.
"""

from __future__ import annotations

from repro.mac.dtdma_fr import DTDMAFRProtocol

__all__ = ["DTDMAVRProtocol"]


class DTDMAVRProtocol(DTDMAFRProtocol):
    """D-TDMA/FR's MAC on top of the adaptive physical layer.

    Inherits D-TDMA/FR's array-native ``run_frame_batch`` unchanged: the
    shared kernels resolve per-grant capacities through the protocol's own
    modem, so the adaptive PHY's variable packets-per-slot flows through
    the same columnar capacity lookup
    (:meth:`~repro.mac.base.MACProtocol.grant_capacity_columns`).  The
    inherited entry is wrapped by :func:`~repro.mac.base.traced_batch`,
    and because the span name reads ``self.name`` at call time, traces
    label this protocol's frames ``mac.dtdma_vr.batch`` — no override
    needed here.
    """

    name = "dtdma_vr"
    display_name = "D-TDMA/VR"
    uses_adaptive_phy = True
    uses_csi_scheduling = False
    supports_request_queue = True
