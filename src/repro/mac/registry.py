"""Protocol registry: build any of the six protocols by name.

The factory also constructs the appropriate physical layer: CHARISMA and
D-TDMA/VR run on the 6-mode adaptive modem, the other baselines on the
fixed-rate modem, all parameterised from the shared
:class:`~repro.config.SimulationParameters`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

import numpy as np

from repro.config import SimulationParameters
from repro.mac.base import MACProtocol, Modem
from repro.mac.drma import DRMAProtocol
from repro.mac.dtdma_fr import DTDMAFRProtocol
from repro.mac.dtdma_vr import DTDMAVRProtocol
from repro.mac.rama import RAMAProtocol
from repro.mac.rmav import RMAVProtocol
from repro.phy.abicm import AdaptiveModem
from repro.phy.fixed import FixedRateModem
from repro.phy.modes import ModeTable

__all__ = [
    "PROTOCOLS",
    "available_protocols",
    "build_modem",
    "create_protocol",
    "protocol_class",
]


def _protocol_classes() -> Dict[str, Type[MACProtocol]]:
    # CHARISMA lives in repro.core; imported lazily to avoid a cycle at
    # module import time (core imports the MAC substrate).
    from repro.core.charisma import CharismaProtocol

    classes = [
        CharismaProtocol,
        DTDMAVRProtocol,
        DTDMAFRProtocol,
        DRMAProtocol,
        RAMAProtocol,
        RMAVProtocol,
    ]
    return {cls.name: cls for cls in classes}


#: Mapping of registry key to protocol class (populated on first access).
PROTOCOLS: Dict[str, Type[MACProtocol]] = {}


def _registry() -> Dict[str, Type[MACProtocol]]:
    if not PROTOCOLS:
        PROTOCOLS.update(_protocol_classes())
    return PROTOCOLS


def available_protocols() -> List[str]:
    """Names of all implemented protocols (CHARISMA plus the five baselines)."""
    return sorted(_registry())


def protocol_class(name: str) -> Type[MACProtocol]:
    """Look up a protocol class by its registry name."""
    registry = _registry()
    key = name.lower()
    if key not in registry:
        raise KeyError(
            f"unknown protocol {name!r}; available: {', '.join(sorted(registry))}"
        )
    return registry[key]


def build_modem(
    name: str, params: SimulationParameters
) -> Modem:
    """Construct the physical layer the named protocol runs on."""
    cls = protocol_class(name)
    if cls.uses_adaptive_phy:
        return AdaptiveModem(
            ModeTable(
                throughputs=params.mode_throughputs,
                target_ber=params.target_ber,
                reference_throughput=params.reference_throughput,
            ),
            mean_snr_db=params.mean_snr_db,
            packet_size_bits=params.packet_size_bits,
        )
    return FixedRateModem(
        throughput=params.reference_throughput,
        target_ber=params.target_ber,
        mean_snr_db=params.mean_snr_db,
        packet_size_bits=params.packet_size_bits,
    )


def create_protocol(
    name: str,
    params: SimulationParameters,
    rng: np.random.Generator,
    use_request_queue: bool = False,
    modem: Optional[Modem] = None,
    rng_mode: str = "parity",
    contention_rng: Optional[np.random.Generator] = None,
    csi_rng: Optional[np.random.Generator] = None,
) -> MACProtocol:
    """Instantiate a protocol (and, unless provided, its physical layer).

    ``rng_mode`` / ``contention_rng`` select the protocol's random-draw
    batching contract (see :class:`~repro.sim.scenario.Scenario.rng_mode`);
    ``csi_rng`` is the dedicated estimation-noise child stream fast mode
    hands to CSI-scheduling protocols (ignored by the others).
    """
    cls = protocol_class(name)
    if modem is None:
        modem = build_modem(name, params)
    kwargs: dict = {
        "use_request_queue": use_request_queue,
        "rng_mode": rng_mode,
        "contention_rng": contention_rng,
    }
    if cls.uses_csi_scheduling:
        kwargs["csi_rng"] = csi_rng
    return cls(params, modem, rng, **kwargs)
