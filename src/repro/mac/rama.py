"""RAMA: Resource Auction Multiple Access (Section 3.1).

RAMA replaces random contention by a *collision-avoidance auction*.  The
frame contains ``N_a`` auction slots; in each one every contending user
transmits, digit by digit, a randomly generated ID (voice users' IDs are
constructed to exceed data users' so that voice wins ties of service class),
and the base station keeps only the largest digit at every round.  At the end
of the auction exactly one user survives and is granted an information slot
in the current frame — unless two contenders happened to draw the *same* ID,
an event whose probability shrinks geometrically with the ID length.

Modelling notes
---------------
The digit-by-digit elimination always selects a uniformly random contender
among the highest-priority class (every ID permutation is equally likely), so
we draw the winner directly and separately account for the residual
whole-ID-tie probability, preserving RAMA's key properties: progress is
guaranteed at any load (no thrashing), at most ``N_a`` new grants per frame,
and a larger bandwidth/hardware overhead per auction slot than a plain
request minislot (``N_a < N_r``).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.channel.manager import ChannelSnapshot
from repro.mac.base import MACProtocol, terminal_lookup, traced_batch
from repro.mac.frames import FrameStructure
from repro.mac.requests import (
    Acknowledgement,
    FrameOutcome,
    Request,
    RequestColumns,
)
from repro.traffic.terminal import Terminal

__all__ = ["RAMAProtocol"]


class RAMAProtocol(MACProtocol):
    """Auction-based collision-avoidance uplink access."""

    name = "rama"
    display_name = "RAMA"
    uses_adaptive_phy = False
    uses_csi_scheduling = False
    supports_request_queue = True
    #: Quiet frames (no contenders, empty queue) draw nothing — the auction
    #: never runs — so the macro engine executes them inline.  Contested
    #: frames resolve through the runner's inline auction: the sequential
    #: tie/winner draw pairs are made directly against ``rng`` in the exact
    #: per-frame call order (they are inherently unpoolable), so contested
    #: frames stay inside the fused block too.
    supports_macro_lookahead = True
    macro_contention_style = "auction"

    # ------------------------------------------------------------ interface
    def _build_frame_structure(self) -> FrameStructure:
        return FrameStructure(
            name=self.display_name,
            request_minislots=self.params.rama_auction_slots,
            info_slots=self.params.n_info_slots,
            dynamic=False,
            minislots_per_info_slot=self.params.drma_minislots_per_info_slot,
        )

    def whole_id_tie_probability(self, n_contenders: int) -> float:
        """Probability that the auction winner's full ID is duplicated.

        With ``d`` digits of radix ``b`` there are ``b**d`` possible IDs; the
        chance that at least one of the other ``n-1`` contenders drew exactly
        the winner's ID is ``1 - (1 - b**-d)**(n-1)``.
        """
        if n_contenders <= 1:
            return 0.0
        p_same = float(self.params.rama_digit_base) ** (-self.params.rama_id_digits)
        return 1.0 - (1.0 - p_same) ** (n_contenders - 1)

    def run_frame(
        self,
        frame_index: int,
        terminals: Sequence[Terminal],
        snapshot: ChannelSnapshot,
    ) -> FrameOutcome:
        self.release_finished_reservations(terminals)
        self.prune_queue(frame_index, terminals)
        by_id = terminal_lookup(terminals)
        outcome = FrameOutcome(frame_index)
        slots_left = self.frame_structure.info_slots

        used = self.allocate_reserved_voice(
            terminals, snapshot, slots_left, outcome.allocations
        )
        slots_left -= used

        # Auction phase: every contender participates in every auction slot
        # (no permission-probability gating — collisions are avoided by the
        # auction itself).
        remaining = self.contention_candidates(terminals)
        winners: List[Terminal] = []
        for auction_slot in range(self.frame_structure.request_minislots):
            if not remaining:
                outcome.idle_request_slots += 1
                continue
            outcome.contention_attempts += len(remaining)
            pool = [t for t in remaining if t.is_voice] or remaining
            if self.rng.random() < self.whole_id_tie_probability(len(pool)):
                outcome.contention_collisions += 1
                continue
            winner = pool[int(self.rng.integers(len(pool)))]
            remaining.remove(winner)
            winners.append(winner)
            outcome.acknowledgements.append(
                Acknowledgement(winner.terminal_id, auction_slot, frame_index)
            )

        new_requests = [self.make_request(t, frame_index) for t in winners]
        backlog = self.request_queue.pop_all() if self.request_queue is not None else []
        pending = backlog + new_requests
        voice_requests = [r for r in pending if r.kind.is_voice]
        data_requests = [r for r in pending if r.kind.is_data]

        unserved: List[Request] = []
        for request in voice_requests:
            terminal = by_id.get(request.terminal_id)
            if terminal is None or not terminal.has_pending_packets:
                continue
            if slots_left < 1:
                unserved.append(request)
                continue
            amplitude = snapshot.amplitude_of(terminal.terminal_id)
            outcome.allocations.append(self.build_allocation(terminal, amplitude, 1))
            slots_left -= 1
            self.reservations.grant(terminal.terminal_id, frame_index)
        for request in data_requests:
            terminal = by_id.get(request.terminal_id)
            if terminal is None or not terminal.has_pending_packets:
                continue
            if slots_left < 1:
                unserved.append(request)
                continue
            amplitude = snapshot.amplitude_of(terminal.terminal_id)
            n_slots = self.slots_needed_for_data(terminal, amplitude, slots_left)
            outcome.allocations.append(self.build_allocation(terminal, amplitude, n_slots))
            slots_left -= n_slots

        self.queue_unserved(unserved)
        outcome.queued_requests = self.queued_count()
        return outcome

    @traced_batch
    def run_frame_batch(
        self,
        frame_index: int,
        population,
        snapshot: ChannelSnapshot,
    ) -> FrameOutcome:
        """Array-native frame: id-array auction, columnar FCFS service.

        The auction's two scalar draws per contested slot (whole-ID tie,
        uniform winner) are kept in the object path's exact order — the
        auction is inherently sequential (each slot's pool depends on the
        previous winners) and makes at most ``N_a`` draw pairs per frame, so
        there is nothing worth batching even in fast mode.
        """
        self.reservations.release_ended_population(population)
        self.prune_queue_batch(frame_index, population)
        outcome = FrameOutcome(frame_index)
        grants = outcome.use_grant_columns()
        slots_left = self.frame_structure.info_slots

        served = self.allocate_reserved_voice_batch(
            population, snapshot, slots_left, grants
        )
        slots_left -= served.shape[0]

        # Auction phase over candidate id lists (no permission gating); the
        # pools are small, so plain-list bookkeeping beats array kernels.
        candidate_array, _ = self.contention_candidate_ids(population)
        remaining = candidate_array.tolist()
        voice_flags = population.is_voice[candidate_array].tolist()
        rng = self.rng
        winner_ids: List[int] = []
        acknowledgements = outcome.acknowledgements
        for auction_slot in range(self.frame_structure.request_minislots):
            n_remaining = len(remaining)
            if n_remaining == 0:
                outcome.idle_request_slots += 1
                continue
            outcome.contention_attempts += n_remaining
            pool = [
                tid for tid, voice in zip(remaining, voice_flags) if voice
            ] or remaining
            if rng.random() < self.whole_id_tie_probability(len(pool)):
                outcome.contention_collisions += 1
                continue
            winner = pool[int(rng.integers(len(pool)))]
            position = remaining.index(winner)
            remaining.pop(position)
            voice_flags.pop(position)
            winner_ids.append(winner)
            acknowledgements.append(
                Acknowledgement(winner, auction_slot, frame_index)
            )

        backlog = (
            self.request_queue.pop_all() if self.request_queue is not None else []
        )
        if not backlog:
            if winner_ids:
                self._serve_winners_scalar(
                    winner_ids, population, snapshot, frame_index,
                    slots_left, grants,
                )
            outcome.queued_requests = self.queued_count()
            return outcome
        new_columns = self.request_columns_for(
            population, np.asarray(winner_ids, dtype=np.int64), frame_index
        )
        if backlog:
            pending = RequestColumns.concatenate(
                [RequestColumns.from_requests(backlog), new_columns]
            )
        else:
            pending = new_columns
        voice_rows = np.nonzero(pending.is_voice)[0]
        data_rows = np.nonzero(~pending.is_voice)[0]

        unserved_rows: List[int] = []
        slots_left = self._serve_voice_rows_batch(
            pending, voice_rows, population, snapshot, frame_index,
            slots_left, grants, unserved_rows,
        )
        slots_left = self._serve_data_rows_batch(
            pending, data_rows, population, snapshot, slots_left, grants,
            unserved_rows,
        )

        self.queue_unserved_rows(pending, unserved_rows)
        outcome.queued_requests = self.queued_count()
        return outcome

    def _serve_winners_scalar(
        self,
        winner_ids: List[int],
        population,
        snapshot: ChannelSnapshot,
        frame_index: int,
        slots_left: int,
        grants,
    ) -> None:
        """FCFS service of a backlog-free frame's auction winners.

        The auction yields at most ``N_a`` winners per frame, so columnising
        them (nine array allocations, masked row scans) costs more than it
        saves — this was the ``batch_over_view`` regression.  Plain scalar
        service over the handful of winners is decision-for-decision (and
        queue-entry-for-queue-entry) identical to the columnar
        ``_serve_voice_rows_batch`` / ``_serve_data_rows_batch`` pair on the
        same single-frame pool.
        """
        occupancy = population.occupancy
        is_voice = population.is_voice
        amplitude = snapshot.amplitude
        unserved: List[int] = []
        append = grants.append
        for want_voice in (True, False):
            for tid in winner_ids:
                if bool(is_voice[tid]) is not want_voice:
                    continue
                occ = int(occupancy[tid])
                if occ == 0:
                    continue
                if slots_left < 1:
                    unserved.append(tid)
                    continue
                per_slot, throughput = self.slot_capacity(float(amplitude[tid]))
                if want_voice:
                    append(tid, 1, per_slot, throughput)
                    slots_left -= 1
                    self.reservations.grant(tid, frame_index)
                else:
                    needed = -(-occ // max(1, per_slot))
                    n_slots = max(1, min(slots_left, needed))
                    append(tid, n_slots, per_slot * n_slots, throughput)
                    slots_left -= n_slots
        if unserved and self.request_queue is not None:
            self.request_queue.extend(
                self.make_request_for_id(population, tid, frame_index)
                for tid in unserved
            )
