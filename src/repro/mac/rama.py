"""RAMA: Resource Auction Multiple Access (Section 3.1).

RAMA replaces random contention by a *collision-avoidance auction*.  The
frame contains ``N_a`` auction slots; in each one every contending user
transmits, digit by digit, a randomly generated ID (voice users' IDs are
constructed to exceed data users' so that voice wins ties of service class),
and the base station keeps only the largest digit at every round.  At the end
of the auction exactly one user survives and is granted an information slot
in the current frame — unless two contenders happened to draw the *same* ID,
an event whose probability shrinks geometrically with the ID length.

Modelling notes
---------------
The digit-by-digit elimination always selects a uniformly random contender
among the highest-priority class (every ID permutation is equally likely), so
we draw the winner directly and separately account for the residual
whole-ID-tie probability, preserving RAMA's key properties: progress is
guaranteed at any load (no thrashing), at most ``N_a`` new grants per frame,
and a larger bandwidth/hardware overhead per auction slot than a plain
request minislot (``N_a < N_r``).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.channel.manager import ChannelSnapshot
from repro.mac.base import MACProtocol, terminal_lookup
from repro.mac.frames import FrameStructure
from repro.mac.requests import Acknowledgement, FrameOutcome, Request
from repro.traffic.terminal import Terminal

__all__ = ["RAMAProtocol"]


class RAMAProtocol(MACProtocol):
    """Auction-based collision-avoidance uplink access."""

    name = "rama"
    display_name = "RAMA"
    uses_adaptive_phy = False
    uses_csi_scheduling = False
    supports_request_queue = True

    # ------------------------------------------------------------ interface
    def _build_frame_structure(self) -> FrameStructure:
        return FrameStructure(
            name=self.display_name,
            request_minislots=self.params.rama_auction_slots,
            info_slots=self.params.n_info_slots,
            dynamic=False,
            minislots_per_info_slot=self.params.drma_minislots_per_info_slot,
        )

    def whole_id_tie_probability(self, n_contenders: int) -> float:
        """Probability that the auction winner's full ID is duplicated.

        With ``d`` digits of radix ``b`` there are ``b**d`` possible IDs; the
        chance that at least one of the other ``n-1`` contenders drew exactly
        the winner's ID is ``1 - (1 - b**-d)**(n-1)``.
        """
        if n_contenders <= 1:
            return 0.0
        p_same = float(self.params.rama_digit_base) ** (-self.params.rama_id_digits)
        return 1.0 - (1.0 - p_same) ** (n_contenders - 1)

    def run_frame(
        self,
        frame_index: int,
        terminals: Sequence[Terminal],
        snapshot: ChannelSnapshot,
    ) -> FrameOutcome:
        self.release_finished_reservations(terminals)
        self.prune_queue(frame_index, terminals)
        by_id = terminal_lookup(terminals)
        outcome = FrameOutcome(frame_index)
        slots_left = self.frame_structure.info_slots

        used = self.allocate_reserved_voice(
            terminals, snapshot, slots_left, outcome.allocations
        )
        slots_left -= used

        # Auction phase: every contender participates in every auction slot
        # (no permission-probability gating — collisions are avoided by the
        # auction itself).
        remaining = self.contention_candidates(terminals)
        winners: List[Terminal] = []
        for auction_slot in range(self.frame_structure.request_minislots):
            if not remaining:
                outcome.idle_request_slots += 1
                continue
            outcome.contention_attempts += len(remaining)
            pool = [t for t in remaining if t.is_voice] or remaining
            if self.rng.random() < self.whole_id_tie_probability(len(pool)):
                outcome.contention_collisions += 1
                continue
            winner = pool[int(self.rng.integers(len(pool)))]
            remaining.remove(winner)
            winners.append(winner)
            outcome.acknowledgements.append(
                Acknowledgement(winner.terminal_id, auction_slot, frame_index)
            )

        new_requests = [self.make_request(t, frame_index) for t in winners]
        backlog = self.request_queue.pop_all() if self.request_queue is not None else []
        pending = backlog + new_requests
        voice_requests = [r for r in pending if r.kind.is_voice]
        data_requests = [r for r in pending if r.kind.is_data]

        unserved: List[Request] = []
        for request in voice_requests:
            terminal = by_id.get(request.terminal_id)
            if terminal is None or not terminal.has_pending_packets:
                continue
            if slots_left < 1:
                unserved.append(request)
                continue
            amplitude = snapshot.amplitude_of(terminal.terminal_id)
            outcome.allocations.append(self.build_allocation(terminal, amplitude, 1))
            slots_left -= 1
            self.reservations.grant(terminal.terminal_id, frame_index)
        for request in data_requests:
            terminal = by_id.get(request.terminal_id)
            if terminal is None or not terminal.has_pending_packets:
                continue
            if slots_left < 1:
                unserved.append(request)
                continue
            amplitude = snapshot.amplitude_of(terminal.terminal_id)
            n_slots = self.slots_needed_for_data(terminal, amplitude, slots_left)
            outcome.allocations.append(self.build_allocation(terminal, amplitude, n_slots))
            slots_left -= n_slots

        self.queue_unserved(unserved)
        outcome.queued_requests = self.queued_count()
        return outcome
