"""Slotted request-contention resolution.

All protocols except RAMA gather requests through slotted ALOHA-style
contention: in each request minislot every still-unserved contender
transmits with its class's permission probability; a minislot with exactly
one transmission yields a successful request (acknowledged immediately on the
downlink), a minislot with two or more transmissions is a collision and all
of them fail, an empty minislot is idle.  Capture is not modelled, matching
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.traffic.permission import PermissionPolicy
from repro.lint.contracts import kernel
from repro.obs import metrics as _metrics
from repro.traffic.terminal import Terminal

__all__ = [
    "ContentionResult",
    "IndexContentionResult",
    "run_contention",
    "run_contention_ids",
]


@dataclass
class ContentionResult:
    """Outcome of the request phase of one frame.

    Attributes
    ----------
    winners:
        Terminals whose request was successfully received, in the order the
        minislots resolved them (this order is the FCFS order used by the
        baseline protocols).
    attempts:
        Total number of request transmissions (every transmission costs the
        sender energy, successful or not).
    collisions:
        Number of minislots wasted by collisions.
    idle_slots:
        Number of minislots in which nobody transmitted.
    """

    winners: List[Terminal] = field(default_factory=list)
    attempts: int = 0
    collisions: int = 0
    idle_slots: int = 0

    @property
    def n_winners(self) -> int:
        """Number of successful requests."""
        return len(self.winners)


@kernel
def run_contention(
    candidates: Sequence[Terminal],
    n_minislots: int,
    permission: PermissionPolicy,
    rng: np.random.Generator,
) -> ContentionResult:
    """Run slotted contention over ``n_minislots`` request minislots.

    Parameters
    ----------
    candidates:
        Terminals that currently have a request to make.  A terminal stops
        contending for the rest of the frame as soon as its request succeeds
        (it then waits for the allocation announcement).
    n_minislots:
        Number of request minislots in this frame.
    permission:
        The ``p_v`` / ``p_d`` gating policy.
    rng:
        Random generator (used only through ``permission`` draws; kept as an
        explicit argument so callers can reason about stream usage).

    Returns
    -------
    ContentionResult
        Winners in resolution order plus contention statistics.
    """
    if n_minislots < 0:
        raise ValueError("n_minislots must be non-negative")
    remaining = list(candidates)
    # One permission probability per contender, kept aligned with
    # ``remaining`` so each minislot costs a single batched uniform draw
    # (stream-identical to per-candidate ``permission.permits`` calls).
    voice_probability = permission.voice_probability
    data_probability = permission.data_probability
    probabilities = np.array(
        [voice_probability if t.is_voice else data_probability for t in remaining],
        dtype=float,
    )
    result = ContentionResult()
    for _ in range(n_minislots):
        if not remaining:
            result.idle_slots += 1
            continue
        permitted = permission.permits_many(probabilities)
        n_transmitters = int(np.count_nonzero(permitted))
        result.attempts += n_transmitters
        if n_transmitters == 1:
            index = int(np.argmax(permitted))
            result.winners.append(remaining.pop(index))
            probabilities = np.delete(probabilities, index)
        elif n_transmitters == 0:
            result.idle_slots += 1
        else:
            result.collisions += 1
    return result


@dataclass
class IndexContentionResult:
    """Outcome of an index-native contention phase (no terminal objects).

    ``winner_ids`` lists the successful terminals in minislot-resolution
    order; ``remaining_ids`` / ``remaining_probabilities`` are the still
    unserved contenders (aligned plain lists) for callers that continue a
    request phase over multiple calls.  (DRMA manages its own candidate
    lists instead — it must selectively *re-admit* data winners with deep
    buffers, which a pure remainder cannot express.)
    """

    winner_ids: List[int] = field(default_factory=list)
    attempts: int = 0
    collisions: int = 0
    idle_slots: int = 0
    remaining_ids: List[int] = field(default_factory=list)
    remaining_probabilities: List[float] = field(default_factory=list)


#: Candidate count below which per-minislot resolution runs on plain Python
#: scalars (the draw itself stays one batched ``rng.random(n)`` either way).
_SCALAR_RESOLUTION_LIMIT = 24


@kernel
def run_contention_ids(
    ids,
    probabilities,
    n_minislots: int,
    rng: np.random.Generator,
    fast: bool = False,
) -> IndexContentionResult:
    """Slotted contention over id/probability columns instead of objects.

    The array-native twin of :func:`run_contention`: candidates are a dense
    id sequence (array or list) plus an aligned per-candidate
    permission-probability sequence, and winners come back as plain ids.
    With ``fast=False`` the draws are one ``rng.random(n_remaining)`` per
    non-empty minislot in minislot order — exactly the calls (sizes, order,
    comparisons) the object path makes through
    :meth:`PermissionPolicy.permits_many`, so the resolution is
    bit-identical to :func:`run_contention` on the same candidates.  Small
    pools resolve the comparison on Python scalars (cheaper than three
    array kernels per minislot), large ones vectorise; the decisions are
    identical either way.

    With ``fast=True`` the whole request phase costs a single
    ``rng.random((n_minislots, n_candidates))`` draw up front; already
    successful candidates are masked out of later minislots instead of
    shrinking the draw.  Each candidate's per-minislot transmission events
    are still independent Bernoulli(p) trials, so the resolution process is
    distributed identically to the scalar path — just not bit-identical,
    which is why fast mode feeds this from a dedicated child stream.
    """
    if n_minislots < 0:
        raise ValueError("n_minislots must be non-negative")
    result = IndexContentionResult()
    n = len(ids)
    m = _metrics.METRICS
    if m.enabled:
        # Pure accumulation (no clock, no draw) — legal inside kernels.
        m.inc("contention.rounds", n_minislots)
    if n == 0:
        result.idle_slots = n_minislots
        return result

    # The matrix draw only pays for itself when the request phase is large
    # enough to amortise its fixed array cost; below that, fast mode keeps
    # the scalar per-minislot resolution (drawing from its child stream —
    # the processes are identically distributed either way).
    if fast and n_minislots >= 6:
        ids = np.asarray(ids, dtype=np.int64)
        probabilities = np.asarray(probabilities, dtype=float)
        # One draw and one comparison for the whole request phase; the
        # per-minislot work is plain-int bookkeeping, with array fix-ups
        # only on the rare minislots that produce a winner (whose later
        # transmissions must stop counting).
        # The fast gate only switches draw *shape*, never count: this
        # path owns its child stream, so no object-backend parity is
        # promised here.
        # lint: allow[KRN001]
        transmitting = rng.random((n_minislots, n)) < probabilities
        counts = transmitting.sum(axis=1, dtype=np.int64)
        counts_list = counts.tolist()
        active: Optional[np.ndarray] = None
        n_active = n
        for slot in range(n_minislots):
            if n_active == 0:
                result.idle_slots += n_minislots - slot
                break
            n_transmitters = counts_list[slot]
            result.attempts += n_transmitters
            if n_transmitters == 1:
                row = transmitting[slot]
                if active is None:
                    index = int(np.argmax(row))
                    active = np.ones(n, dtype=bool)
                else:
                    index = int(np.argmax(row & active))
                result.winner_ids.append(int(ids[index]))
                active[index] = False
                n_active -= 1
                if slot + 1 < n_minislots:
                    later = transmitting[slot + 1 :, index]
                    if later.any():
                        corrected = counts[slot + 1 :] - later
                        counts[slot + 1 :] = corrected
                        counts_list[slot + 1 :] = corrected.tolist()
            elif n_transmitters == 0:
                result.idle_slots += 1
            else:
                result.collisions += 1
        if active is None:
            result.remaining_ids = ids.tolist()
            result.remaining_probabilities = probabilities.tolist()
        else:
            result.remaining_ids = ids[active].tolist()
            result.remaining_probabilities = probabilities[active].tolist()
        return result

    id_list = ids.tolist() if isinstance(ids, np.ndarray) else list(ids)
    prob_list = (
        probabilities.tolist()
        if isinstance(probabilities, np.ndarray)
        else list(probabilities)
    )
    prob_array: Optional[np.ndarray] = None
    for _ in range(n_minislots):
        k = len(id_list)
        if k == 0:
            result.idle_slots += 1
            continue
        draws = rng.random(size=k)
        if k <= _SCALAR_RESOLUTION_LIMIT:
            n_transmitters = 0
            index = -1
            for position, draw in enumerate(draws.tolist()):
                if draw < prob_list[position]:
                    n_transmitters += 1
                    index = position
        else:
            if prob_array is None:
                prob_array = np.asarray(prob_list, dtype=float)
            permitted = draws < prob_array
            n_transmitters = int(np.count_nonzero(permitted))
            index = int(np.argmax(permitted)) if n_transmitters == 1 else -1
        result.attempts += n_transmitters
        if n_transmitters == 1:
            result.winner_ids.append(id_list.pop(index))
            prob_list.pop(index)
            prob_array = None
        elif n_transmitters == 0:
            result.idle_slots += 1
        else:
            result.collisions += 1
    result.remaining_ids = id_list
    result.remaining_probabilities = prob_list
    return result
