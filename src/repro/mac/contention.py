"""Slotted request-contention resolution.

All protocols except RAMA gather requests through slotted ALOHA-style
contention: in each request minislot every still-unserved contender
transmits with its class's permission probability; a minislot with exactly
one transmission yields a successful request (acknowledged immediately on the
downlink), a minislot with two or more transmissions is a collision and all
of them fail, an empty minislot is idle.  Capture is not modelled, matching
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.traffic.permission import PermissionPolicy
from repro.traffic.terminal import Terminal

__all__ = ["ContentionResult", "run_contention"]


@dataclass
class ContentionResult:
    """Outcome of the request phase of one frame.

    Attributes
    ----------
    winners:
        Terminals whose request was successfully received, in the order the
        minislots resolved them (this order is the FCFS order used by the
        baseline protocols).
    attempts:
        Total number of request transmissions (every transmission costs the
        sender energy, successful or not).
    collisions:
        Number of minislots wasted by collisions.
    idle_slots:
        Number of minislots in which nobody transmitted.
    """

    winners: List[Terminal] = field(default_factory=list)
    attempts: int = 0
    collisions: int = 0
    idle_slots: int = 0

    @property
    def n_winners(self) -> int:
        """Number of successful requests."""
        return len(self.winners)


def run_contention(
    candidates: Sequence[Terminal],
    n_minislots: int,
    permission: PermissionPolicy,
    rng: np.random.Generator,
) -> ContentionResult:
    """Run slotted contention over ``n_minislots`` request minislots.

    Parameters
    ----------
    candidates:
        Terminals that currently have a request to make.  A terminal stops
        contending for the rest of the frame as soon as its request succeeds
        (it then waits for the allocation announcement).
    n_minislots:
        Number of request minislots in this frame.
    permission:
        The ``p_v`` / ``p_d`` gating policy.
    rng:
        Random generator (used only through ``permission`` draws; kept as an
        explicit argument so callers can reason about stream usage).

    Returns
    -------
    ContentionResult
        Winners in resolution order plus contention statistics.
    """
    if n_minislots < 0:
        raise ValueError("n_minislots must be non-negative")
    remaining = list(candidates)
    # One permission probability per contender, kept aligned with
    # ``remaining`` so each minislot costs a single batched uniform draw
    # (stream-identical to per-candidate ``permission.permits`` calls).
    voice_probability = permission.voice_probability
    data_probability = permission.data_probability
    probabilities = np.array(
        [voice_probability if t.is_voice else data_probability for t in remaining],
        dtype=float,
    )
    result = ContentionResult()
    for _ in range(n_minislots):
        if not remaining:
            result.idle_slots += 1
            continue
        permitted = permission.permits_many(probabilities)
        n_transmitters = int(np.count_nonzero(permitted))
        result.attempts += n_transmitters
        if n_transmitters == 1:
            index = int(np.argmax(permitted))
            result.winners.append(remaining.pop(index))
            probabilities = np.delete(probabilities, index)
        elif n_transmitters == 0:
            result.idle_slots += 1
        else:
            result.collisions += 1
    return result
