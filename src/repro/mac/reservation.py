"""Voice reservation bookkeeping.

Every protocol in the paper grants voice users a *reservation*: once a voice
request has been served, the user keeps receiving a transmission opportunity
every 20 ms voice-packet period — without further contention — until the
current talkspurt ends.  Data users never get reservations.

:class:`ReservationTable` is the base station's view of which voice terminals
currently hold a reservation.  Protocols call :meth:`grant` when they first
serve a voice request, :meth:`release_ended_talkspurts` once per frame, and
:meth:`reserved_terminals` to find the reservation holders that need a slot
in the current frame.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.traffic.terminal import Terminal

__all__ = ["ReservationTable"]


class ReservationTable:
    """Tracks which voice terminals currently hold an uplink reservation."""

    def __init__(self) -> None:
        self._granted_frame: Dict[int, int] = {}
        self._holder_array: Optional[np.ndarray] = None

    def holder_array(self) -> np.ndarray:
        """Current holder ids as a sorted array (cached between changes).

        The columnar fast paths consult the holders every frame while
        grants/releases are rare events, so the array is rebuilt lazily.
        """
        if self._holder_array is None:
            self._holder_array = np.fromiter(
                sorted(self._granted_frame), dtype=np.int64,
                count=len(self._granted_frame),
            )
        return self._holder_array

    # ------------------------------------------------------------------ API
    def __len__(self) -> int:
        return len(self._granted_frame)

    def __contains__(self, terminal_id: int) -> bool:
        return terminal_id in self._granted_frame

    def holders(self) -> List[int]:
        """Terminal ids currently holding a reservation (ascending)."""
        return sorted(self._granted_frame)

    def has(self, terminal_id: int) -> bool:
        """Whether the given terminal holds a reservation."""
        return terminal_id in self._granted_frame

    def grant(self, terminal_id: int, frame_index: int) -> None:
        """Grant a reservation to a voice terminal (idempotent)."""
        if terminal_id < 0:
            raise ValueError("terminal_id must be non-negative")
        if frame_index < 0:
            raise ValueError("frame_index must be non-negative")
        if terminal_id not in self._granted_frame:
            self._granted_frame[terminal_id] = frame_index
            self._holder_array = None

    def release(self, terminal_id: int) -> None:
        """Release a reservation (no-op if not held)."""
        if self._granted_frame.pop(terminal_id, None) is not None:
            self._holder_array = None

    def granted_at(self, terminal_id: int) -> int:
        """Frame at which the reservation was granted."""
        return self._granted_frame[terminal_id]

    def grant_many(self, terminal_ids: Iterable[int], frame_index: int) -> None:
        """Grant reservations to several terminals at once (idempotent)."""
        granted = self._granted_frame
        changed = False
        for terminal_id in terminal_ids:
            terminal_id = int(terminal_id)
            if terminal_id < 0:
                raise ValueError("terminal_id must be non-negative")
            if terminal_id not in granted:
                granted[terminal_id] = frame_index
                changed = True
        if changed:
            self._holder_array = None

    def reserved_ids(self, population) -> np.ndarray:
        """Reservation-holding terminal ids with packets buffered (ascending).

        The id-array twin of :meth:`reserved_terminals` for the array-native
        MAC kernels: reads the population's state arrays directly and never
        touches a per-terminal view.
        """
        if not self._granted_frame:
            return np.zeros(0, dtype=np.int64)
        ids = self.holder_array()
        ids = ids[ids < len(population)]
        return ids[population.is_voice[ids] & (population.occupancy[ids] > 0)]

    def release_ended_talkspurts(self, terminals: Iterable[Terminal]) -> int:
        """Release reservations of voice terminals whose talkspurt has ended.

        A reservation is also released if the terminal has drained its buffer
        and left the talkspurt state — the paper's "until the current
        talkspurt terminates" rule.  Returns the number of reservations
        released.

        On a columnar population (a sequence exposing ``population``) only
        the current holders are inspected, against the state arrays, instead
        of walking every terminal.
        """
        population = getattr(terminals, "population", None)
        if population is not None:
            return self.release_ended_population(population)
        released = 0
        for terminal in terminals:
            if not terminal.is_voice:
                continue
            if terminal.terminal_id not in self._granted_frame:
                continue
            in_talkspurt = getattr(terminal, "in_talkspurt", False)
            if not in_talkspurt and not terminal.has_pending_packets:
                self.release(terminal.terminal_id)
                released += 1
        return released

    def release_ended_population(self, population) -> int:
        """Array-native :meth:`release_ended_talkspurts` over a population.

        Only the current holders are inspected, against the population's
        state arrays, instead of walking every terminal.
        """
        if not self._granted_frame:
            return 0
        ids = self.holder_array()
        ids = ids[ids < len(population)]
        releasable = ids[
            population.is_voice[ids]
            & ~population.in_talkspurt[ids]
            & (population.occupancy[ids] == 0)
        ]
        for terminal_id in releasable:
            self.release(int(terminal_id))
        return int(releasable.shape[0])

    def reserved_terminals(self, terminals: Iterable[Terminal]) -> List[Terminal]:
        """Reservation holders among ``terminals`` that have packets to send.

        Returned in ascending terminal-id order (the object loop's order,
        since populations are laid out by id); the columnar fast path only
        touches the holders instead of the whole population.
        """
        population = getattr(terminals, "population", None)
        if population is not None:
            if not self._granted_frame:
                return []
            ids = self.holder_array()
            ids = ids[ids < len(population)]
            eligible = ids[
                population.is_voice[ids] & (population.occupancy[ids] > 0)
            ]
            return [terminals[terminal_id] for terminal_id in eligible]
        return [
            t
            for t in terminals
            if t.is_voice and t.terminal_id in self._granted_frame and t.has_pending_packets
        ]

    def clear(self) -> None:
        """Drop all reservations (used between independent runs)."""
        self._granted_frame.clear()
        self._holder_array = None
