"""RMAV: reservation-based multiple access with a variable frame (Section 3.2).

In RMAV each frame contains exactly *one* request opportunity — the
"competitive slot" at the end of the frame — and every other slot is an
information slot already assigned to some user.  The frame length therefore
varies with the number of assigned slots; a data user may be granted up to
``P_max`` (10) slots per successful request.  The design gives very short
delays at light load (almost the whole frame carries information) and high
throughput at heavy load, but providing a single contention opportunity per
frame makes it collapse under even a moderate number of simultaneous
contenders — the instability the paper's Fig. 11 shows from roughly ten
voice users onward.

Modelling notes
---------------
Our engine advances in fixed 2.5 ms frames, so we map RMAV's variable frame
onto it by reclaiming the request subframe bandwidth as information capacity
(all but one minislot, converted at the minislot/info-slot exchange rate) and
offering exactly one contention opportunity per frame.  RMAV inherently has
no base-station request queue (there is at most one winner per frame), which
the paper also notes.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.channel.manager import ChannelSnapshot
from repro.mac.base import MACProtocol, traced_batch
from repro.mac.contention import run_contention, run_contention_ids
from repro.mac.frames import FrameStructure
from repro.mac.requests import Acknowledgement, FrameOutcome
from repro.traffic.terminal import Terminal

__all__ = ["RMAVProtocol"]


class RMAVProtocol(MACProtocol):
    """Variable-frame reservation protocol with a single competitive slot."""

    name = "rmav"
    display_name = "RMAV"
    uses_adaptive_phy = False
    uses_csi_scheduling = False
    supports_request_queue = False
    #: A frame draws randomness only through the single competitive slot's
    #: permission draws, so the macro engine can execute whole blocks inline
    #: — including RMAV's long winnerless stretches under overload, which
    #: resolve as one pre-drawn contention matrix per block.
    supports_macro_lookahead = True


    # ------------------------------------------------------------ interface
    def _build_frame_structure(self) -> FrameStructure:
        # The bandwidth reclaimed from the request subframe is assumed to be
        # consumed by RMAV's variable-frame signalling (per-frame length
        # announcements), leaving the same information-slot budget as the
        # other protocols — the comparison then isolates the access policy.
        return FrameStructure(
            name=self.display_name,
            request_minislots=1,
            info_slots=self.params.n_info_slots,
            dynamic=True,
            minislots_per_info_slot=self.params.drma_minislots_per_info_slot,
        )

    def run_frame(
        self,
        frame_index: int,
        terminals: Sequence[Terminal],
        snapshot: ChannelSnapshot,
    ) -> FrameOutcome:
        self.release_finished_reservations(terminals)
        outcome = FrameOutcome(frame_index)
        slots_left = self.frame_structure.info_slots

        used = self.allocate_reserved_voice(
            terminals, snapshot, slots_left, outcome.allocations
        )
        slots_left -= used

        # The single competitive slot: at most one winner per frame, however
        # many users are waiting — the bottleneck that makes RMAV thrash as
        # soon as a moderate number of users contend simultaneously (the
        # instability the paper's Fig. 11 shows).
        candidates = self.contention_candidates(terminals)
        contention = run_contention(candidates, 1, self.permission, self.rng)
        outcome.contention_attempts = contention.attempts
        outcome.contention_collisions = contention.collisions
        outcome.idle_request_slots = contention.idle_slots

        if contention.winners:
            winner = contention.winners[0]
            outcome.acknowledgements.append(
                Acknowledgement(winner.terminal_id, 0, frame_index)
            )
            if slots_left >= 1 and winner.has_pending_packets:
                amplitude = snapshot.amplitude_of(winner.terminal_id)
                if winner.is_voice:
                    outcome.allocations.append(
                        self.build_allocation(winner, amplitude, 1)
                    )
                    slots_left -= 1
                    self.reservations.grant(winner.terminal_id, frame_index)
                else:
                    n_slots = min(
                        self.params.rmav_pmax,
                        self.slots_needed_for_data(winner, amplitude, slots_left),
                    )
                    outcome.allocations.append(
                        self.build_allocation(winner, amplitude, n_slots)
                    )
                    slots_left -= n_slots

        outcome.queued_requests = 0
        return outcome

    def macro_minislots(self) -> int:
        """One competitive slot per frame (see :meth:`run_frame`)."""
        return 1

    def macro_data_slot_cap(self) -> int:
        """Data winners are capped at ``P_max`` slots per request."""
        return self.params.rmav_pmax

    @traced_batch
    def run_frame_batch(
        self,
        frame_index: int,
        population,
        snapshot: ChannelSnapshot,
    ) -> FrameOutcome:
        """Array-native frame: reservation ids, one contention draw, one grant."""
        self.reservations.release_ended_population(population)
        outcome = FrameOutcome(frame_index)
        grants = outcome.use_grant_columns()
        slots_left = self.frame_structure.info_slots

        served = self.allocate_reserved_voice_batch(
            population, snapshot, slots_left, grants
        )
        slots_left -= served.shape[0]

        ids, probabilities = self.contention_candidate_ids(population)
        contention = run_contention_ids(
            ids, probabilities, 1, self.contention_rng, fast=self.rng_fast
        )
        outcome.contention_attempts = contention.attempts
        outcome.contention_collisions = contention.collisions
        outcome.idle_request_slots = contention.idle_slots

        if contention.winner_ids:
            winner = contention.winner_ids[0]
            outcome.acknowledgements.append(
                Acknowledgement(winner, 0, frame_index)
            )
            occupancy = int(population.occupancy[winner])
            if slots_left >= 1 and occupancy > 0:
                per_slot, throughput = self.slot_capacity(
                    float(snapshot.amplitude[winner])
                )
                if population.is_voice[winner]:
                    grants.append(winner, 1, per_slot, throughput)
                    slots_left -= 1
                    self.reservations.grant(winner, frame_index)
                else:
                    needed = math.ceil(occupancy / max(1, per_slot))
                    n_slots = min(
                        self.params.rmav_pmax,
                        max(1, min(slots_left, needed)),
                    )
                    grants.append(
                        winner, n_slots, per_slot * n_slots, throughput
                    )
                    slots_left -= n_slots

        outcome.queued_requests = 0
        return outcome
