"""DRMA: Dynamic Reservation Multiple Access (Section 3.3).

DRMA has no dedicated request subframe at all: the frame consists of ``N_k``
information slots only.  Before each information slot the base station
announces whether the slot is already assigned; an *unassigned* slot is
converted on the fly into ``N_x`` request minislots in which active users
contend.  A successful request is granted an information slot (if one
remains) in the current frame; voice users keep their slot as a reservation,
data users must request again for further packets.

Because users can only contend when idle slots exist, the request load
self-throttles: at saturation there are no idle slots, hence no contention
and no collision cascade — DRMA degrades gracefully at high load, at the
price of announcement overhead and of "distributed queueing" (requests wait
at the users when the frame is full), which is also why adding a
base-station request queue helps it very little (Section 5.1).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence

import numpy as np

from repro.channel.manager import ChannelSnapshot
from repro.mac.base import MACProtocol, terminal_lookup, traced_batch
from repro.mac.contention import run_contention, run_contention_ids
from repro.mac.frames import FrameStructure
from repro.mac.requests import Acknowledgement, FrameOutcome, Request
from repro.traffic.terminal import Terminal

__all__ = ["DRMAProtocol"]


class DRMAProtocol(MACProtocol):
    """Dynamic frame: idle information slots become request minislots."""

    name = "drma"
    display_name = "DRMA"
    uses_adaptive_phy = False
    uses_csi_scheduling = False
    supports_request_queue = True
    #: Quiet frames (no contenders, empty queue) reduce to serving the
    #: reservation holders and idling the converted minislots of every
    #: unassigned slot — no draws — so the macro engine runs them inline.
    #: Contended frames run through the runner's inline slot loop: each
    #: converted slot's minislot draws come from the contention pool
    #: (bit-identical per-minislot prefixes with exact roll-back), and
    #: winners re-enter the same frame's pending pool just like the
    #: per-frame kernel's cursor loop.
    supports_macro_lookahead = True
    macro_contention_style = "slot_loop"

    def macro_quiet_idle_slots(self, n_served: int) -> int:
        """Unassigned slots convert to ``N_x`` idle request minislots each."""
        return (
            self.frame_structure.info_slots - n_served
        ) * self.params.drma_minislots_per_info_slot

    # ------------------------------------------------------------ interface
    def _build_frame_structure(self) -> FrameStructure:
        # DRMA has no dedicated request subframe, but the per-slot assignment
        # announcements on the downlink consume roughly the bandwidth the
        # request subframe would have; the information-slot budget therefore
        # stays the same as the other protocols' and the comparison isolates
        # the access policy (the paper likewise stresses DRMA's announcement
        # overhead as the price of its dynamic structure).
        return FrameStructure(
            name=self.display_name,
            request_minislots=0,
            info_slots=self.params.n_info_slots,
            dynamic=True,
            minislots_per_info_slot=self.params.drma_minislots_per_info_slot,
        )

    def run_frame(
        self,
        frame_index: int,
        terminals: Sequence[Terminal],
        snapshot: ChannelSnapshot,
    ) -> FrameOutcome:
        self.release_finished_reservations(terminals)
        self.prune_queue(frame_index, terminals)
        by_id = terminal_lookup(terminals)
        outcome = FrameOutcome(frame_index)

        # Service order within the frame: reservation holders, then requests
        # queued at the base station (if enabled), then requests that succeed
        # in converted slots later in this same frame.
        to_serve: Deque[Request] = deque()
        for terminal in self.reservations.reserved_terminals(terminals):
            to_serve.append(
                self.make_request(terminal, frame_index, is_reservation=True)
            )
        if self.request_queue is not None:
            to_serve.extend(self.request_queue.pop_all())

        served_ids = {r.terminal_id for r in to_serve}
        remaining_candidates = [
            t for t in self.contention_candidates(terminals)
            if t.terminal_id not in served_ids
        ]

        request_slot_counter = 0
        for _ in range(self.frame_structure.info_slots):
            request = self._next_serviceable(to_serve, by_id)
            if request is not None:
                terminal = by_id[request.terminal_id]
                amplitude = snapshot.amplitude_of(terminal.terminal_id)
                outcome.allocations.append(
                    self.build_allocation(terminal, amplitude, 1)
                )
                if terminal.is_voice and not request.is_reservation:
                    self.reservations.grant(terminal.terminal_id, frame_index)
                continue

            # Idle information slot: convert it into N_x request minislots.
            contention = run_contention(
                remaining_candidates,
                self.params.drma_minislots_per_info_slot,
                self.permission,
                self.rng,
            )
            outcome.contention_attempts += contention.attempts
            outcome.contention_collisions += contention.collisions
            outcome.idle_request_slots += contention.idle_slots
            for winner in contention.winners:
                outcome.acknowledgements.append(
                    Acknowledgement(winner.terminal_id, request_slot_counter, frame_index)
                )
                request_slot_counter += 1
                to_serve.append(self.make_request(winner, frame_index))
                # A voice winner is about to obtain a reservation and stops
                # contending; a data winner only gets a single slot per
                # request, so if it has more packets than that it keeps
                # contending in later converted slots of the same frame.
                if winner.is_voice or winner.buffer_occupancy <= 1:
                    remaining_candidates.remove(winner)

        # Requests that succeeded too late in the frame to get a slot.
        leftovers = [r for r in to_serve if not r.is_reservation]
        self.queue_unserved(leftovers)
        outcome.queued_requests = self.queued_count()
        return outcome

    @traced_batch
    def run_frame_batch(
        self,
        frame_index: int,
        population,
        snapshot: ChannelSnapshot,
    ) -> FrameOutcome:
        """Array-native frame: cursor-driven service, id-array contention.

        The pending pool (reservation holders, backlog, same-frame winners)
        lives in three parallel Python lists advanced by an integer cursor —
        the index-array replacement for the deque of ``Request`` objects.
        Each entry is visited at most once per frame (the cursor never moves
        backwards), so service stays O(pending) even with hundreds of
        backlogged data requests, and entries the frame never reaches remain
        beyond the cursor exactly like unpopped deque entries — they are the
        leftovers the queue-enabled variant stores.
        """
        self.reservations.release_ended_population(population)
        self.prune_queue_batch(frame_index, population)
        outcome = FrameOutcome(frame_index)
        grants = outcome.use_grant_columns()

        # Pending pool: reservation holders first, then the queued backlog.
        reserved = self.reservations.reserved_ids(population)
        pending_ids: List[int] = reserved.tolist()
        pending_is_reservation: List[bool] = [True] * len(pending_ids)
        # Backlog rows keep their Request object so re-queueing a leftover
        # preserves its arrival frame; winner rows synthesise one on demand.
        pending_requests: List[Optional[Request]] = [None] * len(pending_ids)
        if self.request_queue is not None:
            for request in self.request_queue.pop_all():
                pending_ids.append(request.terminal_id)
                pending_is_reservation.append(False)
                pending_requests.append(request)

        candidate_array, probability_array = self.contention_candidate_ids(
            population
        )
        candidate_ids = candidate_array.tolist()
        candidate_probabilities = probability_array.tolist()
        if pending_ids:
            already_served = set(pending_ids)
            kept = [
                (tid, probability)
                for tid, probability in zip(candidate_ids, candidate_probabilities)
                if tid not in already_served
            ]
            candidate_ids = [tid for tid, _ in kept]
            candidate_probabilities = [probability for _, probability in kept]

        # Whole-population scalar state as plain Python lists: the per-slot
        # loop below reads them one entry at a time, where list indexing
        # beats NumPy scalar extraction severalfold.
        occupancy_list = population.occupancy.tolist()
        voice_list = population.is_voice.tolist()
        n = len(population)
        adaptive = self.modem.is_adaptive
        amplitude = snapshot.amplitude if adaptive else None
        minislots = self.params.drma_minislots_per_info_slot
        acknowledgements = outcome.acknowledgements
        append_grant = grants.append
        cursor = 0
        request_slot_counter = 0

        for _ in range(self.frame_structure.info_slots):
            # Serve the next pending entry whose terminal still has packets
            # (buffer states are frozen during the frame, so a skipped entry
            # can never become serviceable again — the cursor drops it).
            served_id = -1
            while cursor < len(pending_ids):
                tid = pending_ids[cursor]
                is_reservation = pending_is_reservation[cursor]
                cursor += 1
                if 0 <= tid < n and occupancy_list[tid] > 0:
                    served_id = tid
                    break
            if served_id >= 0:
                if adaptive:
                    per_slot, throughput = self.slot_capacity(
                        float(amplitude[served_id])
                    )
                else:
                    per_slot, throughput = 1, None
                append_grant(served_id, 1, per_slot, throughput)
                if voice_list[served_id] and not is_reservation:
                    self.reservations.grant(served_id, frame_index)
                continue

            # Idle information slot: convert it into N_x request minislots.
            contention = run_contention_ids(
                candidate_ids,
                candidate_probabilities,
                minislots,
                self.contention_rng,
                fast=self.rng_fast,
            )
            outcome.contention_attempts += contention.attempts
            outcome.contention_collisions += contention.collisions
            outcome.idle_request_slots += contention.idle_slots
            if not contention.winner_ids:
                continue
            dropped: List[int] = []
            for winner in contention.winner_ids:
                acknowledgements.append(
                    Acknowledgement(winner, request_slot_counter, frame_index)
                )
                request_slot_counter += 1
                pending_ids.append(winner)
                pending_is_reservation.append(False)
                pending_requests.append(None)
                # A voice winner is about to obtain a reservation and stops
                # contending; a data winner only gets a single slot per
                # request, so if it has more packets than that it keeps
                # contending in later converted slots of the same frame.
                if voice_list[winner] or occupancy_list[winner] <= 1:
                    dropped.append(winner)
            if dropped:
                drop = set(dropped)
                kept = [
                    (tid, probability)
                    for tid, probability in zip(
                        candidate_ids, candidate_probabilities
                    )
                    if tid not in drop
                ]
                candidate_ids = [tid for tid, _ in kept]
                candidate_probabilities = [probability for _, probability in kept]

        # Requests that succeeded too late in the frame to get a slot.
        if self.request_queue is not None:
            leftovers = [
                pending_requests[index]
                if pending_requests[index] is not None
                else self.make_request_for_id(
                    population, pending_ids[index], frame_index
                )
                for index in range(cursor, len(pending_ids))
                if not pending_is_reservation[index]
            ]
            self.queue_unserved(leftovers)
        outcome.queued_requests = self.queued_count()
        return outcome

    # ------------------------------------------------------------ internals
    def _next_serviceable(self, to_serve: Deque[Request], by_id) -> Request | None:
        """Pop the next pending request whose terminal still has packets."""
        while to_serve:
            request = to_serve.popleft()
            terminal = by_id.get(request.terminal_id)
            if terminal is not None and terminal.has_pending_packets:
                return request
        return None
