"""DRMA: Dynamic Reservation Multiple Access (Section 3.3).

DRMA has no dedicated request subframe at all: the frame consists of ``N_k``
information slots only.  Before each information slot the base station
announces whether the slot is already assigned; an *unassigned* slot is
converted on the fly into ``N_x`` request minislots in which active users
contend.  A successful request is granted an information slot (if one
remains) in the current frame; voice users keep their slot as a reservation,
data users must request again for further packets.

Because users can only contend when idle slots exist, the request load
self-throttles: at saturation there are no idle slots, hence no contention
and no collision cascade — DRMA degrades gracefully at high load, at the
price of announcement overhead and of "distributed queueing" (requests wait
at the users when the frame is full), which is also why adding a
base-station request queue helps it very little (Section 5.1).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Sequence

from repro.channel.manager import ChannelSnapshot
from repro.mac.base import MACProtocol, terminal_lookup
from repro.mac.contention import run_contention
from repro.mac.frames import FrameStructure
from repro.mac.requests import Acknowledgement, FrameOutcome, Request
from repro.traffic.terminal import Terminal

__all__ = ["DRMAProtocol"]


class DRMAProtocol(MACProtocol):
    """Dynamic frame: idle information slots become request minislots."""

    name = "drma"
    display_name = "DRMA"
    uses_adaptive_phy = False
    uses_csi_scheduling = False
    supports_request_queue = True

    # ------------------------------------------------------------ interface
    def _build_frame_structure(self) -> FrameStructure:
        # DRMA has no dedicated request subframe, but the per-slot assignment
        # announcements on the downlink consume roughly the bandwidth the
        # request subframe would have; the information-slot budget therefore
        # stays the same as the other protocols' and the comparison isolates
        # the access policy (the paper likewise stresses DRMA's announcement
        # overhead as the price of its dynamic structure).
        return FrameStructure(
            name=self.display_name,
            request_minislots=0,
            info_slots=self.params.n_info_slots,
            dynamic=True,
            minislots_per_info_slot=self.params.drma_minislots_per_info_slot,
        )

    def run_frame(
        self,
        frame_index: int,
        terminals: Sequence[Terminal],
        snapshot: ChannelSnapshot,
    ) -> FrameOutcome:
        self.release_finished_reservations(terminals)
        self.prune_queue(frame_index, terminals)
        by_id = terminal_lookup(terminals)
        outcome = FrameOutcome(frame_index)

        # Service order within the frame: reservation holders, then requests
        # queued at the base station (if enabled), then requests that succeed
        # in converted slots later in this same frame.
        to_serve: Deque[Request] = deque()
        for terminal in self.reservations.reserved_terminals(terminals):
            to_serve.append(
                self.make_request(terminal, frame_index, is_reservation=True)
            )
        if self.request_queue is not None:
            to_serve.extend(self.request_queue.pop_all())

        served_ids = {r.terminal_id for r in to_serve}
        remaining_candidates = [
            t for t in self.contention_candidates(terminals)
            if t.terminal_id not in served_ids
        ]

        request_slot_counter = 0
        for _ in range(self.frame_structure.info_slots):
            request = self._next_serviceable(to_serve, by_id)
            if request is not None:
                terminal = by_id[request.terminal_id]
                amplitude = snapshot.amplitude_of(terminal.terminal_id)
                outcome.allocations.append(
                    self.build_allocation(terminal, amplitude, 1)
                )
                if terminal.is_voice and not request.is_reservation:
                    self.reservations.grant(terminal.terminal_id, frame_index)
                continue

            # Idle information slot: convert it into N_x request minislots.
            contention = run_contention(
                remaining_candidates,
                self.params.drma_minislots_per_info_slot,
                self.permission,
                self.rng,
            )
            outcome.contention_attempts += contention.attempts
            outcome.contention_collisions += contention.collisions
            outcome.idle_request_slots += contention.idle_slots
            for winner in contention.winners:
                outcome.acknowledgements.append(
                    Acknowledgement(winner.terminal_id, request_slot_counter, frame_index)
                )
                request_slot_counter += 1
                to_serve.append(self.make_request(winner, frame_index))
                # A voice winner is about to obtain a reservation and stops
                # contending; a data winner only gets a single slot per
                # request, so if it has more packets than that it keeps
                # contending in later converted slots of the same frame.
                if winner.is_voice or winner.buffer_occupancy <= 1:
                    remaining_candidates.remove(winner)

        # Requests that succeeded too late in the frame to get a slot.
        leftovers = [r for r in to_serve if not r.is_reservation]
        self.queue_unserved(leftovers)
        outcome.queued_requests = self.queued_count()
        return outcome

    # ------------------------------------------------------------ internals
    def _next_serviceable(self, to_serve: Deque[Request], by_id) -> Request | None:
        """Pop the next pending request whose terminal still has packets."""
        while to_serve:
            request = to_serve.popleft()
            terminal = by_id.get(request.terminal_id)
            if terminal is not None and terminal.has_pending_packets:
                return request
        return None
