"""Performance metrics of the uplink access protocols.

The paper evaluates every protocol on three metrics (Section 5):

* **voice packet loss rate** ``P_loss`` (equation (3)): the fraction of voice
  packets that never arrive intact at the base station, combining packets
  *dropped* at the mobile device because their 20 ms deadline expired and
  packets *corrupted* by transmission errors;
* **data throughput**: the average number of data packets successfully
  received at the base station per TDMA frame;
* **data delay**: the average time a data packet waits in the device buffer
  until the beginning of its successful transmission.

:class:`~repro.metrics.collector.MetricsCollector` accumulates these (plus
contention/allocation statistics) during a run;
:mod:`repro.metrics.stats` provides the batch statistics used to attach
confidence intervals to sweep results.
"""

from repro.metrics.collector import MacStats, MetricsCollector
from repro.metrics.data import DataMetrics
from repro.metrics.energy import EnergyModel, EnergyReport
from repro.metrics.stats import RunningStatistics, batch_means_confidence_interval
from repro.metrics.voice import VoiceMetrics

__all__ = [
    "DataMetrics",
    "EnergyModel",
    "EnergyReport",
    "MacStats",
    "MetricsCollector",
    "RunningStatistics",
    "VoiceMetrics",
    "batch_means_confidence_interval",
]
