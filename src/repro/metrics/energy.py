"""Transmit-energy accounting (the paper's motivating observation 2).

The introduction of the paper motivates channel-adaptive allocation not only
by throughput but by energy: "when channel state is bad ... much of the
mobile device's energy is wasted" on transmissions that the channel destroys
or on heavy redundancy.  The simulation does not model battery chemistry, but
every energy-relevant event is already counted — request transmissions
(each costs one minislot of transmit energy), information-packet
transmissions, and the subset of those that were wasted because the packet
arrived corrupted (voice errors and data retransmissions).

:class:`EnergyModel` turns those counters into a simple linear energy figure
so protocols can be compared on *useful packets delivered per unit of
transmit energy*, the quantity a battery-powered nomadic device ultimately
cares about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.results import SimulationResult

__all__ = ["EnergyModel", "EnergyReport"]


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting of one simulation run (arbitrary energy units).

    Attributes
    ----------
    request_energy:
        Energy spent transmitting request/auction minislots.
    packet_energy:
        Energy spent transmitting information packets (successful or not).
    wasted_packet_energy:
        The part of ``packet_energy`` spent on packets that were corrupted by
        the channel (voice errors and data retransmissions).
    useful_packets:
        Packets delivered error-free (voice + data).
    """

    request_energy: float
    packet_energy: float
    wasted_packet_energy: float
    useful_packets: int

    @property
    def total_energy(self) -> float:
        """Total transmit energy spent."""
        return self.request_energy + self.packet_energy

    @property
    def wasted_fraction(self) -> float:
        """Fraction of the total energy spent on transmissions that failed."""
        if self.total_energy == 0:
            return 0.0
        return self.wasted_packet_energy / self.total_energy

    @property
    def energy_per_useful_packet(self) -> float:
        """Transmit energy per delivered packet (lower is better)."""
        if self.useful_packets == 0:
            return float("inf") if self.total_energy > 0 else 0.0
        return self.total_energy / self.useful_packets


class EnergyModel:
    """Linear transmit-energy model on top of a finished simulation run.

    Parameters
    ----------
    packet_energy_unit:
        Energy of transmitting one information packet (the reference unit).
    request_energy_unit:
        Energy of transmitting one request minislot, as a fraction of a
        packet transmission (requests are much shorter than packets).
    """

    def __init__(
        self,
        packet_energy_unit: float = 1.0,
        request_energy_unit: float = 0.1,
    ) -> None:
        if packet_energy_unit <= 0:
            raise ValueError("packet_energy_unit must be positive")
        if request_energy_unit < 0:
            raise ValueError("request_energy_unit must be non-negative")
        self._packet_unit = float(packet_energy_unit)
        self._request_unit = float(request_energy_unit)

    @property
    def packet_energy_unit(self) -> float:
        """Energy of one information-packet transmission."""
        return self._packet_unit

    @property
    def request_energy_unit(self) -> float:
        """Energy of one request transmission."""
        return self._request_unit

    def report(self, result: SimulationResult) -> EnergyReport:
        """Energy accounting for one simulation result."""
        voice = result.voice
        data = result.data
        mac = result.mac
        transmitted_packets = (
            voice.delivered + voice.errored + data.delivered + data.retransmissions
        )
        wasted_packets = voice.errored + data.retransmissions
        return EnergyReport(
            request_energy=mac.contention_attempts * self._request_unit,
            packet_energy=transmitted_packets * self._packet_unit,
            wasted_packet_energy=wasted_packets * self._packet_unit,
            useful_packets=voice.delivered + data.delivered,
        )

    def energy_per_useful_packet(self, result: SimulationResult) -> float:
        """Convenience accessor for the headline efficiency figure."""
        return self.report(result).energy_per_useful_packet
