"""Data service metrics: throughput and access delay."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.traffic.terminal import Terminal

__all__ = ["DataMetrics"]


@dataclass(frozen=True)
class DataMetrics:
    """Aggregated data-traffic counters of one simulation run.

    Attributes
    ----------
    generated:
        Data packets produced by all bursts during the measured period.
    delivered:
        Data packets successfully received at the base station.
    retransmissions:
        Transmission attempts wasted on packets corrupted by the channel.
    delay_frames:
        Access delay (in frames) of every delivered packet.
    n_frames:
        Number of measured frames (the denominator of the throughput).
    frame_duration_s:
        Frame duration used to express delays in seconds.
    """

    generated: int
    delivered: int
    retransmissions: int
    delay_frames: List[int]
    n_frames: int
    frame_duration_s: float

    def __post_init__(self) -> None:
        for name in ("generated", "delivered", "retransmissions", "n_frames"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.frame_duration_s <= 0:
            raise ValueError("frame_duration_s must be positive")

    @property
    def throughput_packets_per_frame(self) -> float:
        """The paper's data throughput: delivered packets per TDMA frame."""
        if self.n_frames == 0:
            return 0.0
        return self.delivered / self.n_frames

    @property
    def throughput_packets_per_second(self) -> float:
        """Delivered data packets per second."""
        return self.throughput_packets_per_frame / self.frame_duration_s

    @property
    def mean_delay_frames(self) -> float:
        """Mean access delay of delivered packets, in frames."""
        if not self.delay_frames:
            return 0.0
        return float(np.mean(self.delay_frames))

    @property
    def mean_delay_s(self) -> float:
        """The paper's data delay metric, in seconds."""
        return self.mean_delay_frames * self.frame_duration_s

    @property
    def p95_delay_s(self) -> float:
        """95th-percentile access delay, in seconds."""
        if not self.delay_frames:
            return 0.0
        return float(np.percentile(self.delay_frames, 95)) * self.frame_duration_s

    @property
    def delivery_ratio(self) -> float:
        """Fraction of generated data packets delivered within the run."""
        if self.generated == 0:
            return 0.0
        return self.delivered / self.generated

    def meets_qos(self, max_delay_s: float, min_throughput_per_user: float,
                  n_users: int) -> bool:
        """Whether the run satisfies the (delay, per-user throughput) QoS pair."""
        if n_users <= 0:
            return True
        per_user = self.throughput_packets_per_frame / n_users
        return self.mean_delay_s <= max_delay_s and per_user >= min_throughput_per_user

    @classmethod
    def combine(cls, parts: Iterable["DataMetrics"]) -> "DataMetrics":
        """Merge per-beam metrics measured over the *same* frame window.

        Counters sum and delay samples concatenate; ``n_frames`` stays the
        shared window length (beams run concurrently, not back to back),
        so the merged throughput is the constellation-aggregate packets
        per frame.  Raises if the windows disagree.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("combine requires at least one DataMetrics")
        first = parts[0]
        generated = delivered = retransmissions = 0
        delays: List[int] = []
        for part in parts:
            if part.n_frames != first.n_frames:
                raise ValueError(
                    "cannot combine DataMetrics over different frame windows: "
                    f"{part.n_frames} != {first.n_frames}"
                )
            if part.frame_duration_s != first.frame_duration_s:
                raise ValueError("cannot combine DataMetrics across frame durations")
            generated += part.generated
            delivered += part.delivered
            retransmissions += part.retransmissions
            delays.extend(part.delay_frames)
        return cls(
            generated=generated,
            delivered=delivered,
            retransmissions=retransmissions,
            delay_frames=delays,
            n_frames=first.n_frames,
            frame_duration_s=first.frame_duration_s,
        )

    @classmethod
    def from_population(
        cls,
        population,
        n_frames: int,
        frame_duration_s: float,
    ) -> "DataMetrics":
        """Aggregate a columnar :class:`TerminalPopulation`'s data arrays."""
        return cls(
            generated=int(population.data_generated.sum()),
            delivered=int(population.data_delivered.sum()),
            retransmissions=int(population.data_retransmissions.sum()),
            delay_frames=population.all_data_delays(),
            n_frames=n_frames,
            frame_duration_s=frame_duration_s,
        )

    @classmethod
    def from_terminals(
        cls,
        terminals: Iterable[Terminal],
        n_frames: int,
        frame_duration_s: float,
    ) -> "DataMetrics":
        """Aggregate the per-terminal statistics of a finished run."""
        generated = delivered = retransmissions = 0
        delays: List[int] = []
        for terminal in terminals:
            if not terminal.is_data:
                continue
            stats = terminal.stats
            generated += stats.data_generated
            delivered += stats.data_delivered
            retransmissions += stats.data_retransmissions
            delays.extend(stats.data_delay_frames)
        return cls(
            generated=generated,
            delivered=delivered,
            retransmissions=retransmissions,
            delay_frames=delays,
            n_frames=n_frames,
            frame_duration_s=frame_duration_s,
        )
