"""Simulation output statistics.

Single long runs of a steady-state simulation produce correlated per-frame
observations; the classic remedy used here is the *method of batch means*: a
run is divided into equal batches, the batch averages are treated as
approximately independent samples, and a Student-t confidence interval is
attached to their mean.  :class:`RunningStatistics` provides the usual
single-pass (Welford) mean/variance accumulator used by the collectors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

__all__ = ["RunningStatistics", "batch_means_confidence_interval"]


class RunningStatistics:
    """Numerically stable single-pass mean / variance accumulator (Welford)."""

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def update(self, value: float) -> None:
        """Fold one observation into the running statistics."""
        value = float(value)
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def update_many(self, values: Sequence[float]) -> None:
        """Fold a batch of observations into the running statistics."""
        for value in values:
            self.update(value)

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._n

    @property
    def mean(self) -> float:
        """Sample mean (0 when empty)."""
        return self._mean if self._n else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 when fewer than two observations)."""
        if self._n < 2:
            return 0.0
        return self._m2 / (self._n - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest observation (``inf`` when empty)."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observation (``-inf`` when empty)."""
        return self._max


def batch_means_confidence_interval(
    observations: Sequence[float],
    n_batches: int = 10,
    confidence: float = 0.95,
) -> Tuple[float, float]:
    """Mean and half-width of a batch-means confidence interval.

    Parameters
    ----------
    observations:
        Per-frame (or per-sample) observations of one long run, in order.
    n_batches:
        Number of equal-size batches; a leftover tail shorter than a batch is
        discarded.
    confidence:
        Confidence level of the Student-t interval.

    Returns
    -------
    (mean, half_width):
        The grand mean of the batch means and the half-width of its
        confidence interval (0 when fewer than two batches are available).
    """
    if n_batches < 1:
        raise ValueError("n_batches must be at least 1")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    values = np.asarray(list(observations), dtype=float)
    if values.size == 0:
        return 0.0, 0.0
    batch_size = values.size // n_batches
    if batch_size == 0:
        return float(values.mean()), 0.0
    usable = values[: batch_size * n_batches].reshape(n_batches, batch_size)
    batch_means = usable.mean(axis=1)
    grand_mean = float(batch_means.mean())
    if n_batches < 2:
        return grand_mean, 0.0
    sem = float(batch_means.std(ddof=1) / math.sqrt(n_batches))
    t_value = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n_batches - 1))
    return grand_mean, t_value * sem
