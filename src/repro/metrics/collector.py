"""Per-run metrics collection.

:class:`MetricsCollector` is owned by the simulation engine.  It accumulates
per-frame observations (delivered data packets, slot usage, contention
outcomes) during the measured portion of a run and, at the end, aggregates
the per-terminal counters into the :class:`~repro.metrics.voice.VoiceMetrics`
and :class:`~repro.metrics.data.DataMetrics` the experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.config import SimulationParameters
from repro.mac.requests import FrameOutcome
from repro.metrics.data import DataMetrics
from repro.metrics.voice import VoiceMetrics
from repro.traffic.population import TerminalPopulation

__all__ = ["MacStats", "MetricsCollector"]


@dataclass(frozen=True)
class MacStats:
    """Aggregate MAC-layer statistics of one run.

    Attributes
    ----------
    n_frames:
        Number of measured frames.
    contention_attempts:
        Total request transmissions (each costs the sender energy).
    contention_collisions:
        Request minislots wasted by collisions.
    idle_request_slots:
        Request minislots in which nobody transmitted.
    allocated_slots:
        Information slots granted over the run.
    info_slots_per_frame:
        Information slots available per frame (for utilisation figures).
    mean_queue_length:
        Average base-station request-queue occupancy (0 without a queue).
    """

    n_frames: int
    contention_attempts: int
    contention_collisions: int
    idle_request_slots: int
    allocated_slots: int
    info_slots_per_frame: int
    mean_queue_length: float

    @property
    def slot_utilisation(self) -> float:
        """Fraction of available information slots actually granted."""
        total = self.n_frames * self.info_slots_per_frame
        if total == 0:
            return 0.0
        return self.allocated_slots / total

    @property
    def collision_rate(self) -> float:
        """Collisions per measured frame."""
        if self.n_frames == 0:
            return 0.0
        return self.contention_collisions / self.n_frames

    @classmethod
    def combine(cls, parts) -> "MacStats":
        """Merge per-beam stats measured over the *same* frame window.

        Slot counters sum — ``info_slots_per_frame`` included, because N
        beams really do offer N times the information slots per frame —
        while ``n_frames`` stays the shared window length, so
        ``slot_utilisation`` remains a true constellation-wide fraction.
        ``mean_queue_length`` sums too: it is the expected number of queued
        requests across all base stations at any instant.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("combine requires at least one MacStats")
        first = parts[0]
        for part in parts:
            if part.n_frames != first.n_frames:
                raise ValueError(
                    "cannot combine MacStats over different frame windows: "
                    f"{part.n_frames} != {first.n_frames}"
                )
        return cls(
            n_frames=first.n_frames,
            contention_attempts=sum(p.contention_attempts for p in parts),
            contention_collisions=sum(p.contention_collisions for p in parts),
            idle_request_slots=sum(p.idle_request_slots for p in parts),
            allocated_slots=sum(p.allocated_slots for p in parts),
            info_slots_per_frame=sum(p.info_slots_per_frame for p in parts),
            mean_queue_length=float(sum(p.mean_queue_length for p in parts)),
        )


class MetricsCollector:
    """Accumulates per-frame observations and produces the run's metrics."""

    def __init__(self, params: SimulationParameters, info_slots_per_frame: int) -> None:
        self._params = params
        self._info_slots_per_frame = int(info_slots_per_frame)
        self.reset()

    def reset(self) -> None:
        """Forget everything collected so far (used at the end of warm-up)."""
        self._n_frames = 0
        self._attempts = 0
        self._collisions = 0
        self._idle_slots = 0
        self._allocated_slots = 0
        self._queue_length_total = 0
        self._data_delivered_per_frame: List[int] = []
        self._voice_loss_events_per_frame: List[int] = []

    # ------------------------------------------------------------------ API
    @property
    def n_frames(self) -> int:
        """Number of frames recorded since the last reset."""
        return self._n_frames

    @property
    def data_delivered_per_frame(self) -> List[int]:
        """Per-frame delivered data packets (for batch-means statistics)."""
        return list(self._data_delivered_per_frame)

    @property
    def voice_loss_events_per_frame(self) -> List[int]:
        """Per-frame voice losses, dropping plus errors (for statistics)."""
        return list(self._voice_loss_events_per_frame)

    def record_frame(
        self,
        outcome: FrameOutcome,
        data_delivered: int,
        voice_losses: int,
    ) -> None:
        """Record one measured frame."""
        if data_delivered < 0 or voice_losses < 0:
            raise ValueError("per-frame counters must be non-negative")
        self._n_frames += 1
        self._attempts += outcome.contention_attempts
        self._collisions += outcome.contention_collisions
        self._idle_slots += outcome.idle_request_slots
        self._allocated_slots += outcome.n_allocated_slots
        self._queue_length_total += outcome.queued_requests
        self._data_delivered_per_frame.append(int(data_delivered))
        self._voice_loss_events_per_frame.append(int(voice_losses))

    def record_block(self, frame_records) -> None:
        """Record many frames in one call (macro-stepped engine).

        ``frame_records`` is a sequence of 7-item records, one per frame in
        order: ``[contention_attempts, contention_collisions,
        idle_request_slots, allocated_slots, queued_requests,
        data_delivered, voice_losses]``.  Equivalent to calling
        :meth:`record_frame` per frame with a matching outcome; consolidated
        so the macro engine crosses the collector boundary once per block.
        """
        data_per_frame = self._data_delivered_per_frame
        loss_per_frame = self._voice_loss_events_per_frame
        for record in frame_records:
            if record[5] < 0 or record[6] < 0:
                raise ValueError("per-frame counters must be non-negative")
            self._n_frames += 1
            self._attempts += record[0]
            self._collisions += record[1]
            self._idle_slots += record[2]
            self._allocated_slots += record[3]
            self._queue_length_total += record[4]
            data_per_frame.append(int(record[5]))
            loss_per_frame.append(int(record[6]))

    def voice_metrics(self, terminals) -> VoiceMetrics:
        """Aggregate voice metrics from terminals or a columnar population.

        Accepts an iterable of :class:`Terminal` (object backend), a
        :class:`~repro.traffic.population.TerminalPopulation` or any
        sequence exposing one via a ``population`` attribute (columnar
        backend) — the array path avoids per-object iteration.
        """
        population = self._population_of(terminals)
        if population is not None:
            return VoiceMetrics.from_population(population)
        return VoiceMetrics.from_terminals(terminals)

    def data_metrics(self, terminals) -> DataMetrics:
        """Aggregate data metrics from terminals or a columnar population."""
        population = self._population_of(terminals)
        if population is not None:
            return DataMetrics.from_population(
                population, self._n_frames, self._params.frame_duration_s
            )
        return DataMetrics.from_terminals(
            terminals, self._n_frames, self._params.frame_duration_s
        )

    @staticmethod
    def _population_of(terminals):
        if isinstance(terminals, TerminalPopulation):
            return terminals
        return getattr(terminals, "population", None)

    def mac_stats(self) -> MacStats:
        """Aggregate MAC-layer statistics."""
        mean_queue = (
            self._queue_length_total / self._n_frames if self._n_frames else 0.0
        )
        return MacStats(
            n_frames=self._n_frames,
            contention_attempts=self._attempts,
            contention_collisions=self._collisions,
            idle_request_slots=self._idle_slots,
            allocated_slots=self._allocated_slots,
            info_slots_per_frame=self._info_slots_per_frame,
            mean_queue_length=mean_queue,
        )
