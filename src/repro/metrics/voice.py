"""Voice quality metric: the packet loss rate of equation (3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.traffic.terminal import Terminal

__all__ = ["VoiceMetrics"]


@dataclass(frozen=True)
class VoiceMetrics:
    """Aggregated voice counters of one simulation run.

    Attributes
    ----------
    generated:
        Voice packets produced by all talkspurts during the measured period.
    delivered:
        Voice packets received at the base station without error.
    errored:
        Voice packets transmitted but corrupted by the channel.
    dropped:
        Voice packets dropped at the device because their deadline expired.
    """

    generated: int
    delivered: int
    errored: int
    dropped: int

    def __post_init__(self) -> None:
        for name in ("generated", "delivered", "errored", "dropped"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def lost(self) -> int:
        """Voice packets lost to either cause (the numerator of P_loss)."""
        return self.errored + self.dropped

    @property
    def loss_rate(self) -> float:
        """The paper's ``P_loss``: lost packets over generated packets.

        Equation (3) uses transmitted packets in the denominator; counting
        against *generated* packets additionally charges packets that never
        got a transmission opportunity at all, which is the quantity the QoS
        threshold actually cares about (and equals the paper's definition
        whenever every generated packet is eventually either transmitted or
        dropped, as is the case here).
        """
        if self.generated == 0:
            return 0.0
        return self.lost / self.generated

    @property
    def dropping_rate(self) -> float:
        """Fraction of generated packets dropped at the device (deadline)."""
        if self.generated == 0:
            return 0.0
        return self.dropped / self.generated

    @property
    def error_rate(self) -> float:
        """Fraction of generated packets lost to transmission errors."""
        if self.generated == 0:
            return 0.0
        return self.errored / self.generated

    def meets_quality(self, threshold: float = 0.01) -> bool:
        """Whether the run satisfies the voice QoS limit (1 % by default)."""
        return self.loss_rate <= threshold

    @classmethod
    def combine(cls, parts: Iterable["VoiceMetrics"]) -> "VoiceMetrics":
        """Sum per-beam (or per-run) counters into one aggregate.

        Exact because every field is an extensive count: the constellation
        runner merges its shards' metrics with this.
        """
        generated = delivered = errored = dropped = 0
        for part in parts:
            generated += part.generated
            delivered += part.delivered
            errored += part.errored
            dropped += part.dropped
        return cls(generated=generated, delivered=delivered,
                   errored=errored, dropped=dropped)

    @classmethod
    def from_terminals(cls, terminals: Iterable[Terminal]) -> "VoiceMetrics":
        """Aggregate the per-terminal statistics of a finished run."""
        generated = delivered = errored = dropped = 0
        for terminal in terminals:
            if not terminal.is_voice:
                continue
            stats = terminal.stats
            generated += stats.voice_generated
            delivered += stats.voice_delivered
            errored += stats.voice_errored
            dropped += stats.voice_dropped
        return cls(generated=generated, delivered=delivered,
                   errored=errored, dropped=dropped)

    @classmethod
    def from_population(cls, population) -> "VoiceMetrics":
        """Aggregate a columnar :class:`TerminalPopulation`'s voice arrays."""
        return cls(
            generated=int(population.voice_generated.sum()),
            delivered=int(population.voice_delivered.sum()),
            errored=int(population.voice_errored.sum()),
            dropped=int(population.voice_dropped.sum()),
        )
