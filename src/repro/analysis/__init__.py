"""Analysis layer: capacity read-offs, experiment registry and result tables.

This subpackage turns raw :class:`~repro.sim.results.SimulationResult`
objects into the quantities the paper actually reports:

* :mod:`repro.analysis.capacity` — "how many voice users can the protocol
  support at the 1 % packet-loss threshold?" and the data QoS equivalent
  (Section 5.1 / 5.2 narrative numbers);
* :mod:`repro.analysis.experiments` — a registry with one entry per paper
  table/figure, each describing the workload, the swept parameter and the
  modules involved, and able to run itself at a configurable scale (the
  benchmark harness and EXPERIMENTS.md are generated from it);
* :mod:`repro.analysis.tables` — plain-text table rendering of sweeps and
  comparisons, used by the examples and the benchmarks' console output.
"""

from repro.analysis.capacity import (
    data_qos_capacity,
    voice_capacity,
)
from repro.analysis.experiments import (
    EXPERIMENTS,
    Experiment,
    get_experiment,
    list_experiments,
)
from repro.analysis.tables import format_comparison_table, format_sweep_table

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "data_qos_capacity",
    "format_comparison_table",
    "format_sweep_table",
    "get_experiment",
    "list_experiments",
    "voice_capacity",
]
