"""Capacity analysis: supported user population at a QoS threshold.

The paper's headline comparisons are capacity read-offs:

* *voice capacity*: the largest number of voice users a protocol supports
  while keeping the voice packet loss rate at or below 1 % (Section 5.1 —
  e.g. "CHARISMA can accommodate approximately 100 voice users, while DRMA
  and D-TDMA/VR support only about 80");
* *data capacity*: the largest number of data users for which the (delay,
  per-user throughput) pair stays within the QoS operating point
  (Section 5.2 uses (1 s, 0.25 packets/frame)).

Both are found by a bracket-then-bisect search over the population size,
running one simulation per probe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.config import SimulationParameters
from repro.sim.results import SimulationResult
from repro.sim.runner import run_simulation
from repro.sim.scenario import Scenario

__all__ = ["CapacityEstimate", "voice_capacity", "data_qos_capacity"]


@dataclass(frozen=True)
class CapacityEstimate:
    """Result of a capacity search.

    Attributes
    ----------
    protocol:
        Protocol registry name.
    capacity:
        Largest probed population size that still met the QoS target
        (0 if even the smallest probe failed).
    threshold_value:
        The QoS threshold used.
    probes:
        Every (population, metric, passed) triple evaluated by the search,
        in evaluation order — useful for plotting and for debugging a search.
    """

    protocol: str
    capacity: int
    threshold_value: float
    probes: Tuple[Tuple[int, float, bool], ...]

    @property
    def n_probes(self) -> int:
        """Number of simulations the search spent."""
        return len(self.probes)


def _bracket_and_bisect(
    evaluate: Callable[[int], Tuple[float, bool]],
    lower: int,
    upper: int,
    step: int,
) -> Tuple[int, List[Tuple[int, float, bool]]]:
    """Generic integer capacity search.

    Walks up from ``lower`` in ``step`` increments until the QoS check fails
    (or ``upper`` is reached), then bisects the last passing/failing bracket.
    Returns the largest passing value and the probe history.
    """
    if lower < 0 or upper < lower:
        raise ValueError("need 0 <= lower <= upper")
    if step < 1:
        raise ValueError("step must be at least 1")
    probes: List[Tuple[int, float, bool]] = []

    def probe(n: int) -> bool:
        metric, passed = evaluate(n)
        probes.append((n, metric, passed))
        return passed

    # Walk upward to bracket the failure point.
    best_pass: Optional[int] = None
    first_fail: Optional[int] = None
    n = lower
    while n <= upper:
        if probe(n):
            best_pass = n
            n += step
        else:
            first_fail = n
            break
    if first_fail is None:
        return best_pass if best_pass is not None else lower, probes
    if best_pass is None:
        return 0, probes

    # Bisect between the last pass and the first fail.
    low, high = best_pass, first_fail
    while high - low > 1:
        mid = (low + high) // 2
        if probe(mid):
            low = mid
        else:
            high = mid
    return low, probes


def voice_capacity(
    protocol: str,
    params: Optional[SimulationParameters] = None,
    n_data: int = 0,
    use_request_queue: bool = False,
    loss_threshold: Optional[float] = None,
    lower: int = 10,
    upper: int = 200,
    step: int = 20,
    duration_s: float = 5.0,
    warmup_s: float = 2.0,
    seed: int = 0,
) -> CapacityEstimate:
    """Largest number of voice users supported at the loss threshold."""
    params = params if params is not None else SimulationParameters()
    threshold = (
        loss_threshold if loss_threshold is not None else params.voice_loss_threshold
    )

    def evaluate(n_voice: int) -> Tuple[float, bool]:
        scenario = Scenario(
            protocol=protocol,
            n_voice=n_voice,
            n_data=n_data,
            use_request_queue=use_request_queue,
            duration_s=duration_s,
            warmup_s=warmup_s,
            seed=seed,
        )
        result = run_simulation(scenario, params)
        loss = result.voice.loss_rate
        return loss, loss <= threshold

    capacity, probes = _bracket_and_bisect(evaluate, lower, upper, step)
    return CapacityEstimate(
        protocol=protocol,
        capacity=capacity,
        threshold_value=threshold,
        probes=tuple(probes),
    )


def data_qos_capacity(
    protocol: str,
    params: Optional[SimulationParameters] = None,
    n_voice: int = 0,
    use_request_queue: bool = False,
    max_delay_s: Optional[float] = None,
    min_throughput_per_user: Optional[float] = None,
    min_delivery_ratio: float = 0.9,
    lower: int = 10,
    upper: int = 200,
    step: int = 20,
    duration_s: float = 5.0,
    warmup_s: float = 2.0,
    seed: int = 0,
) -> CapacityEstimate:
    """Largest number of data users meeting the (delay, throughput) QoS pair.

    The throughput half of the paper's QoS pair corresponds to full delivery
    of the offered load (each data source offers exactly 0.25 packets per
    frame on average), which is a razor-thin criterion on finite runs where
    the last bursts of the window are still in flight.  The check therefore
    accepts a run when the mean delay is within ``max_delay_s`` *and* either
    the per-user delivered throughput reaches ``min_throughput_per_user`` or
    the delivery ratio reaches ``min_delivery_ratio``.
    """
    params = params if params is not None else SimulationParameters()
    max_delay = max_delay_s if max_delay_s is not None else params.data_qos_delay_s
    min_tput = (
        min_throughput_per_user
        if min_throughput_per_user is not None
        else params.data_qos_throughput
    )
    if not 0.0 < min_delivery_ratio <= 1.0:
        raise ValueError("min_delivery_ratio must lie in (0, 1]")

    def evaluate(n_data: int) -> Tuple[float, bool]:
        scenario = Scenario(
            protocol=protocol,
            n_voice=n_voice,
            n_data=n_data,
            use_request_queue=use_request_queue,
            duration_s=duration_s,
            warmup_s=warmup_s,
            seed=seed,
        )
        result: SimulationResult = run_simulation(scenario, params)
        throughput_ok = (
            result.data.meets_qos(max_delay, min_tput, n_data)
            or result.data.delivery_ratio >= min_delivery_ratio
        )
        passed = result.data.mean_delay_s <= max_delay and throughput_ok
        return result.data.mean_delay_s, passed

    capacity, probes = _bracket_and_bisect(evaluate, lower, upper, step)
    return CapacityEstimate(
        protocol=protocol,
        capacity=capacity,
        threshold_value=max_delay,
        probes=tuple(probes),
    )
