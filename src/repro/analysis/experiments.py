"""Registry of the paper's tables and figures.

Each :class:`Experiment` describes one artefact of the paper's evaluation —
which workload it uses, which parameter is swept, which protocols appear,
which of our modules implement the pieces, and which benchmark regenerates
it — and can run (a possibly scaled-down version of) itself.  DESIGN.md's
per-experiment index, EXPERIMENTS.md and the ``benchmarks/`` harness are all
driven by this registry so they cannot drift apart.

The full-scale figures of the paper sweep up to ~180 users with six
protocols and six traffic mixes; that is hours of CPU.  Every experiment
therefore carries *default* sweep values and durations sized so the whole
benchmark suite completes in minutes, while ``run(values=..., duration_s=...)``
lets a user reproduce the full-scale curves verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.api import ExperimentSpec, ResultSet, SweepAxis
from repro.api import run as run_experiment
from repro.config import SimulationParameters
from repro.sim.results import SweepResult
from repro.sim.scenario import Scenario

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment", "list_experiments"]

#: Order in which protocols are reported everywhere (the paper's own order).
ALL_PROTOCOLS: Tuple[str, ...] = (
    "charisma",
    "dtdma_vr",
    "dtdma_fr",
    "drma",
    "rama",
    "rmav",
)


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artefact (table or figure).

    Attributes
    ----------
    key:
        Short identifier, e.g. ``"fig11a"``.
    paper_artifact:
        The artefact in the paper, e.g. ``"Figure 11(a)"``.
    description:
        One-line description of what the artefact shows.
    kind:
        ``"voice_sweep"``, ``"data_sweep"``, ``"speed_sweep"``,
        ``"capacity"``, ``"phy_curve"``, ``"channel_trace"``,
        ``"parameters"`` or ``"ablation"``.
    protocols:
        Protocols appearing in the artefact.
    parameter:
        Swept scenario field (``"n_voice"`` / ``"n_data"`` /
        ``"mobile_speed_kmh"``), if any.
    sweep_values:
        Default (scaled-down) sweep values used by the benchmark harness.
    fixed:
        Fixed scenario fields (e.g. ``{"n_data": 10, "use_request_queue":
        True}``).
    metrics:
        Result-summary keys the artefact reports.
    expected_shape:
        The qualitative outcome the paper reports, used when judging the
        reproduction (EXPERIMENTS.md quotes it verbatim).
    modules:
        The repro modules exercised.
    bench_target:
        The benchmark file that regenerates the artefact.
    duration_s, warmup_s:
        Default simulated time per point.
    """

    key: str
    paper_artifact: str
    description: str
    kind: str
    protocols: Tuple[str, ...] = ALL_PROTOCOLS
    parameter: Optional[str] = None
    sweep_values: Tuple[int, ...] = ()
    fixed: Dict[str, object] = field(default_factory=dict)
    metrics: Tuple[str, ...] = ("voice_loss_rate",)
    expected_shape: str = ""
    modules: Tuple[str, ...] = ()
    bench_target: str = ""
    duration_s: float = 4.0
    warmup_s: float = 1.5

    # ------------------------------------------------------------------ API
    def base_scenario(self, seed: int = 0) -> Scenario:
        """Template scenario with this experiment's fixed fields applied."""
        defaults = {
            "protocol": self.protocols[0],
            "n_voice": 0,
            "n_data": 0,
            "use_request_queue": False,
            "duration_s": self.duration_s,
            "warmup_s": self.warmup_s,
            "seed": seed,
        }
        defaults.update(self.fixed)
        return Scenario(**defaults)  # type: ignore[arg-type]

    def sweep_parameter(self) -> str:
        """The scenario field this experiment's sweep varies."""
        if self.parameter:
            return self.parameter
        return {
            "voice_sweep": "n_voice",
            "data_sweep": "n_data",
            "speed_sweep": "mobile_speed_kmh",
        }.get(self.kind, "n_voice")

    def spec(
        self,
        params: Optional[SimulationParameters] = None,
        values: Optional[Sequence[int]] = None,
        duration_s: Optional[float] = None,
        seeds: Sequence[int] = (0,),
    ) -> ExperimentSpec:
        """The :class:`~repro.api.ExperimentSpec` behind this artefact.

        Only meaningful for the sweep-type experiments (``voice_sweep``,
        ``data_sweep``, ``speed_sweep``); the PHY-curve, channel-trace and
        parameter-table artefacts are regenerated directly by their
        benchmarks from the corresponding modules.
        """
        if self.kind not in ("voice_sweep", "data_sweep", "speed_sweep"):
            raise ValueError(
                f"experiment {self.key!r} of kind {self.kind!r} is not a sweep; "
                "its benchmark regenerates it directly"
            )
        values = list(values if values is not None else self.sweep_values)
        if self.kind == "speed_sweep":
            values = [float(v) for v in values]
        base = self.base_scenario(seed=seeds[0] if seeds else 0)
        if duration_s is not None:
            base = base.with_overrides(duration_s=duration_s)
        return ExperimentSpec(
            protocols=self.protocols,
            base_scenario=base,
            axes=(SweepAxis(self.sweep_parameter(), values),),
            params=params,
            seeds=seeds,
            name=self.key,
        )

    def run_resultset(
        self,
        params: Optional[SimulationParameters] = None,
        values: Optional[Sequence[int]] = None,
        duration_s: Optional[float] = None,
        seeds: Sequence[int] = (0,),
        n_workers: Optional[int] = None,
        store: Optional[object] = None,
        cache_dir: Optional[str] = None,
    ) -> ResultSet:
        """Run the experiment's grid and return the queryable result set.

        ``store=`` / ``cache_dir=`` enable the content-addressed run cache
        of :mod:`repro.store`: re-running the same artefact (same values,
        duration and seeds) skips every finished point.
        """
        return run_experiment(
            self.spec(params=params, values=values, duration_s=duration_s,
                      seeds=seeds),
            n_workers=n_workers,
            store=store,
            cache_dir=cache_dir,
        )

    def run(
        self,
        params: Optional[SimulationParameters] = None,
        values: Optional[Sequence[int]] = None,
        duration_s: Optional[float] = None,
        seed: int = 0,
        n_workers: int = 1,
    ) -> Dict[str, SweepResult]:
        """Run the experiment's sweep and return one SweepResult per protocol.

        Legacy-shaped view over :meth:`run_resultset`, kept for the table
        formatters and the benchmark harness.
        """
        results = self.run_resultset(
            params=params, values=values, duration_s=duration_s,
            seeds=(seed,), n_workers=n_workers,
        )
        return results.to_sweep_results(self.sweep_parameter())

    def describe(self) -> Dict[str, object]:
        """Row of the per-experiment index (DESIGN.md / EXPERIMENTS.md)."""
        return {
            "key": self.key,
            "paper_artifact": self.paper_artifact,
            "description": self.description,
            "kind": self.kind,
            "protocols": list(self.protocols),
            "parameter": self.parameter,
            "sweep_values": list(self.sweep_values),
            "fixed": dict(self.fixed),
            "metrics": list(self.metrics),
            "expected_shape": self.expected_shape,
            "modules": list(self.modules),
            "bench_target": self.bench_target,
        }


def _voice_figure(key: str, sub: str, n_data: int, queue: bool) -> Experiment:
    queue_text = "with" if queue else "without"
    return Experiment(
        key=key,
        paper_artifact=f"Figure 11({sub})",
        description=(
            f"Voice packet loss rate vs number of voice users, {queue_text} "
            f"request queue, Nd={n_data}."
        ),
        kind="voice_sweep",
        parameter="n_voice",
        sweep_values=(20, 60, 100, 140),
        fixed={"n_data": n_data, "use_request_queue": queue},
        metrics=("voice_loss_rate", "voice_dropping_rate", "voice_error_rate"),
        expected_shape=(
            "CHARISMA has the lowest loss at every load and nearly zero loss at "
            "light load; D-TDMA/VR beats D-TDMA/FR thanks to the adaptive PHY; "
            "RMAV destabilises at a moderate number of users; RAMA degrades "
            "gracefully at overload; adding data users shifts every curve left."
        ),
        modules=(
            "repro.sim.engine", "repro.mac.*", "repro.core.charisma",
            "repro.channel.*", "repro.phy.*", "repro.metrics.voice",
        ),
        bench_target="benchmarks/test_bench_fig11_voice_loss.py",
    )


def _data_figure(key: str, sub: str, figure: int, n_voice: int, queue: bool) -> Experiment:
    queue_text = "with" if queue else "without"
    metric = (
        "data_throughput_per_frame" if figure == 12 else "data_delay_s"
    )
    what = "throughput" if figure == 12 else "delay"
    return Experiment(
        key=key,
        paper_artifact=f"Figure {figure}({sub})",
        description=(
            f"Data {what} vs number of data users, {queue_text} request queue, "
            f"Nv={n_voice}."
        ),
        kind="data_sweep",
        parameter="n_data",
        sweep_values=(10, 40, 80, 120),
        fixed={"n_voice": n_voice, "use_request_queue": queue},
        metrics=(metric,),
        expected_shape=(
            "CHARISMA delivers the highest throughput and the lowest delay, "
            "followed by D-TDMA/VR; the fixed-rate baselines saturate early; "
            "RMAV collapses; rankings are consistent across the queue variants."
        ),
        modules=(
            "repro.sim.engine", "repro.mac.*", "repro.core.charisma",
            "repro.metrics.data",
        ),
        bench_target=(
            "benchmarks/test_bench_fig12_data_throughput.py"
            if figure == 12
            else "benchmarks/test_bench_fig13_data_delay.py"
        ),
    )


def _build_registry() -> Dict[str, Experiment]:
    experiments: Dict[str, Experiment] = {}

    experiments["table1"] = Experiment(
        key="table1",
        paper_artifact="Table 1",
        description="Simulation parameters of the common platform.",
        kind="parameters",
        protocols=(),
        metrics=(),
        expected_shape="Parameter values match the prose of Sections 2, 4 and 5.",
        modules=("repro.config",),
        bench_target="benchmarks/test_bench_table1_parameters.py",
    )
    experiments["fig5"] = Experiment(
        key="fig5",
        paper_artifact="Figure 5",
        description="Sample of combined channel fading (fast fading on shadowing).",
        kind="channel_trace",
        protocols=(),
        metrics=(),
        expected_shape=(
            "Fast Rayleigh fluctuations (coherence ~10 ms at 50 km/h) ride on a "
            "slow shadowing trend (~1 s), with deep fades tens of dB below the mean."
        ),
        modules=("repro.channel.fading", "repro.channel.shadowing",
                 "repro.channel.composite"),
        bench_target="benchmarks/test_bench_fig5_channel_trace.py",
    )
    experiments["fig7"] = Experiment(
        key="fig7",
        paper_artifact="Figure 7(a)/(b)",
        description="Instantaneous BER and normalised throughput vs CSI for the ABICM modes.",
        kind="phy_curve",
        protocols=(),
        metrics=(),
        expected_shape=(
            "Within the adaptation range the BER stays at the target while the "
            "throughput climbs a 6-step staircase from 1/2 to 5; below the range "
            "the BER blows up (outage)."
        ),
        modules=("repro.phy.modes", "repro.phy.abicm", "repro.phy.ber"),
        bench_target="benchmarks/test_bench_fig7_phy.py",
    )

    experiments["fig11a"] = _voice_figure("fig11a", "a", n_data=0, queue=False)
    experiments["fig11b"] = _voice_figure("fig11b", "b", n_data=0, queue=True)
    experiments["fig11c"] = _voice_figure("fig11c", "c", n_data=10, queue=False)
    experiments["fig11d"] = _voice_figure("fig11d", "d", n_data=10, queue=True)
    experiments["fig11e"] = _voice_figure("fig11e", "e", n_data=20, queue=False)
    experiments["fig11f"] = _voice_figure("fig11f", "f", n_data=20, queue=True)

    experiments["fig12a"] = _data_figure("fig12a", "a", 12, n_voice=0, queue=False)
    experiments["fig12b"] = _data_figure("fig12b", "b", 12, n_voice=0, queue=True)
    experiments["fig12c"] = _data_figure("fig12c", "c", 12, n_voice=10, queue=False)
    experiments["fig12d"] = _data_figure("fig12d", "d", 12, n_voice=10, queue=True)
    experiments["fig12e"] = _data_figure("fig12e", "e", 12, n_voice=20, queue=False)
    experiments["fig12f"] = _data_figure("fig12f", "f", 12, n_voice=20, queue=True)

    experiments["fig13a"] = _data_figure("fig13a", "a", 13, n_voice=0, queue=False)
    experiments["fig13b"] = _data_figure("fig13b", "b", 13, n_voice=0, queue=True)
    experiments["fig13c"] = _data_figure("fig13c", "c", 13, n_voice=10, queue=False)
    experiments["fig13d"] = _data_figure("fig13d", "d", 13, n_voice=10, queue=True)
    experiments["fig13e"] = _data_figure("fig13e", "e", 13, n_voice=20, queue=False)
    experiments["fig13f"] = _data_figure("fig13f", "f", 13, n_voice=20, queue=True)

    experiments["capacity_voice"] = Experiment(
        key="capacity_voice",
        paper_artifact="Section 5.1 (narrative capacities)",
        description="Voice users supported at the 1% loss threshold, with and without queue.",
        kind="capacity",
        metrics=("voice_loss_rate",),
        expected_shape=(
            "Without a queue CHARISMA supports the most voice users; adding the "
            "request queue increases CHARISMA's and D-TDMA/VR's capacity "
            "substantially but helps DRMA and RAMA only marginally."
        ),
        modules=("repro.analysis.capacity",),
        bench_target="benchmarks/test_bench_capacity_voice.py",
    )
    experiments["capacity_data"] = Experiment(
        key="capacity_data",
        paper_artifact="Section 5.2 (QoS capacity ratio)",
        description="Data users supported at the (1 s, 0.25 pkt/frame) QoS point.",
        kind="capacity",
        metrics=("data_delay_s", "data_throughput_per_frame"),
        expected_shape=(
            "CHARISMA's data capacity is roughly 1.5x D-TDMA/VR's and about 3x "
            "that of RAMA and DRMA."
        ),
        modules=("repro.analysis.capacity",),
        bench_target="benchmarks/test_bench_capacity_data.py",
    )
    experiments["speed_ablation"] = Experiment(
        key="speed_ablation",
        paper_artifact="Section 5.3.3 (mobile speed discussion)",
        description="CHARISMA performance across mobile speeds 10-80 km/h.",
        kind="speed_sweep",
        protocols=("charisma",),
        parameter="mobile_speed_kmh",
        sweep_values=(10, 30, 50, 80),
        fixed={"n_voice": 120, "n_data": 20, "use_request_queue": True},
        metrics=("voice_loss_rate", "data_throughput_per_frame"),
        expected_shape=(
            "Performance is essentially flat from 10 to 50 km/h and degrades "
            "only slightly (a few percent) at 80 km/h, thanks to the CSI "
            "refresh mechanism."
        ),
        modules=("repro.channel.doppler", "repro.core.charisma",
                 "repro.core.csi_polling"),
        bench_target="benchmarks/test_bench_speed_ablation.py",
    )
    experiments["ablation_design"] = Experiment(
        key="ablation_design",
        paper_artifact="Design-choice ablations (reproduction extension)",
        description=(
            "CHARISMA with individual design elements disabled: CSI term in the "
            "priority metric, CSI polling, request queue."
        ),
        kind="ablation",
        protocols=("charisma",),
        metrics=("voice_loss_rate", "data_throughput_per_frame", "data_delay_s"),
        expected_shape=(
            "Removing the CSI term costs the most (falls back to FCFS-like "
            "behaviour); disabling polling hurts mainly when the queue is long; "
            "removing the queue reduces capacity at high load."
        ),
        modules=("repro.core.priority", "repro.core.csi_polling",
                 "repro.mac.request_queue"),
        bench_target="benchmarks/test_bench_ablation_design.py",
    )
    return experiments


#: The experiment registry, keyed by experiment id.
EXPERIMENTS: Dict[str, Experiment] = _build_registry()


def list_experiments() -> Tuple[str, ...]:
    """All registered experiment keys, in registry order."""
    return tuple(EXPERIMENTS)


def get_experiment(key: str) -> Experiment:
    """Look up one experiment by key."""
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {key!r}; available: {', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key]
