"""Plain-text result tables.

The paper presents its evaluation as families of curves; for a console
library the equivalent deliverable is a fixed-width table whose rows are the
swept loads and whose columns are the protocols.  These helpers are shared by
the examples and the benchmark harness, so every experiment prints its
results in the same format.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.sim.results import SweepResult

__all__ = ["format_sweep_table", "format_comparison_table", "format_kv_table"]


def _format_cell(value: object, width: int) -> str:
    if isinstance(value, float):
        text = f"{value:.4g}"
    else:
        text = str(value)
    return text.rjust(width)


def format_kv_table(rows: Mapping[str, object], title: str = "") -> str:
    """Render a key/value mapping (e.g. Table 1 parameters) as text."""
    key_width = max((len(str(k)) for k in rows), default=3)
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for key, value in rows.items():
        lines.append(f"{str(key).ljust(key_width)}  {value}")
    return "\n".join(lines)


def format_sweep_table(
    sweep: SweepResult,
    metrics: Sequence[str] = ("voice_loss_rate", "data_throughput_per_frame", "data_delay_s"),
    title: str = "",
) -> str:
    """Render one protocol's sweep as a text table (rows = swept values)."""
    header = [sweep.parameter] + list(metrics)
    widths = [max(10, len(h)) for h in header]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for value, result in zip(sweep.values, sweep.results):
        summary = result.summary()
        row = [value] + [summary[m] for m in metrics]
        lines.append("  ".join(_format_cell(c, w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_comparison_table(
    sweeps: Dict[str, SweepResult],
    metric: str,
    title: str = "",
) -> str:
    """Render one metric for several protocols side by side.

    Rows are the swept values (assumed identical across protocols, as
    produced by :meth:`repro.api.ResultSet.to_sweep_results`); columns are
    the protocols.  This is the textual analogue of one sub-figure of the
    paper's Figs. 11-13.
    """
    if not sweeps:
        return title
    protocols = list(sweeps)
    first = sweeps[protocols[0]]
    for sweep in sweeps.values():
        if sweep.values != first.values:
            raise ValueError("all sweeps must share the same swept values")
    header = [first.parameter] + protocols
    widths = [max(10, len(h)) for h in header]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    series = {p: sweeps[p].series(metric) for p in protocols}
    for i, value in enumerate(first.values):
        row = [value] + [series[p][i] for p in protocols]
        lines.append("  ".join(_format_cell(c, w) for c, w in zip(row, widths)))
    return "\n".join(lines)
