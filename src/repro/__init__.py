"""repro — reproduction of the CHARISMA channel-adaptive uplink MAC protocol.

This package reimplements, from scratch, the complete system evaluated in
Kwok & Lau, *"A Novel Channel-Adaptive Uplink Access Control Protocol for
Nomadic Computing"* (ICPP 2000 / IEEE TPDS 2002): the fading channel models,
the 6-mode variable-throughput adaptive physical layer, the integrated
voice/data traffic sources, the five baseline uplink MAC protocols (RAMA,
RMAV, DRMA, D-TDMA/FR, D-TDMA/VR), the proposed CHARISMA protocol, and the
frame-synchronous simulation platform plus metrics used to compare them.

Quickstart
----------
>>> from repro import SimulationParameters, Scenario, run_simulation
>>> params = SimulationParameters()
>>> scenario = Scenario(protocol="charisma", n_voice=20, n_data=5,
...                     use_request_queue=True, duration_s=2.0, seed=1)
>>> result = run_simulation(scenario, params)
>>> 0.0 <= result.voice.loss_rate <= 1.0
True

Experiment grids (protocol × axes × seeds) go through :mod:`repro.api`:

>>> from repro import ExperimentSpec, SweepAxis, run_experiment
>>> spec = ExperimentSpec(protocols=("charisma",), base_scenario=scenario,
...                       axes=(SweepAxis("n_voice", (5, 10)),), seeds=(0, 1))
>>> results = run_experiment(spec)
>>> len(results)
4

Subpackages
-----------
``repro.api``       Unified experiment API: specs, executors, result sets.
``repro.store``     Content-addressed run cache, resumable store, work-stealing executor.
``repro.channel``   Rayleigh fast fading × log-normal shadowing channel models.
``repro.phy``       Adaptive (ABICM-style) and fixed-rate physical layers, CSI estimation.
``repro.traffic``   Voice / data sources, terminals, permission-probability contention.
``repro.mac``       MAC substrate and the five baseline protocols.
``repro.core``      The CHARISMA protocol (the paper's contribution).
``repro.sim``       Discrete-event kernel, frame engine, scenario runner.
``repro.metrics``   Voice loss, data throughput/delay metrics and statistics.
``repro.analysis``  Capacity analysis, parameter sweeps, experiment registry.
"""

from repro.version import __version__

__all__ = ["__version__"]


def __getattr__(name):  # pragma: no cover - thin lazy-import shim
    """Lazily expose the high-level convenience API.

    The heavyweight subpackages are imported on first use so that
    ``import repro`` stays cheap for users who only need one substrate
    (e.g. the channel models).
    """
    lazy = {
        "SimulationParameters": ("repro.config", "SimulationParameters"),
        "Scenario": ("repro.sim.scenario", "Scenario"),
        "run_simulation": ("repro.sim.runner", "run_simulation"),
        "SimulationResult": ("repro.sim.results", "SimulationResult"),
        "available_protocols": ("repro.mac.registry", "available_protocols"),
        "create_protocol": ("repro.mac.registry", "create_protocol"),
        # unified experiment API
        "ExperimentSpec": ("repro.api", "ExperimentSpec"),
        "SweepAxis": ("repro.api", "SweepAxis"),
        "ResultSet": ("repro.api", "ResultSet"),
        "SerialExecutor": ("repro.api", "SerialExecutor"),
        "ParallelExecutor": ("repro.api", "ParallelExecutor"),
        "sweep_spec": ("repro.api", "sweep_spec"),
        "run_experiment": ("repro.api", "run"),
        # run cache / resumable store
        "ResultStore": ("repro.store", "ResultStore"),
        "CachingExecutor": ("repro.store", "CachingExecutor"),
        "AsyncExecutor": ("repro.store", "AsyncExecutor"),
    }
    if name in lazy:
        module_name, attr = lazy[name]
        import importlib

        module = importlib.import_module(module_name)
        value = getattr(module, attr)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
