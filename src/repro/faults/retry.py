"""Retry, backoff and graceful-degradation policy for point execution.

:class:`RetryPolicy` is threaded through every executor's
``execute_with_sink`` (``retry=`` keyword): each point attempt that fails
with a *transient* error (see :mod:`repro.faults.errors`) is retried up to
``max_attempts`` times with exponential backoff and deterministic jitter;
a *fatal* error is never retried (the simulations are deterministic — a
point that raised ``ValueError`` once will raise it every time).

When the attempts are exhausted (or the error is fatal), the policy's
``on_error`` mode decides the blast radius:

* ``"raise"`` (default) — the error propagates and the grid aborts, the
  pre-PR behaviour;
* ``"record"`` — the point degrades to a :class:`FailedPoint` record in
  the executor's result list, the rest of the grid keeps running, and the
  caller reads the partial results plus
  :meth:`~repro.api.resultset.ResultSet.errors`.

Jitter is drawn from a dedicated RNG child stream keyed by
``(jitter_seed, run_hash, attempt)`` — fully decoupled from the simulation
streams (injecting faults can never perturb simulated results) yet
deterministic, so a replayed chaos run backs off identically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple, Type, Union

import numpy as np

from repro.faults.errors import (
    FatalPointError,
    PointTimeout,
    TransientPointError,
)
from repro.obs import clock as _clock
from repro.obs import metrics as _metrics
from repro.sim.rng import child_stream

__all__ = [
    "FailedPoint",
    "PointFailed",
    "RetryPolicy",
    "PointOutcome",
    "run_point_attempts",
]

#: Exception families retried by default: the explicit transient hierarchy
#: plus the environmental errors a multi-process run can hit (worker pipe
#: loss, filesystem hiccups, cooperative timeouts).
_TRANSIENT_TYPES: Tuple[Type[BaseException], ...] = (
    TransientPointError,
    TimeoutError,
    ConnectionError,
    OSError,
)


@dataclass(frozen=True)
class FailedPoint:
    """Terminal failure record of one grid point (JSON round-trippable).

    Takes a result's place in the executor output when the retry policy
    runs in ``on_error="record"`` mode; :class:`~repro.api.resultset.ResultSet`
    surfaces these through ``errors()`` while aggregation keeps working
    over the points that did complete.
    """

    run_hash: str
    error_type: str
    message: str
    attempts: int
    transient: bool

    def to_payload(self) -> Dict[str, Any]:
        return {
            "run_hash": self.run_hash,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "transient": self.transient,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "FailedPoint":
        return cls(
            run_hash=str(payload["run_hash"]),
            error_type=str(payload["error_type"]),
            message=str(payload.get("message", "")),
            attempts=int(payload.get("attempts", 1)),
            transient=bool(payload.get("transient", False)),
        )

    @classmethod
    def from_error(
        cls, run_hash: str, error: BaseException, attempts: int,
        transient: bool,
    ) -> "FailedPoint":
        return cls(
            run_hash=run_hash,
            error_type=type(error).__name__,
            message=str(error),
            attempts=attempts,
            transient=transient,
        )


class PointFailed(RuntimeError):
    """Raised in ``on_error="raise"`` mode once a point's attempts are spent.

    Carries the structured :class:`FailedPoint`; the original error is
    chained as ``__cause__``.
    """

    def __init__(self, failed: FailedPoint) -> None:
        super().__init__(
            f"point {failed.run_hash} failed after {failed.attempts} "
            f"attempt(s): {failed.error_type}: {failed.message}"
        )
        self.failed = failed


#: What one guarded point execution produces.
PointOutcome = Union[Any, FailedPoint]


@dataclass(frozen=True)
class RetryPolicy:
    """How point failures are retried, timed out, and degraded.

    Attributes
    ----------
    max_attempts:
        Total attempts per point (1 = no retry).
    backoff_s:
        Base backoff before attempt 2; attempt ``n`` waits
        ``backoff_s * backoff_factor**(n-2)``, capped at ``max_backoff_s``.
        Zero disables sleeping entirely (the common testing configuration).
    backoff_factor:
        Exponential growth factor of the backoff.
    max_backoff_s:
        Upper bound of any single backoff sleep.
    jitter:
        Fraction of the backoff randomised: the sleep is scaled by a factor
        drawn uniformly from ``[1 - jitter, 1 + jitter]`` off a dedicated
        child stream keyed by ``(jitter_seed, run_hash, attempt)`` —
        deterministic, but de-synchronised across points so a herd of
        retrying workers does not stampede in lockstep.
    jitter_seed:
        Seed of the jitter stream (independent of every simulation seed).
    timeout_s:
        Cooperative per-point time budget: an attempt whose wall time
        exceeds it is discarded and classified as a transient
        :class:`~repro.faults.errors.PointTimeout`.  ``None`` disables.
    on_error:
        ``"raise"`` (abort the grid) or ``"record"`` (degrade the point to
        a :class:`FailedPoint` and keep going).
    """

    max_attempts: int = 3
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    max_backoff_s: float = 5.0
    jitter: float = 0.5
    jitter_seed: int = 0
    timeout_s: Optional[float] = None
    on_error: str = "raise"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff durations must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.on_error not in ("raise", "record"):
            raise ValueError("on_error must be 'raise' or 'record'")

    # -------------------------------------------------------- classification
    @staticmethod
    def classify(error: BaseException) -> bool:
        """True when ``error`` is transient (worth another attempt)."""
        if isinstance(error, FatalPointError):
            return False
        return isinstance(error, _TRANSIENT_TYPES)

    # --------------------------------------------------------------- backoff
    def backoff_for(self, run_hash: str, attempt: int) -> float:
        """Seconds to sleep before ``attempt`` (2-based), jitter applied."""
        if self.backoff_s <= 0.0 or attempt <= 1:
            return 0.0
        base = self.backoff_s * self.backoff_factor ** (attempt - 2)
        base = min(base, self.max_backoff_s)
        if self.jitter <= 0.0:
            return base
        # Dedicated retry child stream: deterministic per (seed, point,
        # attempt), independent of all simulation streams.
        seq = np.random.SeedSequence(self.jitter_seed)  # isolated retry-jitter entropy, never feeds a simulation. lint: allow[RNG001]
        gen = child_stream(seq, f"retry:{run_hash}:{attempt}")  # per-(point,attempt) label, collision-free by construction. lint: allow[RNG002]
        scale = 1.0 + self.jitter * (2.0 * float(gen.random()) - 1.0)
        return base * scale


def run_point_attempts(
    policy: Optional[RetryPolicy],
    run_hash: str,
    attempt_fn: Callable[[int], Any],
) -> PointOutcome:
    """Drive one point through the policy's attempt loop.

    ``attempt_fn(attempt_number)`` performs one execution attempt (fault
    injection included — the injector's ``point_attempt`` site lives inside
    it).  Without a policy this is a single bare call, preserving the
    historical behaviour byte for byte.  With one:

    * transient failures retry with backoff until ``max_attempts``;
    * fatal failures stop immediately;
    * the terminal failure either raises :class:`PointFailed`
      (``on_error="raise"``) or returns a :class:`FailedPoint`
      (``on_error="record"``) — callers branch on the returned type.

    Metrics: every re-attempt increments ``retry.attempts``; a terminal
    failure increments ``executor.failed_points``.
    """
    if policy is None:
        return attempt_fn(1)
    last_error: Optional[BaseException] = None
    transient = False
    attempts_made = 0
    for attempt in range(1, policy.max_attempts + 1):
        attempts_made = attempt
        if attempt > 1:
            m = _metrics.METRICS
            if m.enabled:
                m.inc("retry.attempts")
            pause = policy.backoff_for(run_hash, attempt)
            if pause > 0.0:
                time.sleep(pause)
        t0 = _clock.now()
        try:
            result = attempt_fn(attempt)
        except Exception as error:
            last_error = error
            transient = policy.classify(error)
            if not transient:
                break
            continue
        if (
            policy.timeout_s is not None
            and _clock.now() - t0 > policy.timeout_s
        ):
            last_error = PointTimeout(
                f"point {run_hash} attempt {attempt} exceeded the "
                f"{policy.timeout_s:g}s budget"
            )
            transient = True
            continue
        return result
    assert last_error is not None
    m = _metrics.METRICS
    if m.enabled:
        m.inc("executor.failed_points")
    failed = FailedPoint.from_error(
        run_hash, last_error, attempts_made, transient
    )
    if policy.on_error == "record":
        return failed
    raise PointFailed(failed) from last_error
