"""Declarative, seed-driven fault plans.

A :class:`FaultPlan` says *which* failures to inject and *how often*; the
:class:`~repro.faults.injector.FaultInjector` executes it.  Plans are plain
frozen dataclasses with a compact ``key=value,key=value`` spec syntax, so
one string configures a chaos run end to end::

    REPRO_FAULTS="crash_every=3,seed=7" python -m repro run ...
    run(spec, faults="crash_every=3,hang_every=5,hang_s=0.2", retry=...)

Every trigger is deterministic: periodic triggers (``*_every``) fire on
exact occurrence counts, and the probabilistic trigger (``crash_rate``)
hashes ``(seed, site, occurrence)`` — no wall clock, no global RNG state,
so the same plan over the same execution order injects the same faults.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

__all__ = ["FaultPlan", "FAULTS_ENV_VAR"]

#: Environment knob read by :meth:`FaultPlan.resolve`; same syntax as
#: :meth:`FaultPlan.from_spec`.
FAULTS_ENV_VAR = "REPRO_FAULTS"


@dataclass(frozen=True)
class FaultPlan:
    """What to inject, where, and how often.

    All counters are per injection *site* and 1-based; ``crash_every=3``
    makes every 3rd point attempt raise.  A zero disables that trigger.

    Attributes
    ----------
    seed:
        Drives the deterministic hash behind ``crash_rate`` (and is folded
        into every probabilistic decision); two plans differing only in
        seed fail different occurrences.
    crash_every:
        Raise :class:`~repro.faults.errors.InjectedFault` on every Nth
        point attempt.
    crash_rate:
        Probability in ``[0, 1]`` that any given point attempt raises,
        decided by a seed-driven hash of the occurrence count.
    crash_limit:
        Stop injecting point crashes after this many have fired
        (0 = unlimited) — the knob that lets a chaos run terminate.
    crash_points:
        Run-hash prefixes; a point attempt whose ``run_hash`` starts with
        any of them raises on its first ``crash_point_attempts`` attempts.
        Executor-independent (the trigger travels with the point, not with
        scheduling order).
    crash_point_attempts:
        How many attempts of each matched ``crash_points`` entry fail
        before the point is allowed to succeed (default 1: fail once,
        succeed on retry).
    hang_every:
        Sleep ``hang_s`` wall seconds before every Nth point attempt —
        the trigger for exercising per-point timeouts and lease expiry.
    hang_s:
        Duration of an injected hang.
    sink_fail_every:
        Raise on every Nth result-sink write (exercises the incremental
        persistence path).
    store_torn_every:
        Truncate every Nth :class:`~repro.store.store.ResultStore` shard
        append mid-line — a simulated mid-write kill.
    lease_drop_every:
        Make every Nth fleet lease heartbeat report a dropped connection
        (the heartbeat is skipped), so the lease expires under a live
        worker and the reaper's reclamation path runs.
    """

    seed: int = 0
    crash_every: int = 0
    crash_rate: float = 0.0
    crash_limit: int = 0
    crash_points: Tuple[str, ...] = ()
    crash_point_attempts: int = 1
    hang_every: int = 0
    hang_s: float = 0.05
    sink_fail_every: int = 0
    store_torn_every: int = 0
    lease_drop_every: int = 0

    def __post_init__(self) -> None:
        for name in ("crash_every", "crash_limit", "hang_every",
                     "sink_fail_every", "store_torn_every",
                     "lease_drop_every", "seed", "crash_point_attempts"):
            if int(getattr(self, name)) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 <= self.crash_rate <= 1.0:
            raise ValueError("crash_rate must lie in [0, 1]")
        if self.hang_s < 0.0:
            raise ValueError("hang_s must be non-negative")

    @property
    def active(self) -> bool:
        """Whether any trigger is enabled."""
        return bool(
            self.crash_every or self.crash_rate or self.crash_points
            or self.hang_every or self.sink_fail_every
            or self.store_torn_every or self.lease_drop_every
        )

    # ------------------------------------------------------------ spec syntax
    def to_spec(self) -> str:
        """Compact ``key=value,...`` form (inverse of :meth:`from_spec`).

        Only non-default fields are emitted, so the spec string is as short
        as the plan is simple — and shippable to worker processes through
        one environment variable or initializer argument.
        """
        default = FaultPlan()
        parts = []
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value == getattr(default, field.name):
                continue
            if field.name == "crash_points":
                parts.append(f"crash_points={'|'.join(value)}")
            else:
                parts.append(f"{field.name}={value}")
        return ",".join(parts)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse ``"crash_every=3,seed=7"`` into a plan.

        Unknown keys raise with the list of valid ones; values are coerced
        to the field's type (``crash_points`` entries are ``|``-separated).
        """
        values: Dict[str, object] = {}
        field_types = {f.name: f.type for f in dataclasses.fields(cls)}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"fault spec entry {part!r} is not key=value"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            raw = raw.strip()
            if key not in field_types:
                raise ValueError(
                    f"unknown fault spec key {key!r}; valid keys: "
                    f"{', '.join(sorted(field_types))}"
                )
            if key == "crash_points":
                values[key] = tuple(
                    token for token in raw.split("|") if token
                )
            elif key in ("crash_rate", "hang_s"):
                values[key] = float(raw)
            else:
                values[key] = int(raw)
        return cls(**values)  # type: ignore[arg-type]

    @classmethod
    def from_env(cls, environ: Optional[Dict[str, str]] = None) -> Optional["FaultPlan"]:
        """The plan configured via :data:`FAULTS_ENV_VAR`, or None."""
        env = environ if environ is not None else dict(os.environ)
        spec = env.get(FAULTS_ENV_VAR, "").strip()
        if not spec:
            return None
        return cls.from_spec(spec)

    @classmethod
    def resolve(
        cls, faults: Union[None, str, "FaultPlan"]
    ) -> Optional["FaultPlan"]:
        """Normalise a user-facing ``faults=`` argument.

        ``None`` falls back to the environment knob; a string is parsed as
        a spec; a plan passes through.  Returns None when no (active) plan
        is configured anywhere.
        """
        plan: Optional[FaultPlan]
        if faults is None:
            plan = cls.from_env()
        elif isinstance(faults, str):
            plan = cls.from_spec(faults)
        else:
            plan = faults
        if plan is not None and not plan.active:
            return None
        return plan
