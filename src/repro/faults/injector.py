"""Runtime fault injection driven by a :class:`~repro.faults.plan.FaultPlan`.

The injector follows the :mod:`repro.obs.metrics` installation pattern: a
process-global slot read through the module attribute at every site, with a
``None`` default so the disabled cost is one attribute load and a branch::

    from repro import faults as _faults
    ...
    injector = _faults.INJECTOR
    if injector is not None:
        injector.point_attempt(run_hash, attempt)

Sites count occurrences under a lock, decide deterministically from the
plan (periodic triggers on exact counts, probabilistic ones by hashing
``(seed, site, count)``), and raise
:class:`~repro.faults.errors.InjectedFault` — a *transient* error, so the
retry layer recovers exactly as it would from a real worker crash.  Every
fired fault increments the ``faults.injected`` (and per-site
``faults.<site>``) observability counters, which is what makes a chaos run
auditable after the fact.
"""

from __future__ import annotations

import threading
import time
import zlib
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.faults.errors import InjectedFault
from repro.faults.plan import FaultPlan
from repro.obs import metrics as _metrics

__all__ = [
    "FaultInjector",
    "INJECTOR",
    "install",
    "uninstall",
    "injecting",
    "active_plan",
]


class FaultInjector:
    """Executes a fault plan at the instrumented sites (thread-safe)."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        self._injected: Dict[str, int] = {}
        #: Point crashes fired so far (bounded by ``plan.crash_limit``).
        self._crashes = 0

    # ------------------------------------------------------------- accounting
    def _next_count(self, site: str) -> int:
        """Post-incremented, 1-based occurrence count of a site."""
        with self._lock:
            count = self._counts.get(site, 0) + 1
            self._counts[site] = count
            return count

    def _record(self, site: str) -> None:
        with self._lock:
            self._injected[site] = self._injected.get(site, 0) + 1
        m = _metrics.METRICS
        if m.enabled:
            m.inc("faults.injected")
            m.inc(f"faults.{site}")

    def counts(self) -> Dict[str, Dict[str, int]]:
        """Snapshot: per-site occurrence and injection counts."""
        with self._lock:
            return {
                "occurrences": dict(self._counts),
                "injected": dict(self._injected),
            }

    # -------------------------------------------------------------- triggers
    @staticmethod
    def _periodic(every: int, count: int) -> bool:
        return every > 0 and count % every == 0

    def _probabilistic(self, site: str, count: int) -> bool:
        """Seed-driven Bernoulli decision, reproducible per occurrence.

        A CRC of ``(seed, site, count)`` mapped into [0, 1) stands in for
        an RNG draw: deterministic across processes and replays, with no
        shared generator state to desynchronise.
        """
        rate = self.plan.crash_rate
        if rate <= 0.0:
            return False
        token = f"{self.plan.seed}:{site}:{count}".encode("utf-8")
        return (zlib.crc32(token) / 2**32) < rate

    # ----------------------------------------------------------------- sites
    def point_attempt(self, run_hash: str, attempt: int = 1) -> None:
        """Gate one point-execution attempt; raises to inject a crash.

        An injected hang (``hang_every``) sleeps before the crash check,
        so a plan can combine both (a hang that then fails).  Targeted
        ``crash_points`` prefixes fire on the point's first
        ``crash_point_attempts`` attempts regardless of global counters,
        which keeps the trigger deterministic under any executor's
        scheduling order.
        """
        plan = self.plan
        count = self._next_count("point")
        if self._periodic(plan.hang_every, count):
            self._record("hang")
            time.sleep(plan.hang_s)
        targeted = attempt <= plan.crash_point_attempts and any(
            run_hash.startswith(prefix) for prefix in plan.crash_points
        )
        periodic = self._periodic(plan.crash_every, count)
        probabilistic = self._probabilistic("point", count)
        if not (targeted or periodic or probabilistic):
            return
        with self._lock:
            if plan.crash_limit and self._crashes >= plan.crash_limit:
                return
            self._crashes += 1
        self._record("point")
        raise InjectedFault("point", count)

    def sink_write(self, run_hash: str) -> None:
        """Gate one result-sink write; raises to inject a write failure."""
        count = self._next_count("sink")
        if self._periodic(self.plan.sink_fail_every, count):
            self._record("sink")
            raise InjectedFault("sink", count)

    def torn_append(self, line: str) -> str:
        """Possibly truncate a store shard append mid-line.

        Returns the line to actually write: on every
        ``store_torn_every``-th append the line loses its second half and
        its newline — byte-for-byte what a process killed mid-``write``
        leaves behind.
        """
        count = self._next_count("store_append")
        if not self._periodic(self.plan.store_torn_every, count):
            return line
        self._record("store_torn")
        return line[: max(1, len(line) // 2)]

    def lease_heartbeat(self, worker_id: str) -> bool:
        """Whether a fleet lease heartbeat should actually be sent.

        False simulates a worker that lost connectivity: it keeps
        computing, but its lease expires and the reaper hands the point to
        someone else (the content-addressed store makes the double
        execution harmless).
        """
        count = self._next_count("heartbeat")
        if self._periodic(self.plan.lease_drop_every, count):
            self._record("lease_drop")
            return False
        return True

    def __repr__(self) -> str:
        with self._lock:
            fired = sum(self._injected.values())
        return f"FaultInjector(plan={self.plan.to_spec()!r}, fired={fired})"


#: Process-global injector slot.  Read via the module attribute at call
#: sites (``_faults.INJECTOR``) so install/uninstall take effect everywhere.
INJECTOR: Optional[FaultInjector] = None


def install(plan: FaultPlan) -> FaultInjector:
    """Install an injector for ``plan`` as the process-global instance."""
    global INJECTOR
    INJECTOR = FaultInjector(plan)
    return INJECTOR


def uninstall() -> None:
    """Remove the process-global injector (sites become no-ops again)."""
    global INJECTOR
    INJECTOR = None


def active_plan() -> Optional[FaultPlan]:
    """The plan of the currently installed injector, if any."""
    injector = INJECTOR
    return injector.plan if injector is not None else None


@contextmanager
def injecting(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Scope an injector: install on entry, restore the previous on exit."""
    global INJECTOR
    previous = INJECTOR
    injector = install(plan)
    try:
        yield injector
    finally:
        INJECTOR = previous
