"""Exception taxonomy of the fault-tolerance layer.

The retry machinery classifies every failure as *transient* (worth
retrying: the same point may succeed on the next attempt) or *fatal*
(deterministic: a simulation that raised ``ValueError`` on attempt one
will raise it on attempt two, so retrying only wastes time).  The split
is encoded in the class hierarchy so user code can participate: raise a
:class:`TransientPointError` subclass from custom executor plumbing and
the :class:`~repro.faults.retry.RetryPolicy` retries it.
"""

from __future__ import annotations

__all__ = [
    "TransientPointError",
    "FatalPointError",
    "PointTimeout",
    "InjectedFault",
]


class TransientPointError(RuntimeError):
    """A point failure that may succeed if the attempt is repeated.

    The retry policy's classifier treats this hierarchy — plus the
    environmental exceptions (:class:`TimeoutError`, :class:`OSError`,
    :class:`ConnectionError`) — as retryable; everything else is fatal.
    """


class FatalPointError(RuntimeError):
    """A point failure that is deterministic and must not be retried."""


class PointTimeout(TransientPointError):
    """A point exceeded the retry policy's per-point time budget.

    Timeouts are *cooperative*: the executors measure each attempt's wall
    time and classify an over-budget attempt as failed after the fact (a
    Python process cannot safely pre-empt a compute-bound simulation).
    A worker that hangs forever is instead handled one layer up, by the
    fleet's lease expiry.
    """


class InjectedFault(TransientPointError):
    """A failure raised on purpose by the fault-injection subsystem.

    Attributes
    ----------
    site:
        Injection site that fired (``"point"``, ``"sink"``, ...).
    count:
        1-based occurrence count at that site when the fault fired.
    """

    def __init__(self, site: str, count: int) -> None:
        super().__init__(f"injected fault at site {site!r} (occurrence {count})")
        self.site = site
        self.count = count

    def __reduce__(self) -> "tuple[type, tuple[str, int]]":
        # BaseException pickles by replaying ``args`` (the formatted
        # message), which does not match this two-parameter signature;
        # rebuild from (site, count) so the fault survives the trip back
        # from a process-pool worker.
        return (type(self), (self.site, self.count))
