"""repro.faults — deterministic fault injection and retry/degradation policy.

The robustness layer of the executor stack, in two halves:

* **Injection** (:mod:`~repro.faults.plan`, :mod:`~repro.faults.injector`):
  a seed-driven :class:`FaultPlan` describes which failures to inject
  (point crashes, hangs, sink-write failures, torn store appends, dropped
  lease heartbeats) and the process-global :class:`FaultInjector` executes
  it at instrumented sites.  Configure per call (``run(faults=...)``) or
  fleet-wide via the ``REPRO_FAULTS`` environment variable.

* **Recovery** (:mod:`~repro.faults.retry`): a :class:`RetryPolicy`
  retries transient failures with exponential backoff and deterministic
  jitter, enforces a cooperative per-point timeout, and — in
  ``on_error="record"`` mode — degrades a terminally failed point to a
  :class:`FailedPoint` record instead of aborting the grid.

Both halves are deterministic by construction: a chaos run replays
bit-identically given the same plan, policy, and execution order.
"""

from repro.faults.errors import (
    FatalPointError,
    InjectedFault,
    PointTimeout,
    TransientPointError,
)
from repro.faults.injector import (
    INJECTOR,
    FaultInjector,
    active_plan,
    injecting,
    install,
    uninstall,
)
from repro.faults.plan import FAULTS_ENV_VAR, FaultPlan
from repro.faults.retry import (
    FailedPoint,
    PointFailed,
    RetryPolicy,
    run_point_attempts,
)

__all__ = [
    "FAULTS_ENV_VAR",
    "FaultPlan",
    "FaultInjector",
    "INJECTOR",
    "install",
    "uninstall",
    "injecting",
    "active_plan",
    "TransientPointError",
    "FatalPointError",
    "PointTimeout",
    "InjectedFault",
    "RetryPolicy",
    "FailedPoint",
    "PointFailed",
    "run_point_attempts",
]
