"""repro.fleet — lease-based multi-process fleet execution.

The ROADMAP's distributed-executor seam, crossed as a service: a SQLite
:class:`WorkService` lease queue, :class:`FleetWorker` claim-execute-persist
loops (one per process, heartbeating their leases), and a
:func:`run_fleet` driver that reaps expired leases so killed workers
forfeit — never lose — their points.  Idempotency is inherited from the
content-addressed :class:`~repro.store.ResultStore`: every point is keyed
by :meth:`~repro.api.spec.RunPoint.run_hash`, so reclaimed or repeated work
dedupes to a free store hit.
"""

from repro.fleet.runner import FleetError, run_fleet, spawn_worker
from repro.fleet.service import (
    WorkItem,
    WorkService,
    payload_to_params,
    payload_to_point,
    params_to_payload,
    point_to_payload,
)
from repro.fleet.worker import FleetWorker, worker_process_main

__all__ = [
    "WorkService",
    "WorkItem",
    "FleetWorker",
    "worker_process_main",
    "run_fleet",
    "spawn_worker",
    "FleetError",
    "point_to_payload",
    "payload_to_point",
    "params_to_payload",
    "payload_to_params",
]
