"""Drive a fleet run end to end: enqueue, spawn workers, reap, assemble.

:func:`run_fleet` is the fleet counterpart of :func:`repro.api.facade.run`:
same :class:`~repro.api.spec.ExperimentSpec` in, same
:class:`~repro.api.resultset.ResultSet` out, but the grid is executed by
``n_workers`` *independent processes* coordinating only through the
:class:`~repro.fleet.service.WorkService` lease queue and the shared
:class:`~repro.store.ResultStore`.  The driver stays out of the data path:
it reaps expired leases, reports progress, and re-spawns a worker if the
whole fleet dies with work still queued — which is exactly what makes a
SIGKILLed worker a non-event (acceptance: one of two workers killed
mid-grid, the run still finishes with zero lost and zero duplicated
points).
"""

from __future__ import annotations

import multiprocessing
import time
import uuid
from pathlib import Path
from typing import List, Optional, Union

from repro.api.executors import ProgressCallback
from repro.api.resultset import ResultSet, RunRecord
from repro.api.spec import ExperimentSpec
from repro.faults.plan import FaultPlan
from repro.faults.retry import FailedPoint, RetryPolicy
from repro.fleet.service import WorkService, params_to_payload
from repro.fleet.worker import worker_process_main
from repro.store.store import ResultStore

__all__ = ["run_fleet", "spawn_worker", "FleetError"]


class FleetError(RuntimeError):
    """A fleet run could not account for every point."""


def spawn_worker(
    db_path: Union[str, Path],
    store_path: Union[str, Path],
    worker_id: Optional[str] = None,
    poll_s: float = 0.05,
    retry: Optional[RetryPolicy] = None,
    fault_spec: Optional[str] = None,
    lease_ttl_s: float = 10.0,
) -> multiprocessing.Process:
    """Start one fleet worker process (used by the driver and by tests
    that need a handle to SIGKILL)."""
    worker_id = worker_id or f"worker:{uuid.uuid4().hex[:8]}"
    process = multiprocessing.Process(
        target=worker_process_main,
        args=(str(db_path), str(store_path), worker_id),
        kwargs={
            "poll_s": poll_s,
            "retry": retry,
            "fault_spec": fault_spec,
            "lease_ttl_s": lease_ttl_s,
        },
        name=worker_id,
        daemon=True,
    )
    process.start()
    return process


def run_fleet(
    spec: ExperimentSpec,
    store: Union[ResultStore, str, Path],
    n_workers: int = 2,
    db_path: Union[None, str, Path] = None,
    lease_ttl_s: float = 10.0,
    poll_s: float = 0.05,
    retry: Optional[RetryPolicy] = None,
    faults: Union[None, str, FaultPlan] = None,
    progress: Optional[ProgressCallback] = None,
    deadline_s: Optional[float] = 600.0,
) -> ResultSet:
    """Execute a spec on a single-host multi-process fleet.

    Parameters
    ----------
    spec:
        The experiment grid; expanded deterministically as everywhere else.
    store:
        Shared result store (or its path).  Workers persist with
        ``fsync=True``; finished points of earlier runs are deduped, so an
        interrupted fleet resumes for free.
    n_workers:
        Worker processes to spawn.
    db_path:
        Lease database location; defaults to ``<store>/fleet.db``.
    lease_ttl_s:
        Lease TTL; heartbeats run at a quarter of it.
    poll_s:
        Worker sleep between claim attempts while peers hold leases.
    retry:
        In-worker retry policy for transient failures.
    faults:
        Fault plan (object, spec string, or None → ``REPRO_FAULTS``),
        shipped to every worker; counters restart per process.
    progress:
        ``progress(done, total)``, driven by the driver's monitor loop.
    deadline_s:
        Driver-side safety net: a fleet that has not finished after this
        many wall seconds raises :class:`FleetError` instead of hanging
        forever.  ``None`` disables.

    Returns the grid's :class:`ResultSet` in expansion order; points the
    queue parked as failed become error records
    (:meth:`~repro.api.resultset.ResultSet.errors`).
    """
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    points = spec.expand()
    store = store if isinstance(store, ResultStore) else ResultStore(store)
    if db_path is None:
        db_path = store.path / "fleet.db"
    service = WorkService(
        db_path, lease_ttl_s=lease_ttl_s, max_attempts=max(3, n_workers + 1)
    )
    service.set_meta("spec_hash", spec.spec_hash())
    service.set_meta("spec_name", spec.name)
    service.set_meta("params", params_to_payload(spec.params))
    service.enqueue(points)

    plan = FaultPlan.resolve(faults)
    fault_spec = plan.to_spec() if plan is not None else None

    workers: List[multiprocessing.Process] = [
        spawn_worker(
            db_path, store.path, worker_id=f"worker:{i}", poll_s=poll_s,
            retry=retry, fault_spec=fault_spec, lease_ttl_s=lease_ttl_s,
        )
        for i in range(n_workers)
    ]

    total = len(points)
    # The driver's wall-clock deadline is operational tooling, not
    # simulation state.
    started = time.time()  # lint: allow[KRN002]
    try:
        while service.unfinished() > 0:
            service.reap()
            if progress is not None:
                counts = service.counts()
                progress(counts["done"] + counts["failed"], total)
            if all(not w.is_alive() for w in workers):
                if service.unfinished() == 0:
                    break
                # The whole fleet died with work queued (e.g. every worker
                # was killed): spawn a fresh worker to finish the grid.
                workers.append(spawn_worker(
                    db_path, store.path,
                    worker_id=f"worker:respawn-{len(workers)}",
                    poll_s=poll_s, retry=retry, fault_spec=fault_spec,
                    lease_ttl_s=lease_ttl_s,
                ))
            elapsed = time.time() - started  # lint: allow[KRN002]
            if deadline_s is not None and elapsed > deadline_s:
                raise FleetError(
                    f"fleet did not finish within {deadline_s:g}s: "
                    f"{service.counts()}"
                )
            time.sleep(poll_s)
        for worker in workers:
            worker.join(timeout=10.0)
    finally:
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
    if progress is not None:
        counts = service.counts()
        progress(counts["done"] + counts["failed"], total)

    # ----------------------------------------------------------- assemble
    failed_by_hash = {
        run_hash: (error, attempts)
        for _position, run_hash, error, attempts in service.failed_rows()
    }
    records: List[RunRecord] = []
    for point in points:
        run_hash = point.run_hash()
        result = store.get(run_hash)
        if result is not None:
            records.append(RunRecord(point=point, result=result))
            continue
        if run_hash in failed_by_hash:
            error, attempts = failed_by_hash[run_hash]
            error_type, _, message = error.partition(": ")
            records.append(RunRecord(point=point, error=FailedPoint(
                run_hash=run_hash,
                error_type=error_type or "FleetPointFailed",
                message=message or error,
                attempts=attempts,
                transient=False,
            )))
            continue
        raise FleetError(
            f"point {run_hash} is neither stored nor marked failed: "
            f"{service.counts()}"
        )
    service.close()
    return ResultSet(records, name=spec.name)
