"""Fleet worker: claim leased points, execute, heartbeat, persist, repeat.

A :class:`FleetWorker` is the unit a fleet run spawns once per process.
Its loop is deliberately boring::

    reap -> claim -> (store dedupe?) -> execute (retry policy)
         -> store.put (fsync) -> complete -> repeat

Crash safety comes from the ordering: the result reaches the
content-addressed store *before* the lease is marked done, so a worker
killed between the two leaves a point whose re-execution is a free store
hit, never a lost result.  A background daemon thread heartbeats the lease
every ``lease_ttl_s / 4`` with a one-point
:class:`~repro.obs.report.RunReport` payload, so ``repro fleet status``
shows who is computing what; the fault injector's ``lease_heartbeat`` gate
can suppress beats to rehearse lease expiry under a live worker.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, Optional, Union

from repro.api.executors import _run_point
from repro.api.spec import RunPoint
from repro.faults import injector as _faults
from repro.faults.plan import FaultPlan
from repro.faults.retry import FailedPoint, PointFailed, RetryPolicy
from repro.fleet.service import WorkService, payload_to_params
from repro.obs import metrics as _metrics
from repro.obs.report import PointReport, RunReport
from repro.store.store import ResultStore

__all__ = ["FleetWorker", "worker_process_main"]


class FleetWorker:
    """One claim-execute-persist loop over a shared :class:`WorkService`.

    Parameters
    ----------
    service:
        The shared lease queue (or a database path to open one).
    store:
        Result store (or path).  Opened with ``fsync=True`` when a path is
        given: a completed point must survive this process being SIGKILLed
        immediately afterwards.
    worker_id:
        Stable identity used for leases; defaults to ``pid:<pid>``.
    poll_s:
        Sleep between claim attempts while peers still hold leases.
    retry:
        In-worker :class:`RetryPolicy` for transient point failures.
    """

    def __init__(
        self,
        service: Union[WorkService, str],
        store: Union[ResultStore, str],
        worker_id: Optional[str] = None,
        poll_s: float = 0.05,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.service = (
            service if isinstance(service, WorkService)
            else WorkService(service)
        )
        self.store = (
            store if isinstance(store, ResultStore)
            else ResultStore(store, fsync=True)
        )
        self.worker_id = worker_id or f"pid:{os.getpid()}"
        self.poll_s = poll_s
        self.retry = retry
        #: Points this worker marked done (simulated or deduped).
        self.completed = 0
        #: Points served straight from the store without simulating.
        self.dedup_hits = 0

    # -------------------------------------------------------------- heartbeat
    def _heartbeat_payload(self, position: int,
                           point: RunPoint) -> Dict[str, Any]:
        report = RunReport(
            spec_name="",
            spec_hash=str(self.service.get_meta("spec_hash") or ""),
            n_points=1,
            wall_s=None,
            points=[PointReport(
                position=position,
                run_hash=point.run_hash(),
                protocol=point.scenario.protocol,
                coords=point.coords_dict(),
                cache="in-progress",
                worker=self.worker_id,
            )],
            metrics={},
        )
        return report.to_payload()

    def _start_heartbeat(
        self, position: int, point: RunPoint
    ) -> threading.Event:
        """Heartbeat the point's lease until the returned event is set."""
        stop = threading.Event()
        interval = self.service.lease_ttl_s / 4.0
        run_hash = point.run_hash()
        payload = self._heartbeat_payload(position, point)

        def beat() -> None:
            while not stop.wait(interval):
                injector = _faults.INJECTOR
                if injector is not None and not injector.lease_heartbeat(
                    self.worker_id
                ):
                    continue  # injected connectivity loss: skip this beat
                if not self.service.heartbeat(
                    self.worker_id, run_hash, payload
                ):
                    return  # lease lost; nothing left to extend

        thread = threading.Thread(
            target=beat, name=f"heartbeat-{self.worker_id}", daemon=True
        )
        thread.start()
        return stop

    # ------------------------------------------------------------------- loop
    def run_one(self) -> bool:
        """Claim and finish at most one point; False when queue is empty."""
        self.service.reap()
        item = self.service.claim(self.worker_id)
        if item is None:
            return False
        point = item.point
        run_hash = point.run_hash()

        cached = self.store.get(run_hash)
        if cached is not None:
            # Someone (a prior attempt, a killed peer, an earlier run)
            # already paid for this point; completing without simulating is
            # what makes lease reclamation duplication-free.
            self.dedup_hits += 1
            m = _metrics.METRICS
            if m.enabled:
                m.inc("fleet.dedup_hits")
            if self.service.complete(self.worker_id, run_hash, executed=False):
                self.completed += 1
            return True

        params = payload_to_params(self.service.get_meta("params") or {})
        stop = self._start_heartbeat(item.position, point)
        try:
            outcome = _run_point(
                item.position, point, params, None, self.retry
            )
        except PointFailed as error:
            self.service.fail(self.worker_id, run_hash, str(error))
            return True
        except Exception as error:
            # No retry policy (or a non-point error): park the point rather
            # than crash the worker — the queue's attempt cap decides when
            # to give up for good.
            self.service.fail(
                self.worker_id, run_hash, f"{type(error).__name__}: {error}"
            )
            return True
        finally:
            stop.set()
        if isinstance(outcome, FailedPoint):
            self.service.fail(
                self.worker_id, run_hash,
                f"{outcome.error_type}: {outcome.message}"
            )
            return True
        self.store.put(run_hash, outcome, coords=point.coords_dict())
        if self.service.complete(self.worker_id, run_hash, executed=True):
            self.completed += 1
        return True

    def run(self) -> int:
        """Drain the queue; returns how many points this worker completed.

        Exits when no work is claimable *and* no peer holds a live lease —
        as long as someone is computing, stay around, because their lease
        may expire and need picking up.
        """
        while True:
            if self.run_one():
                continue
            if self.service.unfinished() == 0:
                return self.completed
            time.sleep(self.poll_s)

    def __repr__(self) -> str:
        return (
            f"FleetWorker({self.worker_id!r}, completed={self.completed}, "
            f"dedup_hits={self.dedup_hits})"
        )


def worker_process_main(
    db_path: str,
    store_path: str,
    worker_id: str,
    poll_s: float = 0.05,
    retry: Optional[RetryPolicy] = None,
    fault_spec: Optional[str] = None,
    lease_ttl_s: float = 10.0,
) -> None:
    """Entry point for a spawned fleet worker process.

    Installs the shipped fault plan (fresh counters — a forked process must
    not inherit the parent injector's state), then drains the queue.
    """
    if fault_spec:
        _faults.install(FaultPlan.from_spec(fault_spec))
    else:
        _faults.uninstall()
    worker = FleetWorker(
        WorkService(db_path, lease_ttl_s=lease_ttl_s),
        ResultStore(store_path, fsync=True),
        worker_id=worker_id,
        poll_s=poll_s,
        retry=retry,
    )
    worker.run()
