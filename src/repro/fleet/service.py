"""Lease-based work service: the coordination core of fleet execution.

A :class:`WorkService` is a single SQLite file shared by every worker of a
fleet run.  The grid's hash-addressed :class:`~repro.api.spec.RunPoint`
objects are enqueued once; workers then *claim* points under a TTL lease,
extend the lease with heartbeats while computing, and mark it done (or
failed) at the end.  A reaper pass — run by anyone, typically the driver
and each worker before claiming — returns expired leases to the queue, so
a worker that was SIGKILLed, hung, or lost connectivity forfeits its point
to a healthy peer.  Re-execution is harmless: results are persisted to the
content-addressed :class:`~repro.store.ResultStore` under ``run_hash()``,
and a claimed point whose hash is already stored completes without
simulating at all.

Why SQLite: the fleet is single-host multi-process first (the ROADMAP's
stepping stone to multi-host), and one WAL-mode database gives atomic
claims (``BEGIN IMMEDIATE``), durable state across worker crashes, and an
inspectable ``repro fleet status`` surface — with zero new dependencies.

Lease deadlines are wall-clock (``time.time``): they must be comparable
across processes, which the monotonic clock is not.
"""

from __future__ import annotations

import dataclasses
import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.spec import RunPoint
from repro.config import PriorityWeights, SimulationParameters
from repro.obs import metrics as _metrics
from repro.sim.scenario import Scenario

__all__ = [
    "WorkService",
    "WorkItem",
    "point_to_payload",
    "payload_to_point",
    "params_to_payload",
    "payload_to_params",
]


def _now() -> float:
    # Lease deadlines must be comparable across worker processes, which
    # only the wall clock is; never feeds back into simulation state.
    return time.time()  # lint: allow[KRN002]


# --------------------------------------------------------------- serialization
def point_to_payload(point: RunPoint) -> Dict[str, Any]:
    """JSON-serialisable form of a :class:`RunPoint` (tuples become lists)."""
    return {
        "index": point.index,
        "scenario": dataclasses.asdict(point.scenario),
        "param_overrides": [list(pair) for pair in point.param_overrides],
        "coords": [list(pair) for pair in point.coords],
        "params_digest": point.params_digest,
    }


def payload_to_point(payload: Dict[str, Any]) -> RunPoint:
    """Rebuild the exact :class:`RunPoint` a payload was dumped from."""
    return RunPoint(
        index=int(payload["index"]),
        scenario=Scenario(**payload["scenario"]),
        param_overrides=tuple(
            (str(k), v) for k, v in payload["param_overrides"]
        ),
        coords=tuple((str(k), v) for k, v in payload["coords"]),
        params_digest=str(payload["params_digest"]),
    )


def params_to_payload(params: SimulationParameters) -> Dict[str, Any]:
    """JSON-serialisable form of the shared simulation parameters."""
    return dataclasses.asdict(params)


def payload_to_params(payload: Dict[str, Any]) -> SimulationParameters:
    """Rebuild :class:`SimulationParameters` (tuple/nested fields restored)."""
    data = dict(payload)
    data["mode_throughputs"] = tuple(data["mode_throughputs"])
    data["priority"] = PriorityWeights(**data["priority"])
    return SimulationParameters(**data)


@dataclass(frozen=True)
class WorkItem:
    """One claimed unit of work: the point plus its queue position."""

    position: int
    point: RunPoint
    attempts: int


class WorkService:
    """SQLite-backed lease queue of run points (thread- and process-safe).

    Parameters
    ----------
    path:
        Database file; created on first use.  Every worker of a fleet run
        opens the same file.
    lease_ttl_s:
        How long a claim stays valid without a heartbeat.  Must comfortably
        exceed the heartbeat interval; points cost seconds, so a few
        seconds of TTL keeps reclamation prompt without false expiries.
    max_attempts:
        Claims per point before the reaper parks it as ``failed`` instead
        of re-queueing (guards against a poison point crashing every worker
        in turn, forever).
    """

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS points (
        run_hash     TEXT PRIMARY KEY,
        position     INTEGER NOT NULL,
        payload      TEXT NOT NULL,
        state        TEXT NOT NULL DEFAULT 'pending',
        owner        TEXT,
        deadline     REAL,
        attempts     INTEGER NOT NULL DEFAULT 0,
        executions   INTEGER NOT NULL DEFAULT 0,
        completions  INTEGER NOT NULL DEFAULT 0,
        error        TEXT,
        heartbeat    TEXT
    );
    CREATE INDEX IF NOT EXISTS idx_points_state
        ON points (state, position);
    CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    );
    """

    def __init__(
        self,
        path: Union[str, "Path"],
        lease_ttl_s: float = 10.0,
        max_attempts: int = 5,
    ) -> None:
        if lease_ttl_s <= 0:
            raise ValueError("lease_ttl_s must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.path = Path(path)
        self.lease_ttl_s = float(lease_ttl_s)
        self.max_attempts = int(max_attempts)
        # One connection per service instance; the heartbeat thread shares
        # it with the worker loop, so serialize access ourselves.
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            str(self.path), timeout=30.0, check_same_thread=False
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(self._SCHEMA)
        self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # ------------------------------------------------------------------- meta
    def set_meta(self, key: str, value: Any) -> None:
        """Store one JSON document under a key (spec hash, parameters...)."""
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                (key, json.dumps(value, sort_keys=True)),
            )
            self._conn.commit()

    def get_meta(self, key: str) -> Optional[Any]:
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = ?", (key,)
            ).fetchone()
        return json.loads(row[0]) if row is not None else None

    # ---------------------------------------------------------------- enqueue
    def enqueue(self, points: Sequence[RunPoint]) -> int:
        """Add the grid's points to the queue; returns how many were new.

        Idempotent by ``run_hash``: re-enqueueing an overlapping grid (or
        restarting a driver) never duplicates work, and a point already
        ``done`` stays done.
        """
        added = 0
        with self._lock:
            for position, point in enumerate(points):
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO points (run_hash, position, payload)"
                    " VALUES (?, ?, ?)",
                    (
                        point.run_hash(),
                        position,
                        json.dumps(point_to_payload(point), sort_keys=True),
                    ),
                )
                added += cursor.rowcount
            self._conn.commit()
        return added

    # ------------------------------------------------------------------ leases
    def claim(self, worker_id: str) -> Optional[WorkItem]:
        """Atomically lease the lowest-position pending point, if any.

        Expired leases are reaped first, so a claim right after a peer's
        death picks up its forfeited point.  Returns ``None`` when nothing
        is pending (work may still be in flight under other leases — check
        :meth:`unfinished`).
        """
        deadline = _now() + self.lease_ttl_s
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._reap_locked()
                row = self._conn.execute(
                    "SELECT run_hash, position, payload, attempts FROM points"
                    " WHERE state = 'pending' ORDER BY position LIMIT 1"
                ).fetchone()
                if row is None:
                    self._conn.commit()
                    return None
                run_hash, position, payload, attempts = row
                self._conn.execute(
                    "UPDATE points SET state = 'leased', owner = ?,"
                    " deadline = ?, attempts = attempts + 1"
                    " WHERE run_hash = ?",
                    (worker_id, deadline, run_hash),
                )
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return WorkItem(
            position=int(position),
            point=payload_to_point(json.loads(payload)),
            attempts=int(attempts) + 1,
        )

    def heartbeat(
        self, worker_id: str, run_hash: str, payload: Optional[Dict[str, Any]] = None
    ) -> bool:
        """Extend a lease (and attach a progress payload, e.g. a RunReport).

        Returns False when the lease is no longer held — expired and
        reclaimed, or completed by someone else — in which case the worker
        should abandon the point (its eventual result is still safe to
        store: the store is content-addressed).
        """
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE points SET deadline = ?, heartbeat = ?"
                " WHERE run_hash = ? AND owner = ? AND state = 'leased'",
                (
                    _now() + self.lease_ttl_s,
                    json.dumps(payload, sort_keys=True) if payload else None,
                    run_hash,
                    worker_id,
                ),
            )
            self._conn.commit()
        return cursor.rowcount == 1

    def complete(self, worker_id: str, run_hash: str, executed: bool) -> bool:
        """Mark a leased point done; ``executed`` distinguishes a fresh
        simulation from a store-dedupe hit.  Returns False when the lease
        was lost (the point is *not* marked done by this call then).
        """
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE points SET state = 'done', owner = NULL,"
                " deadline = NULL, error = NULL,"
                " completions = completions + 1,"
                " executions = executions + ?"
                " WHERE run_hash = ? AND owner = ? AND state = 'leased'",
                (1 if executed else 0, run_hash, worker_id),
            )
            self._conn.commit()
        return cursor.rowcount == 1

    def fail(self, worker_id: str, run_hash: str, error: str) -> bool:
        """Park a leased point as terminally failed (no more re-queues)."""
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE points SET state = 'failed', owner = NULL,"
                " deadline = NULL, error = ?"
                " WHERE run_hash = ? AND owner = ? AND state = 'leased'",
                (error, run_hash, worker_id),
            )
            self._conn.commit()
        return cursor.rowcount == 1

    # ------------------------------------------------------------------ reaper
    def _reap_locked(self) -> int:
        """Reclaim expired leases; caller holds the lock and a transaction."""
        now = _now()
        expired = self._conn.execute(
            "SELECT run_hash, attempts FROM points"
            " WHERE state = 'leased' AND deadline < ?",
            (now,),
        ).fetchall()
        if not expired:
            return 0
        reclaimed = 0
        for run_hash, attempts in expired:
            if attempts >= self.max_attempts:
                self._conn.execute(
                    "UPDATE points SET state = 'failed', owner = NULL,"
                    " deadline = NULL, error = ? WHERE run_hash = ?",
                    (
                        f"lease expired after {attempts} attempts",
                        run_hash,
                    ),
                )
            else:
                self._conn.execute(
                    "UPDATE points SET state = 'pending', owner = NULL,"
                    " deadline = NULL WHERE run_hash = ?",
                    (run_hash,),
                )
                reclaimed += 1
        m = _metrics.METRICS
        if m.enabled:
            m.inc("lease.expired", len(expired))
            if reclaimed:
                m.inc("lease.reclaimed", reclaimed)
        return reclaimed

    def reap(self) -> int:
        """Reclaim expired leases; returns how many went back to pending."""
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                reclaimed = self._reap_locked()
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return reclaimed

    # ----------------------------------------------------------------- queries
    def counts(self) -> Dict[str, int]:
        """Point counts per state plus execution/completion totals."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) FROM points GROUP BY state"
            ).fetchall()
            totals = self._conn.execute(
                "SELECT COALESCE(SUM(executions), 0),"
                " COALESCE(SUM(completions), 0), COUNT(*) FROM points"
            ).fetchone()
        counts = {state: 0 for state in ("pending", "leased", "done", "failed")}
        counts.update({state: int(n) for state, n in rows})
        counts["executions"] = int(totals[0])
        counts["completions"] = int(totals[1])
        counts["total"] = int(totals[2])
        return counts

    def unfinished(self) -> int:
        """Points not yet done or terminally failed."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM points"
                " WHERE state IN ('pending', 'leased')"
            ).fetchone()
        return int(row[0])

    def failed_rows(self) -> List[Tuple[int, str, str, int]]:
        """``(position, run_hash, error, attempts)`` of failed points."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT position, run_hash, error, attempts FROM points"
                " WHERE state = 'failed' ORDER BY position"
            ).fetchall()
        return [
            (int(p), str(h), str(e or ""), int(a)) for p, h, e, a in rows
        ]

    def snapshot(self) -> List[Dict[str, Any]]:
        """Full queue state, one row per point (``repro fleet status``)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT run_hash, position, state, owner, deadline, attempts,"
                " executions, completions, error, heartbeat FROM points"
                " ORDER BY position"
            ).fetchall()
        now = _now()
        out: List[Dict[str, Any]] = []
        for (run_hash, position, state, owner, deadline, attempts,
             executions, completions, error, heartbeat) in rows:
            out.append({
                "run_hash": run_hash,
                "position": int(position),
                "state": state,
                "owner": owner,
                "lease_remaining_s": (
                    round(float(deadline) - now, 3)
                    if deadline is not None else None
                ),
                "attempts": int(attempts),
                "executions": int(executions),
                "completions": int(completions),
                "error": error,
                "heartbeat": json.loads(heartbeat) if heartbeat else None,
            })
        return out

    def __repr__(self) -> str:
        counts = self.counts()
        return (
            f"WorkService({str(self.path)!r}, ttl={self.lease_ttl_s:g}s, "
            f"pending={counts['pending']}, leased={counts['leased']}, "
            f"done={counts['done']}, failed={counts['failed']})"
        )
