"""Simulation parameters (the paper's Table 1) and protocol constants.

The paper evaluates all six protocols on a common platform whose parameters
are summarised in its Table 1.  The table itself is not legible in the
archived scan, but every load-bearing value is also stated in the prose and
is captured here:

* transmission bandwidth of 320 kHz, speech source of 8 kbit/s (Section 5);
* TDMA frame duration of 2.5 ms (Section 4.1);
* voice packet period of 20 ms and a 20 ms voice-packet deadline
  (Sections 3.4 and 5.1, footnote 4);
* exponential talkspurt / silence durations with means 1.0 s and 1.35 s
  (Section 2, after Gruber & Strawczynski);
* exponential data-burst inter-arrival with mean 1 s and exponential burst
  size with mean 100 packets (Section 2);
* permission probabilities ``p_v`` and ``p_d`` gating request transmission
  (Section 2; the numerical values are chosen here and documented as
  reproduction defaults);
* a 6-mode adaptive PHY with normalised throughput from 1/2 to 5
  (Section 4.2), operated in constant-BER mode;
* mean / maximum mobile speeds of 50 / 80 km/h, Doppler spread ~100 Hz,
  short-term coherence time ~10 ms, shadowing time scale ~1 s (Section 4.2);
* an acknowledgement time-out of five minislots (Section 4.1);
* RMAV's ``P_max = 10`` slots per data grant and DRMA's conversion of an idle
  information slot into ``N_x`` request minislots (Section 3).

Everything configurable in the reproduction funnels through
:class:`SimulationParameters` so that experiments, tests and benchmarks share
a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

__all__ = ["PriorityWeights", "SimulationParameters"]


@dataclass(frozen=True)
class PriorityWeights:
    """Weights of the CHARISMA priority metric (paper equation (2)).

    The metric of request *i* is::

        phi_i = alpha * f(CSI_i) + beta_v^{T_d}          - V    (voice)
        phi_i = alpha * f(CSI_i) + beta_d^{T_w} + delta        (data)

    where ``f(CSI)`` is the normalised throughput the adaptive PHY would
    deliver at the request's estimated CSI, ``T_d`` is the number of frames
    remaining before the voice deadline, ``T_w`` the number of frames a data
    request has waited, and the exponentially-shaped second term grows as the
    deadline approaches / the wait lengthens.  Higher values mean higher
    priority.

    Attributes
    ----------
    alpha_voice, alpha_data:
        Weight of the CSI (throughput) term for voice / data requests.
    beta_voice, beta_data:
        Forgetting factors in (0, 1); the urgency term is ``beta**frames``
        subtracted from 1 so that it increases as frames elapse.
    urgency_weight_voice, urgency_weight_data:
        Scale applied to the urgency term.
    voice_offset:
        Constant priority offset ``V`` added to voice requests so that voice
        outranks data at equal channel quality (the paper subtracts ``-V``
        from data; adding to voice is equivalent).
    """

    alpha_voice: float = 1.0
    alpha_data: float = 1.0
    beta_voice: float = 0.5
    beta_data: float = 0.85
    urgency_weight_voice: float = 12.0
    urgency_weight_data: float = 2.0
    voice_offset: float = 10.0

    def __post_init__(self) -> None:
        for name in ("alpha_voice", "alpha_data", "urgency_weight_voice",
                     "urgency_weight_data"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        for name in ("beta_voice", "beta_data"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ValueError(f"{name} must lie strictly between 0 and 1")


@dataclass(frozen=True)
class SimulationParameters:
    """All tunable parameters of the common simulation platform (Table 1)."""

    # --- air interface -----------------------------------------------------
    bandwidth_hz: float = 320_000.0
    """Total uplink transmission bandwidth (Hz)."""

    frame_duration_s: float = 0.0025
    """TDMA frame duration (seconds); the paper uses 2.5 ms."""

    n_request_slots: int = 10
    """Number of request minislots ``N_r`` per uplink frame.

    Kept slightly larger than the number of information slots, as the paper
    prescribes, to provide enough contention opportunities.
    """

    n_info_slots: int = 8
    """Number of information slots ``N_i`` per uplink frame.

    All six protocols are given the same information-slot budget so that the
    comparison isolates the access-control policies; the request-capacity
    mechanisms (static minislots, auction slots, converted idle slots, the
    single competitive slot) are what differ between them.
    """

    n_pilot_slots: int = 3
    """Number of pilot-symbol slots ``N_b`` (CSI polling capacity) per frame."""

    ack_timeout_minislots: int = 5
    """Acknowledgement time-out, in minislots, before a request is retried."""

    # --- voice traffic ------------------------------------------------------
    voice_bit_rate_bps: float = 8_000.0
    """Speech source rate (bit/s), as in GSM/CDMA systems."""

    voice_packet_period_s: float = 0.020
    """One voice packet is produced every 20 ms during a talkspurt."""

    voice_deadline_s: float = 0.020
    """A voice packet is dropped if not transmitted within 20 ms."""

    mean_talkspurt_s: float = 1.0
    """Mean of the exponentially distributed talkspurt duration."""

    mean_silence_s: float = 1.35
    """Mean of the exponentially distributed silence duration."""

    voice_permission_probability: float = 0.3
    """Permission probability ``p_v`` for transmitting a voice request."""

    voice_loss_threshold: float = 0.01
    """QoS limit on voice packet loss (1 %)."""

    # --- data traffic -------------------------------------------------------
    mean_data_interarrival_s: float = 1.0
    """Mean of the exponential inter-arrival time of data bursts."""

    mean_data_burst_packets: float = 100.0
    """Mean of the exponentially distributed burst size (packets)."""

    data_permission_probability: float = 0.03
    """Permission probability ``p_d`` for transmitting a data request.

    Deliberately small: a data terminal keeps contending for every burst
    instalment, so with tens of active data users a larger value would drive
    the slotted contention into collision collapse (the thrashing the paper
    describes).  The value trades a little extra access delay at light load
    for stability across the evaluated population range.
    """

    data_qos_delay_s: float = 1.0
    """Delay component of the data QoS operating point used in Section 5.2."""

    data_qos_throughput: float = 0.25
    """Per-user throughput component of the data QoS operating point."""

    # --- physical layer -----------------------------------------------------
    target_ber: float = 1e-6
    """Target bit-error rate of the constant-BER adaptive PHY.

    Chosen so that a 160-bit packet transmitted inside the adaptation range is
    received error-free with probability better than 99.98 %, matching the
    paper's observation that CHARISMA's residual loss at low load is
    negligible.
    """

    mode_throughputs: Tuple[float, ...] = (0.5, 1.0, 2.0, 3.0, 4.0, 5.0)
    """Normalised throughput (information bits per symbol) of the 6 ABICM modes."""

    reference_throughput: float = 1.0
    """Normalised throughput corresponding to one packet per information slot.

    The fixed-rate PHY of D-TDMA/FR, RAMA, RMAV and DRMA always operates at
    this reference rate; an adaptive-PHY slot in mode ``q`` carries
    ``mode_throughputs[q] / reference_throughput`` packets.
    """

    packet_size_bits: int = 160
    """Payload of one packet (8 kbit/s x 20 ms = 160 bits)."""

    mean_snr_db: float = 28.5
    """Average received SNR at unit composite channel amplitude.

    Calibrated so the fixed-rate baseline's transmission-error loss floor lies
    below the 1 % voice QoS threshold (the paper's baselines do cross the 1 %
    line on load, so their error floor must sit beneath it) while deep fades
    remain frequent enough for channel-adaptive scheduling to pay off.
    """

    pilot_symbols_per_request: int = 16
    """Known pilot symbols embedded in a request packet for CSI estimation."""

    csi_validity_frames: int = 2
    """Frames for which an estimated CSI value remains trustworthy."""

    # --- channel ------------------------------------------------------------
    mobile_speed_kmh: float = 50.0
    """Mean mobile speed (km/h); the paper also sweeps 10-80 km/h."""

    max_mobile_speed_kmh: float = 80.0
    """Maximum mobile speed (km/h)."""

    shadow_std_db: float = 4.0
    """Standard deviation of the log-normal shadowing (dB)."""

    shadow_mean_db: float = 0.0
    """Mean of the log-normal shadowing (dB)."""

    shadow_decorrelation_s: float = 1.0
    """Decorrelation time of the shadowing process (seconds)."""

    # --- baseline-protocol constants ----------------------------------------
    rmav_pmax: int = 10
    """RMAV: maximum information slots granted to one data request."""

    drma_minislots_per_info_slot: int = 3
    """DRMA: number of request minislots an idle information slot converts to."""

    rama_id_digits: int = 4
    """RAMA: number of digits of the randomly generated auction ID."""

    rama_digit_base: int = 8
    """RAMA: radix of each auction ID digit (one orthogonal frequency each)."""

    rama_auction_slots: int = 3
    """RAMA: number of auction slots ``N_a`` per frame."""

    # --- CHARISMA -----------------------------------------------------------
    priority: PriorityWeights = field(default_factory=PriorityWeights)
    """Weights of the CHARISMA priority metric."""

    request_queue_capacity: int = 64
    """Maximum number of backlog requests the base-station queue stores."""

    # ------------------------------------------------------------------ api
    def __post_init__(self) -> None:
        positive = (
            "bandwidth_hz", "frame_duration_s", "voice_bit_rate_bps",
            "voice_packet_period_s", "voice_deadline_s", "mean_talkspurt_s",
            "mean_silence_s", "mean_data_interarrival_s",
            "mean_data_burst_packets", "target_ber", "reference_throughput",
            "mobile_speed_kmh", "shadow_decorrelation_s", "packet_size_bits",
        )
        for name in positive:
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        non_negative_ints = (
            "n_request_slots", "n_info_slots", "n_pilot_slots",
            "ack_timeout_minislots", "pilot_symbols_per_request",
            "csi_validity_frames", "rmav_pmax",
            "drma_minislots_per_info_slot", "rama_id_digits",
            "rama_digit_base", "rama_auction_slots", "request_queue_capacity",
        )
        for name in non_negative_ints:
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1")
        for name in ("voice_permission_probability", "data_permission_probability"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must lie in (0, 1]")
        if not 0.0 < self.voice_loss_threshold < 1.0:
            raise ValueError("voice_loss_threshold must lie in (0, 1)")
        if not 0.0 < self.target_ber < 0.5:
            raise ValueError("target_ber must lie in (0, 0.5)")
        if len(self.mode_throughputs) < 2:
            raise ValueError("mode_throughputs needs at least two modes")
        if list(self.mode_throughputs) != sorted(self.mode_throughputs):
            raise ValueError("mode_throughputs must be sorted ascending")
        if self.shadow_std_db < 0:
            raise ValueError("shadow_std_db must be non-negative")

    @property
    def frames_per_voice_period(self) -> int:
        """Number of TDMA frames per 20 ms voice packet period (8 by default)."""
        return max(1, int(round(self.voice_packet_period_s / self.frame_duration_s)))

    @property
    def voice_deadline_frames(self) -> int:
        """Voice deadline expressed in frames."""
        return max(1, int(round(self.voice_deadline_s / self.frame_duration_s)))

    @property
    def frames_per_second(self) -> float:
        """Number of TDMA frames per second."""
        return 1.0 / self.frame_duration_s

    @property
    def n_modes(self) -> int:
        """Number of adaptive-PHY transmission modes."""
        return len(self.mode_throughputs)

    def with_overrides(self, **overrides) -> "SimulationParameters":
        """Return a copy with the given fields replaced (validation re-runs)."""
        return replace(self, **overrides)

    def describe(self) -> Dict[str, object]:
        """Dictionary view used by the Table 1 benchmark and EXPERIMENTS.md."""
        return {
            "bandwidth_hz": self.bandwidth_hz,
            "frame_duration_ms": self.frame_duration_s * 1e3,
            "request_slots_per_frame": self.n_request_slots,
            "info_slots_per_frame": self.n_info_slots,
            "pilot_slots_per_frame": self.n_pilot_slots,
            "voice_bit_rate_kbps": self.voice_bit_rate_bps / 1e3,
            "voice_packet_period_ms": self.voice_packet_period_s * 1e3,
            "voice_deadline_ms": self.voice_deadline_s * 1e3,
            "mean_talkspurt_s": self.mean_talkspurt_s,
            "mean_silence_s": self.mean_silence_s,
            "voice_permission_probability": self.voice_permission_probability,
            "data_permission_probability": self.data_permission_probability,
            "mean_data_interarrival_s": self.mean_data_interarrival_s,
            "mean_data_burst_packets": self.mean_data_burst_packets,
            "adaptive_modes": list(self.mode_throughputs),
            "target_ber": self.target_ber,
            "mean_snr_db": self.mean_snr_db,
            "mobile_speed_kmh": self.mobile_speed_kmh,
            "shadow_std_db": self.shadow_std_db,
            "packet_size_bits": self.packet_size_bits,
        }
