"""Doppler spread and coherence-time helpers.

The paper assumes a mean mobile speed of 50 km/h (maximum 80 km/h), which it
translates into a Doppler spread of ``f_d ~ 100 Hz`` and a short-term fading
coherence time of roughly ``T_c ~ 1 / f_d ~ 10 ms`` (equation (1) of the
paper).  These helpers perform the same conversions for arbitrary speeds and
carrier frequencies so that the Section 5.3.3 mobile-speed ablation can be
reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

SPEED_OF_LIGHT_MPS: float = 299_792_458.0
"""Propagation speed of radio waves in free space (m/s)."""

#: Carrier frequency that makes a 50 km/h mobile produce the paper's quoted
#: 100 Hz Doppler spread.  (2.16 GHz, i.e. an IMT-2000 style band.)
DEFAULT_CARRIER_HZ: float = 2.158e9


def speed_to_mps(speed_kmh: float) -> float:
    """Convert a speed in km/h to m/s.

    Parameters
    ----------
    speed_kmh:
        Mobile speed in kilometres per hour.  Must be non-negative.
    """
    if speed_kmh < 0:
        raise ValueError(f"speed must be non-negative, got {speed_kmh}")
    return speed_kmh * 1000.0 / 3600.0


def doppler_spread(speed_kmh: float, carrier_hz: float = DEFAULT_CARRIER_HZ) -> float:
    """Maximum Doppler shift ``f_d = v * f_c / c`` in Hz.

    Parameters
    ----------
    speed_kmh:
        Mobile speed in km/h.
    carrier_hz:
        Carrier frequency in Hz.  The default is chosen so that 50 km/h maps
        to the paper's quoted 100 Hz Doppler spread.
    """
    if carrier_hz <= 0:
        raise ValueError(f"carrier frequency must be positive, got {carrier_hz}")
    return speed_to_mps(speed_kmh) * carrier_hz / SPEED_OF_LIGHT_MPS


def coherence_time(doppler_hz: float) -> float:
    """Coherence time ``T_c ~ 1 / f_d`` in seconds (paper eq. (1)).

    A zero Doppler spread (static terminal) yields an effectively infinite
    coherence time; we return ``float('inf')`` in that case rather than
    raising, because a static user is a legitimate simulation scenario.
    """
    if doppler_hz < 0:
        raise ValueError(f"Doppler spread must be non-negative, got {doppler_hz}")
    if doppler_hz == 0:
        return float("inf")
    return 1.0 / doppler_hz


@dataclass(frozen=True)
class DopplerModel:
    """Bundle of mobility-related channel parameters.

    Attributes
    ----------
    speed_kmh:
        Mobile speed in km/h (the paper's default scenario uses 50 km/h).
    carrier_hz:
        Carrier frequency in Hz.
    """

    speed_kmh: float = 50.0
    carrier_hz: float = DEFAULT_CARRIER_HZ

    def __post_init__(self) -> None:
        if self.speed_kmh < 0:
            raise ValueError("speed_kmh must be non-negative")
        if self.carrier_hz <= 0:
            raise ValueError("carrier_hz must be positive")

    @property
    def speed_mps(self) -> float:
        """Mobile speed in metres per second."""
        return speed_to_mps(self.speed_kmh)

    @property
    def doppler_hz(self) -> float:
        """Maximum Doppler shift in Hz."""
        return doppler_spread(self.speed_kmh, self.carrier_hz)

    @property
    def coherence_time_s(self) -> float:
        """Short-term fading coherence time in seconds."""
        return coherence_time(self.doppler_hz)

    def frames_per_coherence(self, frame_duration_s: float) -> float:
        """Number of TDMA frames spanned by one coherence time.

        The paper argues CSI gathered in one frame stays valid for roughly
        ``T_c / T_frame`` frames (about 4 at 50 km/h with 2.5 ms frames).
        """
        if frame_duration_s <= 0:
            raise ValueError("frame_duration_s must be positive")
        tc = self.coherence_time_s
        if tc == float("inf"):
            return float("inf")
        return tc / frame_duration_s

    def with_speed(self, speed_kmh: float) -> "DopplerModel":
        """Return a copy of this model at a different mobile speed."""
        return DopplerModel(speed_kmh=speed_kmh, carrier_hz=self.carrier_hz)
