"""Short-term (fast) fading processes.

The paper models the short-term component ``c_s(t)`` as a Rayleigh-distributed
envelope with ``E[c_s^2] = 1`` and a coherence time of roughly ``1 / f_d``
(about 10 ms at 50 km/h).  Two samplers are provided:

* :class:`RayleighFading` — a first-order Gauss--Markov (AR(1)) recursion on
  the complex channel gain.  The lag-one correlation follows the Clarke model
  autocorrelation ``rho = J0(2 pi f_d dt)``, which preserves the coherence
  time while remaining O(1) per step.  This is the sampler used inside the
  frame-synchronous simulation engine.

* :class:`JakesFading` — a deterministic sum-of-sinusoids (Jakes) generator
  used to produce continuous fading traces for the Fig. 5 style plots and for
  validating the AR(1) sampler's second-order statistics.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy.signal import lfilter
from scipy.special import j0

__all__ = ["RayleighFading", "JakesFading", "clarke_correlation"]


def clarke_correlation(doppler_hz: float, dt: float) -> float:
    """Clarke-model temporal autocorrelation ``J0(2 pi f_d dt)``.

    Parameters
    ----------
    doppler_hz:
        Maximum Doppler shift in Hz.
    dt:
        Time separation in seconds.

    Returns
    -------
    float
        The normalised autocorrelation of the complex gain, clipped to
        ``[0, 1)`` so that the AR(1) recursion driven by it remains a proper
        (non-degenerate, stable) stochastic process even for very large
        ``f_d * dt`` where ``J0`` oscillates slightly negative.
    """
    if doppler_hz < 0:
        raise ValueError("doppler_hz must be non-negative")
    if dt < 0:
        raise ValueError("dt must be non-negative")
    rho = float(j0(2.0 * math.pi * doppler_hz * dt))
    # A negative correlation from the oscillating Bessel tail would make the
    # Gauss-Markov recursion alternate sign unphysically; clamp to [0, 1).
    return min(max(rho, 0.0), 1.0 - 1e-12)


class RayleighFading:
    """AR(1) Gauss--Markov sampler of a Rayleigh-faded complex channel gain.

    The complex gain ``g_k`` evolves as::

        g_{k+1} = rho * g_k + sqrt(1 - rho^2) * w_k,     w_k ~ CN(0, sigma^2)

    with ``rho = J0(2 pi f_d dt)``.  The envelope ``|g_k|`` is Rayleigh with
    ``E[|g_k|^2] = mean_square`` (unity by default, as assumed in the paper).

    Parameters
    ----------
    doppler_hz:
        Maximum Doppler shift in Hz; controls the coherence time.
    sample_interval_s:
        Default time advance per :meth:`advance` call (the TDMA frame
        duration in the simulation engine).
    rng:
        NumPy random generator.  A dedicated generator per user keeps the
        per-user channels statistically independent as required by the paper.
    mean_square:
        Average envelope power ``E[c_s^2]``.
    """

    def __init__(
        self,
        doppler_hz: float,
        sample_interval_s: float,
        rng: np.random.Generator,
        mean_square: float = 1.0,
    ) -> None:
        if sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        if mean_square <= 0:
            raise ValueError("mean_square must be positive")
        self._doppler_hz = float(doppler_hz)
        self._dt = float(sample_interval_s)
        self._rng = rng
        self._mean_square = float(mean_square)
        self._rho = clarke_correlation(self._doppler_hz, self._dt)
        self._sigma_component = math.sqrt(self._mean_square / 2.0)
        self._gain = self._draw_stationary()

    # ------------------------------------------------------------------ API
    @property
    def doppler_hz(self) -> float:
        """Maximum Doppler shift of the process in Hz."""
        return self._doppler_hz

    @property
    def sample_interval_s(self) -> float:
        """Default advance interval in seconds."""
        return self._dt

    @property
    def correlation(self) -> float:
        """Lag-one correlation of the complex gain at the default interval."""
        return self._rho

    @property
    def complex_gain(self) -> complex:
        """Current complex channel gain."""
        return complex(self._gain)

    @property
    def envelope(self) -> float:
        """Current fading envelope ``|g|`` (the CSI amplitude contribution)."""
        return abs(self._gain)

    @property
    def power(self) -> float:
        """Current instantaneous power ``|g|^2``."""
        return abs(self._gain) ** 2

    def advance(self, dt: Optional[float] = None) -> float:
        """Advance the process by ``dt`` seconds and return the new envelope.

        When ``dt`` differs from the construction-time sample interval the
        correlation coefficient is recomputed for that specific step, so the
        process remains consistent under irregular sampling.
        """
        if dt is None or dt == self._dt:
            rho = self._rho
        else:
            if dt <= 0:
                raise ValueError("dt must be positive")
            rho = clarke_correlation(self._doppler_hz, dt)
        innovation_scale = self._sigma_component * math.sqrt(1.0 - rho * rho)
        noise = self._rng.normal(scale=innovation_scale) + 1j * self._rng.normal(
            scale=innovation_scale
        )
        self._gain = rho * self._gain + noise
        return abs(self._gain)

    def reset(self) -> float:
        """Redraw the state from the stationary distribution."""
        self._gain = self._draw_stationary()
        return abs(self._gain)

    def trace(self, n_samples: int, dt: Optional[float] = None) -> np.ndarray:
        """Generate ``n_samples`` successive envelope samples.

        The internal state is advanced, i.e. the trace continues from the
        current gain rather than restarting from the stationary distribution.

        The whole trace is produced by one batched noise draw and one
        linear-filter evaluation of the AR(1) recursion instead of a Python
        loop of :meth:`advance` calls.  The draw order (real, imaginary per
        step) matches the loop exactly, so both paths consume the generator
        identically and realise the same process; the samples agree with
        the per-step path to within a few ULP (the filter's accumulation
        order differs slightly).
        """
        if n_samples < 0:
            raise ValueError("n_samples must be non-negative")
        if n_samples == 0:
            return np.empty(0, dtype=float)
        rho = self._step_correlation(dt)
        scale = self._sigma_component * math.sqrt(1.0 - rho * rho)
        noise = self._rng.normal(scale=scale, size=2 * n_samples)
        return self._trace_from_scaled_noise(noise[0::2], noise[1::2], rho)

    def _step_correlation(self, dt: Optional[float]) -> float:
        if dt is None or dt == self._dt:
            return self._rho
        if dt <= 0:
            raise ValueError("dt must be positive")
        return clarke_correlation(self._doppler_hz, dt)

    def _trace_from_scaled_noise(
        self, noise_real: np.ndarray, noise_imag: np.ndarray, rho: float
    ) -> np.ndarray:
        """Run the AR(1) recursion over pre-drawn (already scaled) noise.

        Split out so :meth:`repro.channel.composite.CompositeChannel.trace`
        can interleave its own draws with the shadowing process while
        reusing the same vectorised recursion.
        """
        innovations = noise_real + 1j * noise_imag
        gains, _ = lfilter(
            [1.0],
            [1.0, -rho],
            innovations,
            zi=np.array([rho * self._gain], dtype=complex),
        )
        self._gain = complex(gains[-1])
        return np.abs(gains)

    # ------------------------------------------------------------ internals
    def _draw_stationary(self) -> complex:
        return complex(
            self._rng.normal(scale=self._sigma_component),
            self._rng.normal(scale=self._sigma_component),
        )


class JakesFading:
    """Sum-of-sinusoids (Jakes/Clarke) fading trace generator.

    This deterministic-phase generator produces a continuous fading waveform
    with the classic Clarke Doppler spectrum.  It is used to regenerate the
    Fig. 5 style "measured fading" sample and to cross-validate the AR(1)
    sampler in the test-suite; the simulation engine itself uses
    :class:`RayleighFading` for speed.

    Parameters
    ----------
    doppler_hz:
        Maximum Doppler shift in Hz.
    n_oscillators:
        Number of sinusoidal scatterers per quadrature branch.  Eight or more
        already gives an excellent Rayleigh approximation.
    rng:
        Random generator used to draw the scatterer phases.
    mean_square:
        Average envelope power.
    """

    def __init__(
        self,
        doppler_hz: float,
        n_oscillators: int = 16,
        rng: Optional[np.random.Generator] = None,
        mean_square: float = 1.0,
    ) -> None:
        if doppler_hz <= 0:
            raise ValueError("doppler_hz must be positive for a Jakes generator")
        if n_oscillators < 1:
            raise ValueError("n_oscillators must be >= 1")
        if mean_square <= 0:
            raise ValueError("mean_square must be positive")
        # Seedless convenience default for standalone/unit-test use only;
        # engine-owned instances always inject a RandomStreams generator.
        rng = rng if rng is not None else np.random.default_rng()  # lint: allow[RNG001]
        self._fd = float(doppler_hz)
        self._n = int(n_oscillators)
        self._mean_square = float(mean_square)
        # Scatterer arrival angles spread uniformly around the circle with a
        # random rotation; independent random phases per oscillator and branch.
        rotation = rng.uniform(0.0, 2.0 * math.pi)
        k = np.arange(self._n)
        self._angles = 2.0 * math.pi * (k + 0.5) / self._n + rotation
        self._phases_i = rng.uniform(0.0, 2.0 * math.pi, size=self._n)
        self._phases_q = rng.uniform(0.0, 2.0 * math.pi, size=self._n)

    @property
    def doppler_hz(self) -> float:
        """Maximum Doppler shift in Hz."""
        return self._fd

    def envelope_at(self, times_s: np.ndarray) -> np.ndarray:
        """Evaluate the fading envelope at the given times (seconds)."""
        times = np.asarray(times_s, dtype=float)
        omega = 2.0 * math.pi * self._fd * np.cos(self._angles)
        # (T, N) phase matrix, summed over scatterers per branch.
        arg = np.multiply.outer(times, omega)
        in_phase = np.cos(arg + self._phases_i).sum(axis=-1)
        quadrature = np.cos(arg + self._phases_q).sum(axis=-1)
        # Each branch sums N cosines with E[cos^2] = 1/2, so scaling by
        # sqrt(mean_square / N) gives E[I^2 + Q^2] = mean_square.
        scale = math.sqrt(self._mean_square / self._n)
        return np.hypot(scale * in_phase, scale * quadrature)

    def trace(self, duration_s: float, sample_interval_s: float) -> np.ndarray:
        """Generate a uniformly sampled envelope trace of the given duration."""
        if duration_s <= 0 or sample_interval_s <= 0:
            raise ValueError("duration_s and sample_interval_s must be positive")
        n = int(round(duration_s / sample_interval_s))
        times = np.arange(n) * sample_interval_s
        return self.envelope_at(times)
