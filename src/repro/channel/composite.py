"""Composite per-user channel: fast fading multiplied by shadowing.

The paper (Section 4.2) writes the combined channel fading of a user as::

    c(t) = c_l(t) * c_s(t)

where ``c_l`` is the long-term log-normal shadowing and ``c_s`` the
short-term Rayleigh fast fading.  :class:`CompositeChannel` owns one instance
of each process and exposes the combined amplitude (the CSI the base station
tries to estimate) plus dB and SNR views of it.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.channel.doppler import DopplerModel
from repro.channel.fading import RayleighFading
from repro.channel.shadowing import LogNormalShadowing

__all__ = ["CompositeChannel", "amplitude_to_db", "db_to_amplitude"]


def amplitude_to_db(amplitude: float) -> float:
    """Convert an amplitude gain to dB (``20 log10``).

    Zero (or negative, which cannot physically occur) amplitudes map to
    ``-inf`` dB rather than raising, because a deep-fade sample of exactly
    zero can be produced by degenerate test configurations.
    """
    if amplitude <= 0.0:
        return float("-inf")
    return 20.0 * math.log10(amplitude)


def db_to_amplitude(level_db: float) -> float:
    """Convert a dB gain to linear amplitude (``10^{dB/20}``)."""
    return 10.0 ** (level_db / 20.0)


class CompositeChannel:
    """The combined fading channel of a single mobile device.

    Parameters
    ----------
    doppler:
        Mobility model providing the Doppler spread of the fast fading.
    sample_interval_s:
        Default advance step (the TDMA frame duration in the engine).
    rng:
        Random generator; both sub-processes draw from it so a single seed
        fully determines the channel realisation.
    shadow_std_db, shadow_mean_db, shadow_decorrelation_s:
        Log-normal shadowing parameters.
    mean_snr_db:
        Average received SNR when the composite amplitude equals one.  Used
        by :attr:`snr_db` to express the CSI on an SNR scale for the adaptive
        PHY threshold comparisons.
    """

    def __init__(
        self,
        doppler: DopplerModel,
        sample_interval_s: float = 0.0025,
        rng: Optional[np.random.Generator] = None,
        shadow_std_db: float = 6.0,
        shadow_mean_db: float = 0.0,
        shadow_decorrelation_s: float = 1.0,
        mean_snr_db: float = 20.0,
    ) -> None:
        # Seedless convenience default for standalone/unit-test use only;
        # engine-owned instances always inject a RandomStreams generator.
        rng = rng if rng is not None else np.random.default_rng()  # lint: allow[RNG001]
        self._doppler = doppler
        self._dt = float(sample_interval_s)
        self._mean_snr_db = float(mean_snr_db)
        self._fast = RayleighFading(
            doppler_hz=doppler.doppler_hz,
            sample_interval_s=sample_interval_s,
            rng=rng,
        )
        self._shadow = LogNormalShadowing(
            mean_db=shadow_mean_db,
            std_db=shadow_std_db,
            decorrelation_time_s=shadow_decorrelation_s,
            sample_interval_s=sample_interval_s,
            rng=rng,
        )

    # ------------------------------------------------------------------ API
    @property
    def doppler(self) -> DopplerModel:
        """Mobility model of this channel."""
        return self._doppler

    @property
    def fast_fading(self) -> RayleighFading:
        """The short-term Rayleigh component."""
        return self._fast

    @property
    def shadowing(self) -> LogNormalShadowing:
        """The long-term log-normal component."""
        return self._shadow

    @property
    def amplitude(self) -> float:
        """Current combined amplitude ``c = c_l * c_s`` (the true CSI)."""
        return self._fast.envelope * self._shadow.gain

    @property
    def amplitude_db(self) -> float:
        """Current combined amplitude expressed in dB."""
        return amplitude_to_db(self.amplitude)

    @property
    def snr_db(self) -> float:
        """Instantaneous received SNR in dB.

        The SNR scales with the *power* gain, i.e. ``mean_snr_db + 20
        log10(c)``.
        """
        return self._mean_snr_db + self.amplitude_db

    @property
    def mean_snr_db(self) -> float:
        """Average SNR at unit composite amplitude."""
        return self._mean_snr_db

    def advance(self, dt: Optional[float] = None) -> float:
        """Advance both components by ``dt`` seconds; return new amplitude."""
        self._fast.advance(dt)
        self._shadow.advance(dt)
        return self.amplitude

    def reset(self) -> float:
        """Redraw both components from their stationary distributions."""
        self._fast.reset()
        self._shadow.reset()
        return self.amplitude

    def trace(self, n_samples: int, dt: Optional[float] = None) -> np.ndarray:
        """Generate ``n_samples`` successive composite-amplitude samples.

        Vectorised Fig. 5 trace path: the two processes share one random
        generator, so the noise for the whole trace is drawn in a single
        batch that preserves the per-step draw order of repeated
        :meth:`advance` calls (fast real, fast imaginary, shadow shock),
        then each AR(1) recursion is evaluated as a linear filter.  The
        samples match the per-step loop to within a few ULP (the filter's
        accumulation order differs slightly) and both sub-processes' states
        advance as usual.
        """
        if n_samples < 0:
            raise ValueError("n_samples must be non-negative")
        if n_samples == 0:
            return np.empty(0, dtype=float)
        fast = self._fast
        shadow = self._shadow
        rho = fast._step_correlation(dt)
        a = shadow._step_coefficient(dt)
        fast_scale = fast._sigma_component * math.sqrt(1.0 - rho * rho)
        with_shadow = shadow.std_db > 0.0
        lanes = 3 if with_shadow else 2
        noise = self._rng_source().standard_normal(lanes * n_samples).reshape(
            n_samples, lanes
        )
        envelope = fast._trace_from_scaled_noise(
            fast_scale * noise[:, 0], fast_scale * noise[:, 1], rho
        )
        if with_shadow:
            shadow_scale = shadow.std_db * math.sqrt(1.0 - a * a)
            levels_db = shadow._trace_db_from_shocks(shadow_scale * noise[:, 2], a)
            shadow_gain = 10.0 ** (levels_db / 20.0)
        else:
            shadow._state_db = shadow.mean_db
            shadow_gain = 10.0 ** (shadow.mean_db / 20.0)
        return envelope * shadow_gain

    def _rng_source(self) -> np.random.Generator:
        """The generator shared by both sub-processes (single seed rule)."""
        return self._fast._rng
