"""Wireless channel substrate.

This subpackage implements the channel model described in Section 4.2 of the
paper: the link between each mobile device and the base station is the product
of a *short-term* Rayleigh fast-fading component (multipath, coherence time of
a few milliseconds, Doppler spread set by the mobile speed) and a *long-term*
log-normal shadowing component (terrain/obstacles, decorrelation time on the
order of one second).

Public classes
--------------
:class:`~repro.channel.doppler.DopplerModel`
    Converts mobile speed and carrier frequency into Doppler spread and
    coherence time.
:class:`~repro.channel.fading.RayleighFading`
    First-order Gauss--Markov (AR(1)) sampler of the complex fast-fading gain
    whose envelope is Rayleigh distributed.
:class:`~repro.channel.fading.JakesFading`
    Sum-of-sinusoids (Jakes/Clarke) trace generator used for the Fig. 5 style
    fading traces.
:class:`~repro.channel.shadowing.LogNormalShadowing`
    dB-domain Gauss--Markov shadowing process.
:class:`~repro.channel.composite.CompositeChannel`
    Product channel ``c(t) = c_l(t) * c_s(t)`` for a single user.
:class:`~repro.channel.manager.ChannelManager`
    Vectorised collection of independent per-user composite channels, the
    object the simulation engine advances once per TDMA frame.
"""

from repro.channel.composite import CompositeChannel
from repro.channel.doppler import (
    DopplerModel,
    coherence_time,
    doppler_spread,
    speed_to_mps,
)
from repro.channel.fading import JakesFading, RayleighFading
from repro.channel.manager import ChannelManager, ChannelSnapshot
from repro.channel.shadowing import LogNormalShadowing

__all__ = [
    "ChannelManager",
    "ChannelSnapshot",
    "CompositeChannel",
    "DopplerModel",
    "JakesFading",
    "LogNormalShadowing",
    "RayleighFading",
    "coherence_time",
    "doppler_spread",
    "speed_to_mps",
]
