"""Vectorised per-user channel manager.

The simulation engine needs the composite fading amplitude of *every* mobile
device once per 2.5 ms frame, for populations of up to a couple of hundred
users and runs of tens of thousands of frames.  Advancing a couple of hundred
independent :class:`~repro.channel.composite.CompositeChannel` objects in a
Python loop would dominate the run time, so :class:`ChannelManager` keeps the
whole population's state in NumPy arrays and advances them with a handful of
vectorised operations per frame (see the HPC guidance on vectorising inner
loops).

The per-user statistics are identical to the scalar classes: complex AR(1)
fast fading with Clarke correlation and dB-domain Gauss--Markov shadowing.
Users fade independently, as the paper assumes for geographically scattered
devices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy.signal import lfilter

from repro.channel.doppler import DopplerModel
from repro.channel.fading import clarke_correlation

__all__ = ["ChannelManager", "ChannelSnapshot"]


@dataclass(frozen=True)
class ChannelSnapshot:
    """Immutable view of the whole population's channel at one frame.

    Attributes
    ----------
    amplitude:
        Composite fading amplitude ``c_i`` per user (shape ``(n_users,)``).
    snr_db:
        Instantaneous received SNR in dB per user.
    frame_index:
        Frame counter at which the snapshot was taken.
    """

    amplitude: np.ndarray
    snr_db: np.ndarray
    frame_index: int
    #: Beam index when the snapshot belongs to one shard of a multi-beam
    #: constellation (``None`` for plain single-cell runs).  Ids passed to
    #: the accessors are then *beam-local*; the error messages say so.
    beam: Optional[int] = None

    @property
    def n_users(self) -> int:
        """Number of users covered by the snapshot."""
        return int(self.amplitude.shape[0])

    def _id_error(self, user_id: int) -> IndexError:
        n = self.amplitude.shape[0]
        if self.beam is None:
            return IndexError(
                f"user_id {user_id} outside the snapshot's dense 0.."
                f"{n - 1} population (terminal ids double as channel rows)"
            )
        return IndexError(
            f"(beam {self.beam}, local_id {user_id}): local id outside the "
            f"beam's dense 0..{n - 1} population — constellation snapshots "
            f"index by beam-local id, not global terminal id (terminal ids "
            f"double as channel rows within each beam)"
        )

    def amplitude_of(self, user_id: int) -> float:
        """Composite amplitude of a single user.

        ``user_id`` must be the user's dense population index (the engine
        validates ``terminal_id == index`` at construction); out-of-range
        ids raise instead of silently wrapping around like raw negative
        NumPy indexing would.  Within a constellation shard the id is
        beam-local and the error carries ``(beam, local_id)``.
        """
        if not 0 <= user_id < self.amplitude.shape[0]:
            raise self._id_error(user_id)
        return float(self.amplitude[user_id])

    def snr_db_of(self, user_id: int) -> float:
        """Instantaneous SNR (dB) of a single user (dense id, like
        :meth:`amplitude_of`)."""
        if not 0 <= user_id < self.snr_db.shape[0]:
            raise self._id_error(user_id)
        return float(self.snr_db[user_id])


class ChannelManager:
    """Vectorised collection of independent per-user composite channels.

    Parameters
    ----------
    n_users:
        Number of mobile devices.
    doppler:
        Mobility model shared by the population, or a sequence with one model
        per user (for mixed-speed scenarios).
    frame_duration_s:
        Time advanced per :meth:`advance_frame` call.
    rng:
        Random generator used for all users (their draws are independent).
    shadow_std_db, shadow_mean_db, shadow_decorrelation_s:
        Log-normal shadowing parameters shared by all users.
    mean_snr_db:
        Average received SNR at unit composite amplitude.
    beam:
        Optional beam index when this manager serves one shard of a
        multi-beam constellation; carried into every snapshot so id errors
        report ``(beam, local_id)``.
    """

    def __init__(
        self,
        n_users: int,
        doppler: DopplerModel | Sequence[DopplerModel],
        frame_duration_s: float = 0.0025,
        rng: Optional[np.random.Generator] = None,
        shadow_std_db: float = 6.0,
        shadow_mean_db: float = 0.0,
        shadow_decorrelation_s: float = 1.0,
        mean_snr_db: float = 20.0,
        beam: Optional[int] = None,
    ) -> None:
        if n_users < 0:
            raise ValueError("n_users must be non-negative")
        if frame_duration_s <= 0:
            raise ValueError("frame_duration_s must be positive")
        if shadow_std_db < 0:
            raise ValueError("shadow_std_db must be non-negative")
        if shadow_decorrelation_s <= 0:
            raise ValueError("shadow_decorrelation_s must be positive")

        self._n = int(n_users)
        self._dt = float(frame_duration_s)
        # Seedless convenience default for standalone/unit-test use only;
        # engine-owned instances always inject a RandomStreams generator.
        self._rng = rng if rng is not None else np.random.default_rng()  # lint: allow[RNG001]
        self._mean_snr_db = float(mean_snr_db)
        self._beam = None if beam is None else int(beam)
        # Co-channel interference folded in by a constellation's coupling
        # layer between macro blocks: an SINR penalty in dB, applied as a
        # linear gain on the composite amplitude so every consumer (PHY
        # error draws, CSI estimation, adaptive mode selection) sees a
        # consistently degraded channel.  Zero keeps the amplitude maths
        # untouched, preserving single-cell bit-identity.
        self._interference_db = 0.0
        self._interference_gain = 1.0
        self._shadow_mean_db = float(shadow_mean_db)
        self._shadow_std_db = float(shadow_std_db)
        self._shadow_tau = float(shadow_decorrelation_s)
        self._frame_index = 0

        if isinstance(doppler, DopplerModel):
            dopplers = [doppler] * self._n
        else:
            dopplers = list(doppler)
            if len(dopplers) != self._n:
                raise ValueError(
                    f"expected {self._n} Doppler models, got {len(dopplers)}"
                )
        self._dopplers = dopplers

        # Per-user fast-fading lag-one correlation and shadowing correlation.
        self._rho_fast = np.array(
            [clarke_correlation(d.doppler_hz, self._dt) for d in dopplers], dtype=float
        )
        self._a_shadow = math.exp(-self._dt / self._shadow_tau)
        # Innovation scales are constants of the run; precomputing them keeps
        # the per-frame update to the draws plus one multiply-add per process.
        sigma = math.sqrt(0.5)
        self._innovation_scale = sigma * np.sqrt(1.0 - self._rho_fast**2)
        self._shadow_shock_std = self._shadow_std_db * math.sqrt(
            1.0 - self._a_shadow * self._a_shadow
        )

        # Whether every user shares one fast-fading correlation (the usual
        # single-Doppler configuration); block advancing exploits it.
        self._uniform_rho = bool(
            self._n == 0 or np.all(self._rho_fast == self._rho_fast[0])
        )

        # Stationary initial states.  The shadowing state is stored as the
        # dB *deviation* from the mean, so the per-frame update is the pure
        # AR(1) recursion ``dev' = a * dev + shock`` — the same float
        # expression a linear-filter block evaluation produces, which keeps
        # frame-by-frame and block advancing bit-identical.
        self._gain = self._draw_stationary_fast()
        self._shadow_dev = self._draw_stationary_shadow_dev()

    # ------------------------------------------------------------------ API
    @property
    def n_users(self) -> int:
        """Number of users managed."""
        return self._n

    @property
    def frame_duration_s(self) -> float:
        """Time advanced per frame."""
        return self._dt

    @property
    def frame_index(self) -> int:
        """Number of frames advanced so far."""
        return self._frame_index

    @property
    def dopplers(self) -> Sequence[DopplerModel]:
        """Per-user mobility models."""
        return tuple(self._dopplers)

    @property
    def beam(self) -> Optional[int]:
        """Beam index when serving a constellation shard (else ``None``)."""
        return self._beam

    @property
    def interference_db(self) -> float:
        """Current co-channel interference penalty in dB (0 = none)."""
        return self._interference_db

    def set_interference_db(self, penalty_db: float) -> None:
        """Fold a co-channel interference penalty into the channel.

        The penalty is an SINR degradation in dB applied as a linear factor
        ``10^(-penalty/20)`` on the composite amplitude, so the derived
        ``snr_db`` drops by exactly ``penalty_db`` and every amplitude
        consumer (PHY error model, CSI estimation, adaptive mode selection)
        sees the same degraded channel.  A constellation's coupling layer
        calls this between macro blocks; snapshots produced afterwards carry
        the new penalty.  Zero restores the exact uncoupled amplitudes.
        """
        if not math.isfinite(penalty_db) or penalty_db < 0.0:
            raise ValueError("interference penalty must be finite and >= 0 dB")
        self._interference_db = float(penalty_db)
        self._interference_gain = 10.0 ** (-float(penalty_db) / 20.0)

    def amplitudes(self) -> np.ndarray:
        """Current composite amplitude per user."""
        shadow_gain = 10.0 ** ((self._shadow_mean_db + self._shadow_dev) / 20.0)
        amplitude = np.abs(self._gain) * shadow_gain
        if self._interference_db != 0.0:
            amplitude = amplitude * self._interference_gain
        return amplitude

    def snr_db(self) -> np.ndarray:
        """Current instantaneous SNR (dB) per user."""
        amp = self.amplitudes()
        with np.errstate(divide="ignore"):
            amp_db = 20.0 * np.log10(amp)
        return self._mean_snr_db + amp_db

    def snapshot(self) -> ChannelSnapshot:
        """Immutable snapshot of the current channel state."""
        amplitude = self.amplitudes()
        with np.errstate(divide="ignore"):
            amp_db = 20.0 * np.log10(amplitude)
        return ChannelSnapshot(
            amplitude=amplitude,
            snr_db=self._mean_snr_db + amp_db,
            frame_index=self._frame_index,
            beam=self._beam,
        )

    def advance_frame(self) -> ChannelSnapshot:
        """Advance every user's channel by one frame and return a snapshot."""
        if self._n > 0:
            noise = self._rng.normal(size=self._n) + 1j * self._rng.normal(size=self._n)
            self._gain = self._rho_fast * self._gain + self._innovation_scale * noise

            if self._shadow_std_db > 0.0:
                shock = self._rng.normal(scale=self._shadow_shock_std, size=self._n)
                self._shadow_dev = self._a_shadow * self._shadow_dev + shock
        self._frame_index += 1
        return self.snapshot()

    def advance_block(self, n_frames: int) -> List[ChannelSnapshot]:
        """Advance ``n_frames`` frames at once and return their snapshots.

        One batched noise draw plus one linear-filter evaluation per fading
        process replaces ``n_frames`` per-frame updates.  The returned
        snapshots — and the generator state left behind — are **bit
        identical** to calling :meth:`advance_frame` ``n_frames`` times:

        * the noise block consumes the ``channel`` stream in exactly the
          per-frame order (real, imaginary, shadow slices per frame);
        * the AR(1) recursions are evaluated by ``scipy.signal.lfilter``,
          whose update ``y[k] = x[k] + rho * y[k-1]`` is the same float
          expression as the per-frame code (addition commutes exactly).

        Requires a population-wide uniform Doppler (the standard engine
        configuration); mixed-speed populations fall back to per-frame
        stepping automatically.
        """
        if n_frames < 0:
            raise ValueError("n_frames must be non-negative")
        if n_frames == 0:
            return []
        if self._n == 0:
            return [self.advance_frame() for _ in range(n_frames)]
        if not self._uniform_rho:
            return [self.advance_frame() for _ in range(n_frames)]

        n = self._n
        with_shadow = self._shadow_std_db > 0.0
        lanes = 3 if with_shadow else 2
        noise = self._rng.standard_normal(lanes * n_frames * n).reshape(
            n_frames, lanes, n
        )
        innovation = self._innovation_scale * (
            noise[:, 0, :] + 1j * noise[:, 1, :]
        )
        rho = float(self._rho_fast[0])
        gains, _ = lfilter(
            [1.0], [1.0, -rho], innovation, axis=0, zi=(rho * self._gain)[None, :]
        )
        self._gain = gains[-1]

        if with_shadow:
            shocks = self._shadow_shock_std * noise[:, 2, :]
            a = self._a_shadow
            deviations, _ = lfilter(
                [1.0], [1.0, -a], shocks, axis=0, zi=(a * self._shadow_dev)[None, :]
            )
            self._shadow_dev = deviations[-1]
            shadow_db = self._shadow_mean_db + deviations
        else:
            shadow_db = np.broadcast_to(
                self._shadow_mean_db + self._shadow_dev, (n_frames, n)
            )

        amplitude = np.abs(gains) * 10.0 ** (shadow_db / 20.0)
        if self._interference_db != 0.0:
            amplitude = amplitude * self._interference_gain
        with np.errstate(divide="ignore"):
            snr_db = self._mean_snr_db + 20.0 * np.log10(amplitude)
        snapshots = []
        for offset in range(n_frames):
            self._frame_index += 1
            snapshots.append(
                ChannelSnapshot(
                    amplitude=amplitude[offset],
                    snr_db=snr_db[offset],
                    frame_index=self._frame_index,
                    beam=self._beam,
                )
            )
        return snapshots

    def reset(self) -> None:
        """Redraw all per-user states from their stationary distributions."""
        self._gain = self._draw_stationary_fast()
        self._shadow_dev = self._draw_stationary_shadow_dev()
        self._frame_index = 0

    # ------------------------------------------------------------ internals
    def _draw_stationary_fast(self) -> np.ndarray:
        sigma = math.sqrt(0.5)
        return self._rng.normal(scale=sigma, size=self._n) + 1j * self._rng.normal(
            scale=sigma, size=self._n
        )

    def _draw_stationary_shadow_dev(self) -> np.ndarray:
        if self._shadow_std_db == 0.0:
            return np.zeros(self._n, dtype=float)
        return self._rng.normal(scale=self._shadow_std_db, size=self._n)
