"""Long-term (shadow) fading process.

The paper models the long-term component ``c_l(t)`` (the *local mean*) as
log-normally distributed in amplitude — equivalently Gaussian in dB — with a
fluctuation time scale of roughly one second, caused by terrain configuration
and obstacles.  We implement it as a dB-domain Gauss--Markov (Ornstein--
Uhlenbeck) process:

    x_{k+1} = m + a (x_k - m) + sqrt(1 - a^2) * sigma * w_k,   w_k ~ N(0, 1)

with ``a = exp(-dt / tau)`` where ``tau`` is the decorrelation time.  The
linear-amplitude shadowing gain is ``c_l = 10^{x / 20}``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy.signal import lfilter

__all__ = ["LogNormalShadowing"]


class LogNormalShadowing:
    """dB-domain Gauss--Markov log-normal shadowing process.

    Parameters
    ----------
    mean_db:
        Mean of the shadowing gain in dB (``m_l`` in the paper).  A value of
        0 dB means the long-term component neither amplifies nor attenuates
        on average.
    std_db:
        Standard deviation of the dB shadowing (``sigma_l``).  Typical
        macro-cell values are 4--8 dB; the default follows the moderate
        shadowing regime used throughout the evaluation.
    decorrelation_time_s:
        Time constant ``tau`` of the exponential autocorrelation.  The paper
        quotes a fluctuation time scale of about one second.
    sample_interval_s:
        Default time advance per :meth:`advance` call.
    rng:
        Random generator for this process.
    """

    def __init__(
        self,
        mean_db: float = 0.0,
        std_db: float = 6.0,
        decorrelation_time_s: float = 1.0,
        sample_interval_s: float = 0.0025,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if std_db < 0:
            raise ValueError("std_db must be non-negative")
        if decorrelation_time_s <= 0:
            raise ValueError("decorrelation_time_s must be positive")
        if sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        self._mean_db = float(mean_db)
        self._std_db = float(std_db)
        self._tau = float(decorrelation_time_s)
        self._dt = float(sample_interval_s)
        # Seedless convenience default for standalone/unit-test use only;
        # engine-owned instances always inject a RandomStreams generator.
        self._rng = rng if rng is not None else np.random.default_rng()  # lint: allow[RNG001]
        self._a = math.exp(-self._dt / self._tau)
        self._state_db = self._draw_stationary()

    # ------------------------------------------------------------------ API
    @property
    def mean_db(self) -> float:
        """Mean shadowing level in dB."""
        return self._mean_db

    @property
    def std_db(self) -> float:
        """Standard deviation of the shadowing level in dB."""
        return self._std_db

    @property
    def decorrelation_time_s(self) -> float:
        """Exponential decorrelation time constant in seconds."""
        return self._tau

    @property
    def level_db(self) -> float:
        """Current shadowing level in dB."""
        return self._state_db

    @property
    def gain(self) -> float:
        """Current linear amplitude gain ``10^{level_db / 20}``."""
        return 10.0 ** (self._state_db / 20.0)

    def advance(self, dt: Optional[float] = None) -> float:
        """Advance by ``dt`` seconds and return the new linear gain."""
        if dt is None or dt == self._dt:
            a = self._a
        else:
            if dt <= 0:
                raise ValueError("dt must be positive")
            a = math.exp(-dt / self._tau)
        if self._std_db == 0.0:
            self._state_db = self._mean_db
            return self.gain
        innovation = self._rng.normal(scale=self._std_db * math.sqrt(1.0 - a * a))
        self._state_db = self._mean_db + a * (self._state_db - self._mean_db) + innovation
        return self.gain

    def reset(self) -> float:
        """Redraw the state from the stationary distribution."""
        self._state_db = self._draw_stationary()
        return self.gain

    def trace_db(self, n_samples: int, dt: Optional[float] = None) -> np.ndarray:
        """Generate ``n_samples`` successive dB-level samples.

        Vectorised: one batched shock draw (the same draw order as repeated
        :meth:`advance` calls) plus a linear-filter evaluation of the
        deviation-form AR(1) recursion, equivalent to the per-step loop up
        to floating-point association.
        """
        if n_samples < 0:
            raise ValueError("n_samples must be non-negative")
        if n_samples == 0:
            return np.empty(0, dtype=float)
        a = self._step_coefficient(dt)
        if self._std_db == 0.0:
            self._state_db = self._mean_db
            return np.full(n_samples, self._mean_db, dtype=float)
        shocks = self._rng.normal(
            scale=self._std_db * math.sqrt(1.0 - a * a), size=n_samples
        )
        return self._trace_db_from_shocks(shocks, a)

    def _step_coefficient(self, dt: Optional[float]) -> float:
        if dt is None or dt == self._dt:
            return self._a
        if dt <= 0:
            raise ValueError("dt must be positive")
        return math.exp(-dt / self._tau)

    def _trace_db_from_shocks(self, shocks: np.ndarray, a: float) -> np.ndarray:
        """Run the dB-deviation AR(1) recursion over pre-drawn shocks."""
        deviation = self._state_db - self._mean_db
        deviations, _ = lfilter(
            [1.0], [1.0, -a], shocks, zi=np.array([a * deviation], dtype=float)
        )
        levels = self._mean_db + deviations
        self._state_db = float(levels[-1])
        return levels

    # ------------------------------------------------------------ internals
    def _draw_stationary(self) -> float:
        if self._std_db == 0.0:
            return self._mean_db
        return float(self._rng.normal(loc=self._mean_db, scale=self._std_db))
