"""The one-call entry point: expand a spec, execute it, wrap the results.

:func:`run` is the single public way to evaluate an
:class:`~repro.api.spec.ExperimentSpec`.  It expands the grid, picks an
executor (unless one is supplied), executes, and returns a
:class:`~repro.api.resultset.ResultSet`.  Everything else in the package —
the CLI, the experiment registry, the benchmark harness — funnels through
it, so concerns like executor selection, progress reporting and result
caching (``cache_dir=`` / ``store=``) live in exactly one place.
"""

from __future__ import annotations

from contextlib import nullcontext as _nullcontext
from typing import List, Optional, Sequence, Union

from repro.api.executors import (
    Executor,
    ProgressCallback,
    SerialExecutor,
    select_executor,
)
from repro.api.resultset import ResultSet, RunRecord
from repro.api.spec import ExperimentSpec, SweepAxis
from repro.config import SimulationParameters
from repro.faults import FailedPoint, FaultPlan, RetryPolicy
from repro.faults import injector as _faults_injector
from repro.obs.report import RunReport, RunTelemetry
from repro.sim.scenario import Scenario

__all__ = ["run", "run_points", "sweep_spec"]


def run(
    spec: ExperimentSpec,
    executor: Optional[Executor] = None,
    n_workers: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    store: Optional[object] = None,
    cache_dir: Optional[str] = None,
    telemetry: Union[None, bool, RunTelemetry] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Union[None, str, FaultPlan] = None,
) -> ResultSet:
    """Execute every run of ``spec`` and return a queryable result set.

    Parameters
    ----------
    spec:
        The declarative experiment grid.
    executor:
        Execution backend; when omitted, :func:`select_executor` chooses
        between serial and process-parallel execution from the grid's
        estimated cost (``n_workers`` forces the choice).
    n_workers:
        Convenience override: 1 forces serial, >1 forces that many worker
        processes.  Ignored when ``executor`` is given.
    progress:
        Optional ``progress(done, total)`` callback.
    store:
        Optional :class:`~repro.store.ResultStore` (or cache-directory
        path): finished points are served from it instead of re-simulating,
        and fresh results are persisted as they complete, so an interrupted
        invocation resumes where it stopped.
    cache_dir:
        Convenience spelling of ``store=``: directory to open (and create)
        a result store in.  Ignored when ``store`` is given.
    telemetry:
        Run-telemetry policy.  ``None`` (default) enables telemetry exactly
        when a result store is involved (``store=``/``cache_dir=`` or a
        :class:`~repro.store.CachingExecutor`), where the per-point
        :class:`~repro.obs.report.RunReport` is also persisted as the store
        artifact ``telemetry-<spec_hash>``.  ``True`` forces collection,
        ``False`` disables it, and a :class:`~repro.obs.report.RunTelemetry`
        instance is used as-is (caller keeps ownership and configuration,
        e.g. ``phase_split=True``).  The report is attached to the returned
        set as :attr:`~repro.api.resultset.ResultSet.telemetry`.
    retry:
        Optional :class:`~repro.faults.RetryPolicy`: transient point
        failures are retried with backoff, and with ``on_error="record"``
        a terminally failed point degrades to an error record in the
        returned set (:meth:`~repro.api.resultset.ResultSet.errors`)
        instead of aborting the grid.
    faults:
        Deterministic fault injection for chaos testing: a
        :class:`~repro.faults.FaultPlan`, a spec string such as
        ``"crash_every=3,seed=7"``, or ``None`` to fall back to the
        ``REPRO_FAULTS`` environment variable.  The plan is installed for
        the duration of this call (and shipped to worker processes).

    The returned set's records are in the spec's deterministic expansion
    order regardless of the executor, so serial, parallel, work-stealing
    and cached runs of the same spec are interchangeable.
    """
    from repro.api.executors import accepts_retry, accepts_telemetry
    from repro.store import CachingExecutor

    points = spec.expand()
    if executor is None:
        executor = select_executor(points, n_workers=n_workers)
    if store is None and cache_dir is not None:
        store = cache_dir
    if store is not None:
        if isinstance(executor, CachingExecutor):
            raise ValueError(
                "pass either a CachingExecutor or store=/cache_dir=, not "
                "both: the executor is already bound to a store and the "
                "extra argument would be silently ignored"
            )
        executor = CachingExecutor(store, inner=executor)

    collector: Optional[RunTelemetry]
    if isinstance(telemetry, RunTelemetry):
        collector = telemetry
    elif telemetry is True:
        collector = RunTelemetry()
    elif telemetry is None and isinstance(executor, CachingExecutor):
        collector = RunTelemetry()
    else:
        collector = None

    plan = FaultPlan.resolve(faults)
    injection = (
        _faults_injector.injecting(plan)
        if plan is not None
        else _nullcontext()
    )

    report: Optional[RunReport] = None
    execute_with_sink = getattr(executor, "execute_with_sink", None)
    kwargs: dict = {}
    if retry is not None:
        if execute_with_sink is None or not accepts_retry(execute_with_sink):
            raise ValueError(
                f"executor {executor!r} does not accept a retry policy"
            )
        kwargs["retry"] = retry
    with injection:
        if (
            collector is not None
            and execute_with_sink is not None
            and accepts_telemetry(execute_with_sink)
        ):
            collector.start()
            results = execute_with_sink(
                points, spec.params, progress, None, telemetry=collector,
                **kwargs,
            )
            report = collector.report(
                spec_name=spec.name,
                spec_hash=spec.spec_hash(),
                n_points=len(points),
            )
            if isinstance(executor, CachingExecutor):
                executor.store.put_artifact(
                    f"telemetry-{spec.spec_hash()}", report.to_payload()
                )
        elif execute_with_sink is not None and kwargs:
            results = execute_with_sink(
                points, spec.params, progress, None, **kwargs
            )
        else:
            results = executor.execute(points, spec.params, progress=progress)
    if len(results) != len(points):
        raise RuntimeError(
            f"executor returned {len(results)} results for {len(points)} runs"
        )
    records = [
        RunRecord(point=p, error=r) if isinstance(r, FailedPoint)
        else RunRecord(point=p, result=r)
        for p, r in zip(points, results)
    ]
    return ResultSet(records, name=spec.name, telemetry=report)


def run_points(
    points: Sequence,
    params: Optional[SimulationParameters] = None,
    executor: Optional[Executor] = None,
    n_workers: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
) -> List:
    """Execute pre-expanded run points (low-level plumbing)."""
    params = params if params is not None else SimulationParameters()
    if executor is None:
        if n_workers is not None:
            executor = select_executor(points, n_workers=n_workers)
        else:
            executor = SerialExecutor()
    return executor.execute(points, params, progress=progress)


def sweep_spec(
    protocols: Sequence[str],
    parameter: str,
    values: Sequence[object],
    base_scenario: Scenario,
    params: Optional[SimulationParameters] = None,
    seeds: Sequence[int] = (),
    name: str = "",
) -> ExperimentSpec:
    """Convenience constructor for the ubiquitous one-axis sweep.

    When ``seeds`` is omitted the base scenario's own seed is used, matching
    the legacy ``run_sweep`` behaviour.
    """
    if not seeds:
        seeds = (base_scenario.seed,)
    return ExperimentSpec(
        protocols=protocols,
        base_scenario=base_scenario,
        axes=(SweepAxis(parameter, values),),
        params=params,
        seeds=seeds,
        name=name,
    )
