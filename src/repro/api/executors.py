"""Pluggable execution backends for expanded experiment grids.

Every :class:`~repro.api.spec.RunPoint` is an independent simulation, which
makes a grid an embarrassingly parallel workload.  An :class:`Executor` turns
an ordered run list into the equally-ordered list of
:class:`~repro.sim.results.SimulationResult` objects; the two shipped
backends are

* :class:`SerialExecutor` — runs in the calling process.  Zero overhead;
  right for small grids and for debugging (exceptions propagate directly).
* :class:`ParallelExecutor` — fans out across a
  :class:`concurrent.futures.ProcessPoolExecutor`.  The shared
  :class:`~repro.config.SimulationParameters` object is shipped to each
  worker exactly once through the pool initializer; jobs carry only the
  scenario and the point's parameter *deltas*, and are submitted in chunks
  so a large grid does not flood the executor queue.

:func:`select_executor` picks between them from the grid's estimated cost,
and both report progress through an optional ``progress(done, total)``
callback.
"""

from __future__ import annotations

import inspect
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import nullcontext
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.config import SimulationParameters
from repro.faults import injector as _faults
from repro.faults.plan import FaultPlan
from repro.faults.retry import (
    FailedPoint,
    PointOutcome,
    RetryPolicy,
    run_point_attempts,
)
from repro.obs import clock as _obs_clock
from repro.obs import trace as _obs_trace
from repro.obs.report import RunTelemetry
from repro.sim.engine import UplinkSimulationEngine
from repro.sim.results import SimulationResult
from repro.sim.scenario import Scenario
from repro.api.spec import RunPoint

__all__ = [
    "Executor",
    "ProgressCallback",
    "ResultSink",
    "accepts_kwarg",
    "accepts_telemetry",
    "accepts_retry",
    "SerialExecutor",
    "ParallelExecutor",
    "select_executor",
    "estimated_grid_cost",
    "estimated_point_cost",
]

#: ``progress(done, total)`` — invoked after every completed run (serial) or
#: every completed chunk (parallel).
ProgressCallback = Callable[[int, int], None]

#: ``sink(position, point, result)`` — invoked in the submitting process as
#: each result becomes available (computed, or served from a cache), where
#: ``position`` indexes the run list passed to the executor.  Executors that
#: support a sink expose ``execute_with_sink``; the caching layer uses it to
#: persist results incrementally so an interrupted grid keeps everything
#: finished so far.  Under a ``RetryPolicy(on_error="record")`` the third
#: argument may be a :class:`~repro.faults.retry.FailedPoint` instead of a
#: result — sinks that persist must branch on the type.
ResultSink = Callable[[int, RunPoint, SimulationResult], None]


def accepts_kwarg(callable_obj: object, name: str) -> bool:
    """Whether a callable's signature takes the named keyword argument.

    Checked up front (rather than try/except TypeError around the call) so
    a genuine TypeError raised *inside* a foreign executor is never mistaken
    for a signature mismatch.
    """
    try:
        signature = inspect.signature(callable_obj)  # type: ignore[arg-type]
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False
    return name in signature.parameters


def accepts_telemetry(execute_with_sink: object) -> bool:
    """Whether an ``execute_with_sink`` callable takes a ``telemetry`` kwarg."""
    return accepts_kwarg(execute_with_sink, "telemetry")


def accepts_retry(execute_with_sink: object) -> bool:
    """Whether an ``execute_with_sink`` callable takes a ``retry`` kwarg."""
    return accepts_kwarg(execute_with_sink, "retry")


def _simulate(scenario: Scenario, params: SimulationParameters) -> SimulationResult:
    """Run one scenario (the single-run primitive the executors share).

    A :class:`~repro.constellation.scenario.ConstellationScenario` routes
    through the constellation runner and yields the merged aggregate
    result, so grids can mix single-cell and multi-beam points freely.
    """
    if not isinstance(scenario, Scenario):
        from repro.constellation.runner import run_constellation

        return run_constellation(scenario, params).merged
    return UplinkSimulationEngine(scenario, params).run()


def _simulate_measured(
    scenario: Scenario,
    params: SimulationParameters,
    phase_split: bool = False,
) -> Tuple[SimulationResult, Dict[str, object]]:
    """:func:`_simulate` plus the telemetry dict executors record.

    The dict matches :meth:`repro.obs.report.RunTelemetry.record_point`
    keyword arguments (``wall_s``/``frames``/``phase_seconds``/``worker``);
    with ``phase_split`` the engine runs instrumented so the per-phase
    second split rides along.  Constellation points report aggregate
    frames across all beams and no phase split (the per-phase clock is a
    single-engine facility).
    """
    if not isinstance(scenario, Scenario):
        from repro.constellation.runner import ConstellationRunner

        runner = ConstellationRunner(scenario, params)
        t0 = _obs_clock.now()
        outcome = runner.run()
        wall_s = _obs_clock.now() - t0
        frames = sum(shard.engine.frame_index for shard in runner.shards)
        return outcome.merged, {
            "wall_s": wall_s,
            "frames": frames,
            "phase_seconds": None,
            "worker": f"pid:{os.getpid()}",
        }
    engine = UplinkSimulationEngine(scenario, params)
    phases = engine.enable_phase_timing() if phase_split else None
    t0 = _obs_clock.now()
    result = engine.run()
    wall_s = _obs_clock.now() - t0
    return result, {
        "wall_s": wall_s,
        "frames": engine.frame_index,
        "phase_seconds": dict(phases) if phases is not None else None,
        "worker": f"pid:{os.getpid()}",
    }


def _run_point(
    position: int,
    point: RunPoint,
    params: SimulationParameters,
    telemetry: Optional[RunTelemetry],
    retry: Optional[RetryPolicy] = None,
) -> PointOutcome:
    """One point in the driving process, traced/telemetered when active.

    The shared serial primitive: :class:`SerialExecutor` and the async
    executor's single-worker path both route through it, so a ``--trace``
    run gets one ``point.run`` span per point and a telemetry collector
    gets one record per point, from either front end.  Each attempt passes
    through the fault injector's ``point_attempt`` gate; with a retry
    policy in ``on_error="record"`` mode a terminally failed point comes
    back as a :class:`~repro.faults.retry.FailedPoint` (telemetry is only
    recorded for attempts that produced a result).
    """
    resolved = point.resolved_params(params)
    run_hash = point.run_hash()

    def attempt(attempt_number: int) -> SimulationResult:
        injector = _faults.INJECTOR
        if injector is not None:
            injector.point_attempt(run_hash, attempt_number)
        tracer = _obs_trace.TRACER
        if telemetry is None and tracer is None:
            return _simulate(point.scenario, resolved)
        span = (
            tracer.span(
                "point.run",
                index=point.index,
                protocol=point.scenario.protocol,
                seed=point.scenario.seed,
            )
            if tracer is not None
            else nullcontext()
        )
        with span:
            result, info = _simulate_measured(
                point.scenario,
                resolved,
                telemetry.phase_split if telemetry is not None else False,
            )
        if telemetry is not None:
            telemetry.record_point(
                position,
                run_hash=run_hash,
                protocol=point.scenario.protocol,
                coords=point.coords_dict(),
                **info,
            )
        return result

    return run_point_attempts(retry, run_hash, attempt)


class Executor(Protocol):
    """Anything that can evaluate an ordered run list.

    Implementations must return results in run-list order and must be
    deterministic: the same points and parameters always produce the same
    results regardless of scheduling.
    """

    def execute(
        self,
        points: Sequence[RunPoint],
        params: SimulationParameters,
        progress: Optional[ProgressCallback] = None,
    ) -> List[SimulationResult]:
        """Evaluate every point and return results in the same order."""
        ...


class SerialExecutor:
    """Evaluate the run list one point at a time in the calling process."""

    def execute(
        self,
        points: Sequence[RunPoint],
        params: SimulationParameters,
        progress: Optional[ProgressCallback] = None,
    ) -> List[SimulationResult]:
        return self.execute_with_sink(points, params, progress)

    def execute_with_sink(
        self,
        points: Sequence[RunPoint],
        params: SimulationParameters,
        progress: Optional[ProgressCallback] = None,
        sink: Optional[ResultSink] = None,
        telemetry: Optional[RunTelemetry] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> List[SimulationResult]:
        results: List[SimulationResult] = []
        total = len(points)
        for position, point in enumerate(points):
            result = _run_point(position, point, params, telemetry, retry)
            results.append(result)
            if sink is not None:
                sink(position, point, result)
            if progress is not None:
                progress(len(results), total)
        return results

    def __repr__(self) -> str:
        return "SerialExecutor()"


# ----------------------------------------------------------- worker plumbing
#: Shared parameters installed in each worker by the pool initializer, so the
#: (large, immutable) SimulationParameters object is pickled once per worker
#: instead of once per job.
_WORKER_PARAMS: Optional[SimulationParameters] = None
#: Whether workers should measure each job (set alongside _WORKER_PARAMS).
_WORKER_TELEMETRY = False
_WORKER_PHASE_SPLIT = False
#: Retry policy applied in-worker (set alongside _WORKER_PARAMS).
_WORKER_RETRY: Optional[RetryPolicy] = None

#: One pool job: ``(index, scenario, param-deltas, run_hash)``.  The hash
#: rides along so in-worker retry jitter and targeted fault injection key on
#: the point's stable identity rather than on scheduling order.
WorkerJob = Tuple[int, Scenario, Tuple[Tuple[str, object], ...], str]


def _worker_init(
    params: SimulationParameters,
    telemetry: bool = False,
    phase_split: bool = False,
    retry: Optional[RetryPolicy] = None,
    fault_spec: Optional[str] = None,
) -> None:
    global _WORKER_PARAMS, _WORKER_TELEMETRY, _WORKER_PHASE_SPLIT
    global _WORKER_RETRY
    _WORKER_PARAMS = params
    _WORKER_TELEMETRY = telemetry
    _WORKER_PHASE_SPLIT = phase_split
    _WORKER_RETRY = retry
    # A forked worker inherits the parent's injector *object* (counts
    # included), which would skew periodic triggers; always reset to a
    # fresh injector built from the shipped spec, or to none at all.
    if fault_spec:
        _faults.install(FaultPlan.from_spec(fault_spec))
    else:
        _faults.uninstall()


def _worker_run_chunk(
    chunk: Sequence[WorkerJob],
) -> List[Tuple[int, PointOutcome, Optional[Dict[str, object]]]]:
    """Evaluate one chunk of (index, scenario, param-deltas, hash) jobs.

    Each output row is ``(index, outcome, info)``: ``info`` is the
    telemetry dict of :func:`_simulate_measured` when the pool was
    initialised with telemetry on, else ``None`` (measurement costs two
    clock reads per job, so it stays opt-in).  Under a recording retry
    policy the outcome of a terminally failed job is its
    :class:`~repro.faults.retry.FailedPoint` (``info`` is ``None``); in
    ``on_error="raise"`` mode the error propagates and the parent's future
    re-raises it, the pre-PR behaviour.
    """
    params = _WORKER_PARAMS
    if params is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("worker pool initializer did not run")
    out: List[Tuple[int, PointOutcome, Optional[Dict[str, object]]]] = []
    for index, scenario, overrides, run_hash in chunk:
        effective = params.with_overrides(**dict(overrides)) if overrides else params

        def attempt(attempt_number: int) -> Tuple[SimulationResult, Optional[Dict[str, object]]]:
            injector = _faults.INJECTOR
            if injector is not None:
                injector.point_attempt(run_hash, attempt_number)
            if _WORKER_TELEMETRY:
                return _simulate_measured(scenario, effective, _WORKER_PHASE_SPLIT)
            return _simulate(scenario, effective), None

        outcome = run_point_attempts(_WORKER_RETRY, run_hash, attempt)
        if isinstance(outcome, FailedPoint):
            out.append((index, outcome, None))
        else:
            result, info = outcome
            out.append((index, result, info))
    return out


class ParallelExecutor:
    """Fan the run list out across worker processes.

    Parameters
    ----------
    n_workers:
        Worker processes; defaults to the machine's CPU count.
    chunk_size:
        Points per submitted task.  Chunking amortises inter-process pickling
        for large grids; the default splits the grid into roughly four chunks
        per worker so the pool stays load-balanced near the end of the run.
    """

    def __init__(self, n_workers: Optional[int] = None, chunk_size: Optional[int] = None) -> None:
        if n_workers is not None and n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.n_workers = n_workers if n_workers is not None else (os.cpu_count() or 1)
        self.chunk_size = chunk_size

    def _chunks(self, n_jobs: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, n_jobs // (self.n_workers * 4))

    def execute(
        self,
        points: Sequence[RunPoint],
        params: SimulationParameters,
        progress: Optional[ProgressCallback] = None,
    ) -> List[SimulationResult]:
        return self.execute_with_sink(points, params, progress)

    def execute_with_sink(
        self,
        points: Sequence[RunPoint],
        params: SimulationParameters,
        progress: Optional[ProgressCallback] = None,
        sink: Optional[ResultSink] = None,
        telemetry: Optional[RunTelemetry] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> List[SimulationResult]:
        total = len(points)
        if total == 0:
            return []
        if self.n_workers == 1 or total == 1:
            return SerialExecutor().execute_with_sink(
                points, params, progress, sink, telemetry=telemetry,
                retry=retry,
            )

        jobs = [
            (p.index, p.scenario, p.param_overrides, p.run_hash())
            for p in points
        ]
        index_of = {p.index: i for i, p in enumerate(points)}
        if len(index_of) != total:
            raise ValueError("run points must have unique indices")
        chunk_size = self._chunks(total)
        chunks = [jobs[i:i + chunk_size] for i in range(0, total, chunk_size)]

        # The active fault plan travels to workers as its spec string; each
        # worker installs a fresh injector (counts restart per process).
        plan = _faults.active_plan()
        fault_spec = plan.to_spec() if plan is not None else None
        results: List[Optional[PointOutcome]] = [None] * total
        done = 0
        with ProcessPoolExecutor(
            max_workers=min(self.n_workers, len(chunks)),
            initializer=_worker_init,
            initargs=(
                params,
                telemetry is not None,
                telemetry.phase_split if telemetry is not None else False,
                retry,
                fault_spec,
            ),
        ) as pool:
            pending = {pool.submit(_worker_run_chunk, chunk) for chunk in chunks}
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    for index, result, info in future.result():
                        position = index_of[index]
                        results[position] = result
                        done += 1
                        if telemetry is not None and info is not None:
                            point = points[position]
                            telemetry.record_point(
                                position,
                                run_hash=point.run_hash(),
                                protocol=point.scenario.protocol,
                                coords=point.coords_dict(),
                                **info,
                            )
                        if sink is not None:
                            sink(position, points[position], result)
                    if progress is not None:
                        progress(done, total)
        if done != total or any(r is None for r in results):
            raise RuntimeError(
                f"worker pool produced {done} of {total} results"
            )  # pragma: no cover - defensive; futures re-raise worker errors
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:
        chunk = self.chunk_size if self.chunk_size is not None else "auto"
        return f"ParallelExecutor(n_workers={self.n_workers}, chunk_size={chunk})"


def estimated_point_cost(point: RunPoint) -> float:
    """Rough serial cost of one run, in terminal-simulated-seconds.

    The engine's work per point scales with the simulated time and with the
    number of terminals it steps each frame; the product is a serviceable
    unitless cost model.  The work-stealing scheduler uses it to dispatch
    expensive points first (longest-processing-time order), which is what
    keeps heterogeneous grids load-balanced.
    """
    scenario = point.scenario
    return (scenario.duration_s + scenario.warmup_s) * (scenario.n_terminals + 1)


def estimated_grid_cost(points: Sequence[RunPoint]) -> float:
    """Rough serial cost of a grid (sum of :func:`estimated_point_cost`);
    used for deciding whether process fan-out is worth its start-up price.
    """
    return sum(estimated_point_cost(p) for p in points)


#: Grids cheaper than this (terminal-seconds) stay serial: below it the
#: process pool's interpreter start-up and pickling overhead typically
#: exceeds the simulation time saved.
_PARALLEL_COST_THRESHOLD = 2000.0


def select_executor(
    points: Sequence[RunPoint],
    n_workers: Optional[int] = None,
) -> Executor:
    """Pick an executor for a grid.

    An explicit ``n_workers`` forces the choice (1 → serial, >1 → parallel).
    Otherwise the grid goes parallel only when the machine has more than one
    CPU, there is more than one point to overlap, and the estimated cost is
    large enough to amortise the pool start-up.
    """
    if n_workers is not None:
        if n_workers == 1:
            return SerialExecutor()
        return ParallelExecutor(n_workers=n_workers)
    cpus = os.cpu_count() or 1
    if (
        cpus > 1
        and len(points) > 1
        and estimated_grid_cost(points) >= _PARALLEL_COST_THRESHOLD
    ):
        return ParallelExecutor(n_workers=min(cpus, len(points)))
    return SerialExecutor()
