"""Queryable containers for experiment results.

A :class:`ResultSet` pairs every expanded :class:`~repro.api.spec.RunPoint`
with its :class:`~repro.sim.results.SimulationResult` and supports the three
things every analysis in the paper reduces to:

* *selection* — :meth:`ResultSet.filter` by grid coordinates or predicate;
* *reshaping* — :meth:`ResultSet.group_by` on any coordinate or summary key;
* *reduction* — :meth:`ResultSet.aggregate`, mean ± Student-t confidence
  interval across the records of each group (typically seed replicates).

Results are exportable (:meth:`to_records`, :meth:`to_csv`,
:meth:`to_json`) and convertible back to the legacy
:class:`~repro.sim.results.SweepResult` family so existing tables, plots and
benchmarks keep working during the migration.
"""

from __future__ import annotations

import csv
import io
import json
import math
from dataclasses import dataclass
from functools import cached_property
from typing import (
    Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union,
)

from repro.faults.retry import FailedPoint
from repro.obs.report import RunReport
from repro.sim.results import SimulationResult, SweepResult
from repro.api.spec import RunPoint

__all__ = ["RunRecord", "AggregateRow", "ResultSet"]

#: Summary metrics reported by default when no explicit list is given.
DEFAULT_METRICS: Tuple[str, ...] = (
    "voice_loss_rate",
    "data_throughput_per_frame",
    "data_delay_s",
)


@dataclass(frozen=True)
class RunRecord:
    """One grid point together with its simulation result.

    Under a degrading retry policy (``RetryPolicy(on_error="record")``) a
    record may instead carry the point's terminal
    :class:`~repro.faults.retry.FailedPoint` in ``error``; exactly one of
    ``result``/``error`` is set, and :attr:`ok` tells them apart.
    """

    point: RunPoint
    result: Optional[SimulationResult] = None
    error: Optional[FailedPoint] = None

    def __post_init__(self) -> None:
        if (self.result is None) == (self.error is None):
            raise ValueError(
                "a RunRecord carries exactly one of result or error"
            )

    @property
    def ok(self) -> bool:
        """Whether the point completed (has a result, not an error)."""
        return self.result is not None

    @cached_property
    def _row(self) -> Dict[str, object]:
        # Built once per record: filter/group_by/distinct hit __getitem__
        # for every record and key, so rebuilding coords + summary on each
        # access would make every query quadratic in practice.
        row: Dict[str, object] = {"run_hash": self.point.run_hash()}
        row.update(self.point.coords_dict())
        if self.result is not None:
            row.update(self.result.summary())
        elif self.error is not None:
            row.update({
                "error": self.error.error_type,
                "error_message": self.error.message,
                "attempts": self.error.attempts,
            })
        return row

    def record(self) -> Dict[str, object]:
        """Flat dictionary: grid coordinates plus the result summary."""
        return dict(self._row)

    def __getitem__(self, key: str) -> object:
        try:
            return self._row[key]
        except KeyError:
            raise KeyError(
                f"{key!r} is neither a grid coordinate nor a summary metric; "
                f"available keys: {', '.join(self._row)}"
            ) from None


@dataclass(frozen=True)
class AggregateRow:
    """One group's statistics for one metric.

    ``ci_half_width`` is the half-width of the Student-t confidence interval
    of the mean across the group's records (0 for singleton groups), matching
    the convention of
    :func:`repro.metrics.stats.batch_means_confidence_interval`.
    """

    group: Tuple[Tuple[str, object], ...]
    metric: str
    mean: float
    std: float
    ci_half_width: float
    n: int

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary form (group coordinates inlined)."""
        row: Dict[str, object] = dict(self.group)
        row.update({
            "metric": self.metric,
            "mean": self.mean,
            "std": self.std,
            "ci_half_width": self.ci_half_width,
            "n": self.n,
        })
        return row


def _student_t_half_width(values: Sequence[float], confidence: float) -> float:
    n = len(values)
    if n < 2:
        return 0.0
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    sem = math.sqrt(variance / n)
    from scipy import stats as scipy_stats

    t_value = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return t_value * sem


class ResultSet:
    """Ordered, immutable collection of :class:`RunRecord` objects."""

    def __init__(
        self,
        records: Sequence[RunRecord],
        name: str = "",
        telemetry: Optional[RunReport] = None,
    ) -> None:
        self._records: Tuple[RunRecord, ...] = tuple(records)
        self.name = name
        #: Per-point execution telemetry of the run that produced this set
        #: (:class:`~repro.obs.report.RunReport`), or None when the run was
        #: executed without telemetry.  Derived views (filter/slice/group_by)
        #: deliberately drop it — it describes the original execution.
        self.telemetry = telemetry

    # ------------------------------------------------------------ container
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self._records)

    def __getitem__(self, index: Union[int, slice]) -> Union[RunRecord, "ResultSet"]:
        if isinstance(index, slice):
            return ResultSet(self._records[index], name=self.name)
        return self._records[index]

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"ResultSet({len(self._records)} runs{label})"

    @property
    def records(self) -> Tuple[RunRecord, ...]:
        """The underlying records, in expansion order."""
        return self._records

    @property
    def results(self) -> List[SimulationResult]:
        """Raw simulation results, in expansion order (``None`` for failed
        points when the run degraded under a recording retry policy)."""
        return [r.result for r in self._records]  # type: ignore[misc]

    # ------------------------------------------------------- failure surface
    def completed(self) -> "ResultSet":
        """The records that produced a result."""
        return ResultSet(
            [r for r in self._records if r.ok], name=self.name
        )

    def failed(self) -> "ResultSet":
        """The records that degraded to a failure."""
        return ResultSet(
            [r for r in self._records if not r.ok], name=self.name
        )

    def errors(self) -> List[FailedPoint]:
        """Terminal failure records, in expansion order (empty when clean)."""
        return [r.error for r in self._records if r.error is not None]

    def coordinates(self) -> Tuple[str, ...]:
        """Grid coordinate names present on the records."""
        if not self._records:
            return ()
        return tuple(self._records[0].point.coords_dict())

    def distinct(self, key: str) -> List[object]:
        """Distinct values of one coordinate/metric, in first-seen order."""
        seen: Dict[object, None] = {}
        for record in self._records:
            seen.setdefault(record[key], None)
        return list(seen)

    # ------------------------------------------------------------- querying
    def filter(
        self,
        predicate: Optional[Callable[[RunRecord], bool]] = None,
        **coords: object,
    ) -> "ResultSet":
        """Records matching every keyword equality and the optional predicate.

        >>> rs.filter(protocol="charisma", n_voice=60)        # doctest: +SKIP
        >>> rs.filter(lambda r: r["voice_loss_rate"] < 0.01)  # doctest: +SKIP
        """
        kept = []
        for record in self._records:
            if any(record[key] != value for key, value in coords.items()):
                continue
            if predicate is not None and not predicate(record):
                continue
            kept.append(record)
        return ResultSet(kept, name=self.name)

    def group_by(self, *keys: str) -> Dict[Tuple[object, ...], "ResultSet"]:
        """Partition into sub-sets keyed by the given coordinates.

        Group keys appear in first-seen (i.e. expansion) order, so iteration
        over the mapping is deterministic.
        """
        if not keys:
            raise ValueError("group_by needs at least one key")
        groups: Dict[Tuple[object, ...], List[RunRecord]] = {}
        for record in self._records:
            group = tuple(record[key] for key in keys)
            groups.setdefault(group, []).append(record)
        return {
            group: ResultSet(records, name=self.name)
            for group, records in groups.items()
        }

    def series(self, metric: str) -> List[float]:
        """One metric across all completed records, in expansion order.

        Failed records carry no summary metrics, so they are skipped —
        which is what lets :meth:`aggregate` reduce the partial results of
        a degraded run (check :meth:`errors` to know what is missing).
        """
        return [
            float(record[metric]) for record in self._records if record.ok
        ]

    # ---------------------------------------------------------- aggregation
    def aggregate(
        self,
        metrics: Optional[Sequence[str]] = None,
        by: Sequence[str] = (),
        confidence: float = 0.95,
    ) -> List[AggregateRow]:
        """Mean ± confidence interval of metrics, per group.

        Parameters
        ----------
        metrics:
            Summary keys to reduce; defaults to the three headline metrics.
        by:
            Grouping coordinates (e.g. ``("protocol", "n_voice")``).  Empty
            groups the whole set, reducing across everything — typically the
            seed replicates of a single grid point.
        confidence:
            Confidence level of the Student-t interval on the mean.

        Returns rows ordered by group (expansion order) then by metric.
        """
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must lie in (0, 1)")
        metrics = tuple(metrics) if metrics is not None else DEFAULT_METRICS
        if by:
            grouped = self.group_by(*by)
        else:
            grouped = {(): self}
        rows: List[AggregateRow] = []
        for group, subset in grouped.items():
            coords = tuple(zip(by, group))
            for metric in metrics:
                values = subset.series(metric)
                n = len(values)
                mean = sum(values) / n if n else 0.0
                if n >= 2:
                    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
                    std = math.sqrt(variance)
                else:
                    std = 0.0
                rows.append(AggregateRow(
                    group=coords,
                    metric=metric,
                    mean=mean,
                    std=std,
                    ci_half_width=_student_t_half_width(values, confidence),
                    n=n,
                ))
        return rows

    # -------------------------------------------------------------- exports
    def to_records(self) -> List[Dict[str, object]]:
        """Flat dictionaries (coordinates + summary), in expansion order."""
        return [record.record() for record in self._records]

    def to_csv(self, path: Optional[str] = None) -> str:
        """CSV rendering of :meth:`to_records`; written to ``path`` if given."""
        records = self.to_records()
        buffer = io.StringIO()
        if records:
            writer = csv.DictWriter(buffer, fieldnames=list(records[0]),
                                    lineterminator="\n")
            writer.writeheader()
            writer.writerows(records)
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", encoding="utf-8", newline="") as handle:
                handle.write(text)
        return text

    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        """JSON rendering of :meth:`to_records`; written to ``path`` if given."""
        text = json.dumps(self.to_records(), indent=indent, sort_keys=False)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text

    # ------------------------------------------------- legacy compatibility
    def to_sweep_result(
        self,
        parameter: str,
        protocol: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> SweepResult:
        """Legacy one-protocol :class:`SweepResult` view of this set.

        The set must reduce to exactly one record per swept value once the
        protocol and seed are fixed; pass ``seed`` explicitly when the spec
        replicated each point over several seeds.
        """
        subset = self
        if protocol is not None:
            subset = subset.filter(protocol=protocol)
        if seed is not None:
            subset = subset.filter(seed=seed)
        protocols = subset.distinct("protocol") if len(subset) else []
        if len(protocols) != 1:
            raise ValueError(
                "set spans "
                f"{len(protocols)} protocols; pass protocol= to select one"
            )
        values = subset.distinct(parameter)
        results = []
        for value in values:
            matches = subset.filter(**{parameter: value})
            if len(matches) != 1:
                raise ValueError(
                    f"{len(matches)} records at {parameter}={value!r}; a "
                    "SweepResult needs exactly one (pass seed= to pick a "
                    "replicate, or aggregate() instead)"
                )
            results.append(matches[0].result)
        return SweepResult(
            protocol=str(protocols[0]),
            parameter=parameter,
            values=[v for v in values],
            results=results,
        )

    def to_sweep_results(
        self,
        parameter: str,
        seed: Optional[int] = None,
    ) -> Dict[str, SweepResult]:
        """Legacy ``{protocol: SweepResult}`` view (one paper sub-figure)."""
        return {
            str(protocol): self.to_sweep_result(
                parameter, protocol=str(protocol), seed=seed
            )
            for protocol in self.distinct("protocol")
        }
