"""Unified experiment API — the public entry point for running experiments.

Declare *what* to run with :class:`ExperimentSpec` (protocols × axes ×
seeds), decide *how* to run it with an :class:`Executor` (or let
:func:`run` choose), and analyse the outcome through :class:`ResultSet`:

>>> from repro.api import ExperimentSpec, SweepAxis, run
>>> from repro.sim.scenario import Scenario
>>> spec = ExperimentSpec(
...     protocols=("charisma", "rama"),
...     base_scenario=Scenario(protocol="charisma", n_voice=0, n_data=1,
...                            duration_s=0.5, warmup_s=0.25),
...     axes=(SweepAxis("n_voice", (2, 4)),),
...     seeds=(0, 1),
... )
>>> spec.n_runs
8
>>> results = run(spec)
>>> rows = results.aggregate(["voice_loss_rate"], by=("protocol", "n_voice"))
>>> len(rows)
4

The legacy helpers (``repro.sim.runner.run_sweep`` and friends) are thin
deprecated shims over this package.
"""

from repro.api.executors import (
    Executor,
    ParallelExecutor,
    ProgressCallback,
    SerialExecutor,
    select_executor,
)
from repro.api.facade import run, run_points, sweep_spec
from repro.api.resultset import AggregateRow, ResultSet, RunRecord
from repro.api.spec import (
    ExperimentSpec,
    RunPoint,
    SweepAxis,
    parameter_sweepable_fields,
    scenario_sweepable_fields,
)

__all__ = [
    "AggregateRow",
    "Executor",
    "ExperimentSpec",
    "ParallelExecutor",
    "ProgressCallback",
    "ResultSet",
    "RunPoint",
    "RunRecord",
    "SerialExecutor",
    "SweepAxis",
    "parameter_sweepable_fields",
    "run",
    "run_points",
    "scenario_sweepable_fields",
    "select_executor",
    "sweep_spec",
]
