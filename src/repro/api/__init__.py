"""Unified experiment API — the public entry point for running experiments.

Declare *what* to run with :class:`ExperimentSpec` (protocols × axes ×
seeds), decide *how* to run it with an :class:`Executor` (or let
:func:`run` choose), and analyse the outcome through :class:`ResultSet`:

>>> from repro.api import ExperimentSpec, SweepAxis, run
>>> from repro.sim.scenario import Scenario
>>> spec = ExperimentSpec(
...     protocols=("charisma", "rama"),
...     base_scenario=Scenario(protocol="charisma", n_voice=0, n_data=1,
...                            duration_s=0.5, warmup_s=0.25),
...     axes=(SweepAxis("n_voice", (2, 4)),),
...     seeds=(0, 1),
... )
>>> spec.n_runs
8
>>> results = run(spec)
>>> rows = results.aggregate(["voice_loss_rate"], by=("protocol", "n_voice"))
>>> len(rows)
4

Passing ``cache_dir=`` (or ``store=``) to :func:`run` adds the
content-addressed result cache of :mod:`repro.store`: finished points are
served from disk and interrupted sweeps resume where they stopped.
"""

from repro.api.executors import (
    Executor,
    ParallelExecutor,
    ProgressCallback,
    ResultSink,
    SerialExecutor,
    select_executor,
)
from repro.api.facade import run, run_points, sweep_spec
from repro.api.resultset import AggregateRow, ResultSet, RunRecord
from repro.api.spec import (
    ExperimentSpec,
    RunPoint,
    SweepAxis,
    parameter_sweepable_fields,
    scenario_sweepable_fields,
)

__all__ = [
    "AggregateRow",
    "AsyncExecutor",
    "CachingExecutor",
    "Executor",
    "ExperimentSpec",
    "ParallelExecutor",
    "ProgressCallback",
    "ResultSet",
    "ResultSink",
    "ResultStore",
    "RunPoint",
    "RunRecord",
    "SerialExecutor",
    "SweepAxis",
    "WorkStealingScheduler",
    "parameter_sweepable_fields",
    "run",
    "run_points",
    "scenario_sweepable_fields",
    "select_executor",
    "sweep_spec",
]

#: Names re-exported lazily from :mod:`repro.store` (which itself imports
#: this package's executor substrate — a module-level import here would be
#: circular).
_STORE_EXPORTS = {
    "AsyncExecutor",
    "CachingExecutor",
    "ResultStore",
    "WorkStealingScheduler",
}


def __getattr__(name: str) -> object:
    if name in _STORE_EXPORTS:
        import importlib

        value = getattr(importlib.import_module("repro.store"), name)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
