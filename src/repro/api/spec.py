"""Declarative experiment descriptions.

The paper's artefacts are *families* of runs — protocol × population ×
seed × parameter grids — and the unit of work everywhere in this package is
therefore not "one simulation" but "one grid of simulations".
:class:`ExperimentSpec` captures such a grid declaratively:

* a set of protocols (always an implicit axis),
* any number of :class:`SweepAxis` objects, each sweeping one field of
  either the :class:`~repro.sim.scenario.Scenario` or the shared
  :class:`~repro.config.SimulationParameters`,
* a list of seeds replicated at every grid point.

``ExperimentSpec.expand()`` turns the spec into a deterministic, ordered
tuple of :class:`RunPoint` objects; the same spec always expands to the same
run list with the same per-point hashes, which is what makes result caching,
sharding and reproducibility audits possible.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

from repro.config import SimulationParameters
from repro.constellation.scenario import ConstellationScenario
from repro.sim.scenario import Scenario

__all__ = [
    "SweepAxis",
    "RunPoint",
    "ExperimentSpec",
    "config_digest",
    "scenario_sweepable_fields",
    "parameter_sweepable_fields",
]

#: Scenario fields that cannot be swept through an axis because the spec
#: manages them itself (``protocol`` via ``protocols``, ``seed`` via
#: ``seeds``).
_RESERVED_SCENARIO_FIELDS = ("protocol", "seed")

#: A spec's template scenario: a single cell or a whole constellation.
AnyScenario = Union[Scenario, ConstellationScenario]


def scenario_sweepable_fields() -> Tuple[str, ...]:
    """Scenario fields a :class:`SweepAxis` may sweep.

    The union of :class:`Scenario` and :class:`ConstellationScenario`
    fields (Scenario order first, constellation-only extras appended);
    :class:`ExperimentSpec` additionally checks each scenario-target axis
    against the concrete type of its ``base_scenario``.
    """
    names = [
        f.name for f in dataclasses.fields(Scenario)
        if f.name not in _RESERVED_SCENARIO_FIELDS
    ]
    names.extend(
        f.name for f in dataclasses.fields(ConstellationScenario)
        if f.name not in _RESERVED_SCENARIO_FIELDS and f.name not in names
    )
    return tuple(names)


def parameter_sweepable_fields() -> Tuple[str, ...]:
    """SimulationParameters fields a :class:`SweepAxis` may sweep."""
    return tuple(f.name for f in dataclasses.fields(SimulationParameters))


def _canonical(value: object) -> object:
    """JSON-serialisable canonical form of a config value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _canonical(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, (tuple, list)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    return value


def config_digest(payload: object) -> str:
    """Stable short hash of a canonical payload (dataclasses welcome)."""
    text = json.dumps(_canonical(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class SweepAxis:
    """One swept dimension of an experiment grid.

    Attributes
    ----------
    field:
        Name of the swept field.  Any non-reserved
        :class:`~repro.sim.scenario.Scenario` field or any
        :class:`~repro.config.SimulationParameters` field is sweepable;
        ``protocol`` and ``seed`` are reserved (use
        :attr:`ExperimentSpec.protocols` / :attr:`ExperimentSpec.seeds`).
    values:
        The swept values, in presentation order.
    target:
        ``"scenario"`` or ``"params"``.  Inferred from the field name when
        omitted (scenario wins when the name exists on both, as with
        ``mobile_speed_kmh``).
    """

    field: str
    values: Tuple[object, ...]
    target: str = ""

    def __init__(self, field: str, values: Iterable[object], target: str = "") -> None:
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "values", tuple(values))
        object.__setattr__(self, "target", target or self._infer_target(field))
        self._validate()

    @staticmethod
    def _infer_target(field_name: str) -> str:
        if field_name in scenario_sweepable_fields():
            return "scenario"
        if field_name in parameter_sweepable_fields():
            return "params"
        return "scenario"  # rejected with the full field list in _validate

    def _validate(self) -> None:
        if self.target not in ("scenario", "params"):
            raise ValueError("target must be 'scenario' or 'params'")
        sweepable = (
            scenario_sweepable_fields() if self.target == "scenario"
            else parameter_sweepable_fields()
        )
        if self.field in _RESERVED_SCENARIO_FIELDS:
            raise ValueError(
                f"field {self.field!r} is managed by the spec itself; use "
                "ExperimentSpec.protocols / ExperimentSpec.seeds instead"
            )
        if self.field not in sweepable:
            raise ValueError(
                f"{self.field!r} is not a sweepable {self.target} field; "
                f"sweepable scenario fields: {', '.join(scenario_sweepable_fields())}; "
                f"sweepable parameter fields: {', '.join(parameter_sweepable_fields())}"
            )
        if not self.values:
            raise ValueError(f"axis {self.field!r} needs at least one value")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"axis {self.field!r} has duplicate values")


@dataclass(frozen=True)
class RunPoint:
    """One fully-resolved simulation of an expanded experiment grid.

    Attributes
    ----------
    index:
        Position in the spec's deterministic expansion order.
    scenario:
        The concrete scenario to simulate (axis overrides applied).
    param_overrides:
        Sorted ``(field, value)`` pairs to apply on top of the spec's shared
        :class:`~repro.config.SimulationParameters`.  Kept as a delta rather
        than a full object so parallel executors can ship the shared base
        parameters to each worker exactly once.
    coords:
        Sorted ``(axis, value)`` pairs locating the point on the grid
        (always includes ``protocol`` and ``seed``).
    params_digest:
        :func:`config_digest` of the shared base parameters the point runs
        against (set by :meth:`ExperimentSpec.expand`); part of
        :meth:`run_hash` so the same scenario under different base
        parameters never hashes equal.
    """

    index: int
    scenario: AnyScenario
    param_overrides: Tuple[Tuple[str, object], ...] = ()
    coords: Tuple[Tuple[str, object], ...] = ()
    params_digest: str = ""

    def resolved_params(self, base: SimulationParameters) -> SimulationParameters:
        """The point's effective parameters on top of the shared base."""
        if not self.param_overrides:
            return base
        return base.with_overrides(**dict(self.param_overrides))

    def run_hash(self) -> str:
        """Stable digest identifying this run (scenario + parameters)."""
        return config_digest({
            "scenario": self.scenario,
            "param_overrides": dict(self.param_overrides),
            "params_digest": self.params_digest,
        })

    def coords_dict(self) -> Dict[str, object]:
        """The grid coordinates as a plain dictionary."""
        return dict(self.coords)


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative grid of simulations.

    The grid is the cross-product ``protocols × axes × seeds``; expansion
    order is protocols (outermost), then the axes in declaration order, then
    seeds (innermost), so related runs are adjacent and the order never
    depends on dictionary or set iteration.

    Attributes
    ----------
    protocols:
        Protocol registry names; always the outermost axis.
    base_scenario:
        Template scenario providing every field the axes do not sweep.
        Either a single-cell :class:`~repro.sim.scenario.Scenario` or a
        :class:`~repro.constellation.scenario.ConstellationScenario`; a
        constellation template makes every expanded point a constellation
        run (executed through the constellation runner, merged results).
    axes:
        The swept dimensions (may be empty for a pure protocol × seed grid).
    params:
        Shared simulation parameters (param-axis values are applied on top).
    seeds:
        Seeds replicated at every grid point; innermost axis.
    name:
        Optional label carried into results and progress reports.
    """

    protocols: Tuple[str, ...]
    base_scenario: AnyScenario
    axes: Tuple[SweepAxis, ...] = ()
    params: SimulationParameters = field(default_factory=SimulationParameters)
    seeds: Tuple[int, ...] = (0,)
    name: str = ""

    def __init__(
        self,
        protocols: Sequence[str],
        base_scenario: AnyScenario,
        axes: Sequence[SweepAxis] = (),
        params: Optional[SimulationParameters] = None,
        seeds: Sequence[int] = (0,),
        name: str = "",
    ) -> None:
        object.__setattr__(self, "protocols", tuple(protocols))
        object.__setattr__(self, "base_scenario", base_scenario)
        object.__setattr__(self, "axes", tuple(axes))
        object.__setattr__(
            self, "params", params if params is not None else SimulationParameters()
        )
        object.__setattr__(self, "seeds", tuple(int(s) for s in seeds))
        object.__setattr__(self, "name", name)
        self._validate()

    def _validate(self) -> None:
        if not self.protocols:
            raise ValueError("spec needs at least one protocol")
        if len(set(self.protocols)) != len(self.protocols):
            raise ValueError("protocols must be unique")
        if not self.seeds:
            raise ValueError("spec needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError("seeds must be unique")
        seen = set()
        base_fields = {f.name for f in dataclasses.fields(self.base_scenario)}
        for axis in self.axes:
            if axis.field in seen:
                raise ValueError(f"duplicate sweep axis {axis.field!r}")
            seen.add(axis.field)
            if axis.target == "scenario" and axis.field not in base_fields:
                raise ValueError(
                    f"axis {axis.field!r} is not a field of the spec's "
                    f"{type(self.base_scenario).__name__} base scenario"
                )

    # ------------------------------------------------------------- expansion
    @property
    def n_runs(self) -> int:
        """Number of simulations the spec expands to."""
        total = len(self.protocols) * len(self.seeds)
        for axis in self.axes:
            total *= len(axis.values)
        return total

    def expand(self) -> Tuple[RunPoint, ...]:
        """Deterministic ordered run list for this spec."""
        points = []
        params_digest = config_digest(self.params)
        axis_values = [axis.values for axis in self.axes]
        for protocol in self.protocols:
            for combo in itertools.product(*axis_values):
                scenario_overrides: Dict[str, object] = {"protocol": protocol}
                param_overrides: Dict[str, object] = {}
                coords: Dict[str, object] = {"protocol": protocol}
                for axis, value in zip(self.axes, combo):
                    coords[axis.field] = value
                    if axis.target == "scenario":
                        scenario_overrides[axis.field] = value
                    else:
                        param_overrides[axis.field] = value
                for seed in self.seeds:
                    scenario = self.base_scenario.with_overrides(
                        seed=seed, **scenario_overrides
                    )
                    point_coords = dict(coords)
                    point_coords["seed"] = seed
                    points.append(RunPoint(
                        index=len(points),
                        scenario=scenario,
                        param_overrides=tuple(sorted(param_overrides.items())),
                        coords=tuple(sorted(point_coords.items())),
                        params_digest=params_digest,
                    ))
        return tuple(points)

    def spec_hash(self) -> str:
        """Stable digest of the whole spec (grid + shared configuration)."""
        return config_digest({
            "protocols": list(self.protocols),
            "base_scenario": self.base_scenario,
            "axes": [
                {"field": a.field, "values": list(a.values), "target": a.target}
                for a in self.axes
            ],
            "params": self.params,
            "seeds": list(self.seeds),
        })

    def describe(self) -> Dict[str, object]:
        """Compact summary used by progress reports and logs."""
        return {
            "name": self.name or "<unnamed>",
            "protocols": list(self.protocols),
            "axes": {a.field: list(a.values) for a in self.axes},
            "seeds": list(self.seeds),
            "n_runs": self.n_runs,
            "spec_hash": self.spec_hash(),
        }
