"""Packet and traffic-class definitions."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["TrafficKind", "Packet"]


class TrafficKind(enum.Enum):
    """Service class of a request or packet (the paper's two request types)."""

    VOICE = "voice"
    DATA = "data"

    @property
    def is_voice(self) -> bool:
        """Whether this is the delay-sensitive isochronous class."""
        return self is TrafficKind.VOICE

    @property
    def is_data(self) -> bool:
        """Whether this is the delay-insensitive bursty class."""
        return self is TrafficKind.DATA


_packet_counter = itertools.count()


@dataclass
class Packet:
    """One fixed-size uplink packet awaiting transmission at a mobile device.

    Attributes
    ----------
    kind:
        Voice or data.
    terminal_id:
        Identifier of the generating mobile device.
    created_frame:
        Frame index at which the packet entered the transmit buffer.
    deadline_frame:
        Last frame (exclusive) by which a voice packet must *start*
        transmission; ``None`` for data packets, which are never dropped.
    sequence:
        Globally unique, monotonically increasing packet id (useful for
        debugging and FIFO assertions in tests).
    """

    kind: TrafficKind
    terminal_id: int
    created_frame: int
    deadline_frame: Optional[int] = None
    sequence: int = field(default_factory=lambda: next(_packet_counter))

    def __post_init__(self) -> None:
        if self.created_frame < 0:
            raise ValueError("created_frame must be non-negative")
        if self.kind.is_voice and self.deadline_frame is None:
            raise ValueError("voice packets must carry a deadline")
        if self.deadline_frame is not None and self.deadline_frame <= self.created_frame:
            raise ValueError("deadline_frame must exceed created_frame")

    def is_expired(self, current_frame: int) -> bool:
        """Whether the packet's deadline has passed by ``current_frame``."""
        if self.deadline_frame is None:
            return False
        return current_frame >= self.deadline_frame

    def frames_to_deadline(self, current_frame: int) -> Optional[int]:
        """Frames remaining before expiry (``None`` for data packets)."""
        if self.deadline_frame is None:
            return None
        return max(0, self.deadline_frame - current_frame)

    def waiting_frames(self, current_frame: int) -> int:
        """Frames the packet has spent in the buffer so far."""
        return max(0, current_frame - self.created_frame)
