"""Mobile-device terminals: traffic source + transmit buffer + statistics.

A :class:`Terminal` is the per-user state the simulation engine and the MAC
protocols interact with.  It owns the traffic source, the uplink transmit
buffer, and the per-terminal counters from which the paper's three metrics
(voice packet loss rate, data throughput, data delay) are later aggregated.

The division of responsibilities is:

* the **terminal** generates packets at frame boundaries, drops expired voice
  packets, hands packets over for transmission and records the outcomes;
* the **MAC protocol** decides when the terminal contends, whether it holds a
  reservation, and how many packets it may transmit in a frame;
* the **engine** wires the two together with the channel and the PHY error
  model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

import numpy as np

from repro.config import SimulationParameters
from repro.traffic.data import DataSource
from repro.traffic.packets import Packet, TrafficKind
from repro.traffic.voice import VoiceSource

__all__ = ["TerminalStats", "Terminal", "VoiceTerminal", "DataTerminal"]


@dataclass
class TerminalStats:
    """Per-terminal transmission and loss counters.

    Voice packets that miss their deadline are *dropped*; transmitted voice
    packets corrupted by the channel are *errored* — the paper's packet loss
    rate (equation (3)) combines both.  Data packets are never dropped; a
    corrupted data packet is retransmitted, and its access delay keeps
    growing until the first error-free transmission.
    """

    voice_generated: int = 0
    voice_delivered: int = 0
    voice_errored: int = 0
    voice_dropped: int = 0
    data_generated: int = 0
    data_delivered: int = 0
    data_retransmissions: int = 0
    data_delay_frames: List[int] = field(default_factory=list)

    @property
    def voice_lost(self) -> int:
        """Voice packets lost to either deadline expiry or channel error."""
        return self.voice_dropped + self.voice_errored

    @property
    def mean_data_delay_frames(self) -> float:
        """Mean access delay of delivered data packets, in frames."""
        if not self.data_delay_frames:
            return 0.0
        return float(np.mean(self.data_delay_frames))


class Terminal:
    """Base class for a mobile device.

    Parameters
    ----------
    terminal_id:
        Index of this device within the population (also its channel index).
    kind:
        Service class of the device (voice or data).
    params:
        Shared simulation parameters.
    """

    def __init__(
        self,
        terminal_id: int,
        kind: TrafficKind,
        params: SimulationParameters,
    ) -> None:
        if terminal_id < 0:
            raise ValueError("terminal_id must be non-negative")
        self._id = int(terminal_id)
        self._kind = kind
        self._params = params
        self._buffer: Deque[Packet] = deque()
        self.stats = TerminalStats()
        self._measure_from_frame = 0

    # ------------------------------------------------------------------ API
    @property
    def terminal_id(self) -> int:
        """Population index of this device."""
        return self._id

    @property
    def kind(self) -> TrafficKind:
        """Service class of this device."""
        return self._kind

    @property
    def is_voice(self) -> bool:
        """Whether this is a voice device."""
        return self._kind.is_voice

    @property
    def is_data(self) -> bool:
        """Whether this is a data device."""
        return self._kind.is_data

    @property
    def buffer_occupancy(self) -> int:
        """Number of packets awaiting transmission."""
        return len(self._buffer)

    @property
    def has_pending_packets(self) -> bool:
        """Whether at least one packet awaits transmission."""
        return bool(self._buffer)

    def peek_packets(self, n: int) -> List[Packet]:
        """Return (without removing) the first ``n`` buffered packets."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return list(self._buffer)[:n]

    def head_deadline_frames(self, current_frame: int) -> Optional[int]:
        """Frames to the head-of-line packet's deadline (None if no deadline)."""
        if not self._buffer:
            return None
        return self._buffer[0].frames_to_deadline(current_frame)

    def head_waiting_frames(self, current_frame: int) -> int:
        """Frames the head-of-line packet has been waiting (0 if empty)."""
        if not self._buffer:
            return 0
        return self._buffer[0].waiting_frames(current_frame)

    # ------------------------------------------------------------ accounting
    def begin_measurement(self, frame_index: int) -> None:
        """Start a fresh measurement window at ``frame_index``.

        Resets the statistics and, crucially, excludes packets created
        *before* the window from every outcome counter: a warm-up backlog
        still sitting in the buffer may be delivered, errored or dropped
        later, but attributing those outcomes to a window that never counted
        the packets as generated would break the conservation law
        ``delivered + errored + dropped <= generated``.
        """
        if frame_index < 0:
            raise ValueError("frame_index must be non-negative")
        self.stats = TerminalStats()
        self._measure_from_frame = int(frame_index)

    def _in_window(self, packet: Packet) -> bool:
        """Whether a packet belongs to the current measurement window."""
        return packet.created_frame >= self._measure_from_frame

    # -------------------------------------------------------------- traffic
    def advance_frame(self, frame_index: int) -> int:
        """Generate traffic for this frame; return the number of new packets."""
        packets = self._generate(frame_index)
        self._buffer.extend(packets)
        self._record_generated(len(packets))
        return len(packets)

    def drop_expired(self, current_frame: int) -> int:
        """Drop buffered voice packets whose deadline has passed.

        Returns the number of packets removed; only drops of packets
        generated inside the current measurement window are counted in the
        statistics.
        """
        dropped = 0
        counted = 0
        while self._buffer and self._buffer[0].is_expired(current_frame):
            packet = self._buffer.popleft()
            dropped += 1
            if self._in_window(packet):
                counted += 1
        if counted:
            self.stats.voice_dropped += counted
        return dropped

    # --------------------------------------------------------- transmission
    def transmit(
        self,
        max_packets: int,
        n_delivered: int,
        current_frame: int,
    ) -> int:
        """Record the outcome of a transmission opportunity.

        The engine grants the terminal a slot able to carry up to
        ``max_packets`` packets and has already drawn how many of the
        actually-transmitted packets survived the channel (``n_delivered``).

        * Voice: transmitted-but-corrupted packets are lost (the 20 ms delay
          bound leaves no room for ARQ) and counted as errored.
        * Data: corrupted packets stay at the head of the buffer for
          retransmission; each successful packet records its access delay.

        Returns the number of packets actually taken out of the buffer
        (i.e. transmitted, successfully or not, for voice; delivered, for
        data).
        """
        if max_packets < 0:
            raise ValueError("max_packets must be non-negative")
        n_transmitted = min(max_packets, len(self._buffer))
        if n_delivered < 0 or n_delivered > n_transmitted:
            raise ValueError("n_delivered must lie in [0, n_transmitted]")
        if n_transmitted == 0:
            return 0

        if self._kind.is_voice:
            # The error model only reports how many of the transmitted
            # packets survived; attribute the successes to the head of the
            # FIFO (the attribution is statistically arbitrary either way).
            # Outcomes of packets created before the measurement window are
            # not counted — their generation was never counted either.
            for position in range(n_transmitted):
                packet = self._buffer.popleft()
                if not self._in_window(packet):
                    continue
                if position < n_delivered:
                    self.stats.voice_delivered += 1
                else:
                    self.stats.voice_errored += 1
            return n_transmitted

        # Data: only delivered packets leave the buffer; the rest will be
        # retransmitted in a later grant.
        for _ in range(n_delivered):
            packet = self._buffer.popleft()
            if self._in_window(packet):
                self.stats.data_delivered += 1
                self.stats.data_delay_frames.append(
                    packet.waiting_frames(current_frame)
                )
        self.stats.data_retransmissions += n_transmitted - n_delivered
        return n_delivered

    # ------------------------------------------------------------ internals
    def _generate(self, frame_index: int) -> List[Packet]:
        raise NotImplementedError

    def _record_generated(self, count: int) -> None:
        raise NotImplementedError


class VoiceTerminal(Terminal):
    """A mobile device carrying a voice call."""

    def __init__(
        self,
        terminal_id: int,
        params: SimulationParameters,
        rng: np.random.Generator,
        start_silent: bool = True,
    ) -> None:
        super().__init__(terminal_id, TrafficKind.VOICE, params)
        self._source = VoiceSource(
            params, rng, terminal_id=terminal_id, start_silent=start_silent
        )

    @property
    def source(self) -> VoiceSource:
        """The underlying on/off voice source."""
        return self._source

    @property
    def in_talkspurt(self) -> bool:
        """Whether the device is currently in a talkspurt."""
        return self._source.in_talkspurt

    def talkspurt_started(self) -> bool:
        """Whether a new talkspurt began at the latest frame boundary."""
        return self._source.talkspurt_started()

    def _generate(self, frame_index: int) -> List[Packet]:
        return self._source.advance_frame(frame_index)

    def _record_generated(self, count: int) -> None:
        self.stats.voice_generated += count


class DataTerminal(Terminal):
    """A mobile device performing bursty file transfers."""

    def __init__(
        self,
        terminal_id: int,
        params: SimulationParameters,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(terminal_id, TrafficKind.DATA, params)
        self._source = DataSource(params, rng, terminal_id=terminal_id)

    @property
    def source(self) -> DataSource:
        """The underlying bursty data source."""
        return self._source

    def _generate(self, frame_index: int) -> List[Packet]:
        return self._source.advance_frame(frame_index)

    def _record_generated(self, count: int) -> None:
        self.stats.data_generated += count
